//! # perple-harness
//!
//! Execution harnesses for memory-consistency testing:
//!
//! * [`perpetual`] — the PerpLE **Harness** (paper §V-B): runs a converted
//!   perpetual litmus test for `N` iterations with a single launch
//!   synchronization, collecting each load-performing thread's `buf` array
//!   for the outcome counters.
//! * [`baseline`] — a reimplementation of **litmus7**'s iterative approach
//!   with all five synchronization modes (`user`, `userfence`, `pthread`,
//!   `timebase`, `none`) on the simulated TSO substrate, including
//!   per-iteration barrier cost accounting (§VI-A).
//! * [`native`] — the same perpetual harness on **real hardware threads**
//!   (x86 atomics), for machines where genuine TSO behaviour is observable.
//!
//! # Example
//!
//! ```
//! use perple_convert::Conversion;
//! use perple_harness::perpetual::PerpleRunner;
//! use perple_model::suite;
//! use perple_sim::SimConfig;
//!
//! let sb = suite::sb();
//! let conv = Conversion::convert(&sb)?;
//! let mut runner = PerpleRunner::new(SimConfig::default().with_seed(7));
//! let run = runner.run(&conv.perpetual, 1_000);
//! assert_eq!(run.frame_bufs.len(), 2);
//! assert_eq!(run.frame_bufs[0].len(), 1_000);
//! # Ok::<(), perple_convert::ConvertError>(())
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod native;
pub mod pad;
pub mod perpetual;
