//! Cache-line padding for shared atomics (in-repo replacement for
//! `crossbeam::utils::CachePadded`, which is unavailable in the offline
//! build environment).
//!
//! Each padded value occupies its own 128-byte-aligned slot so that two
//! litmus locations (or two threads' hot atomics) never share a cache line:
//! false sharing would serialize the very store-buffer traffic the harness
//! exists to observe. 128 bytes covers the spatial-prefetcher pairing of
//! 64-byte lines on modern x86 (the same rationale crossbeam documents).

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache-line-aligned slot.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_cache_line_aligned() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let slots: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        for pair in slots.windows(2) {
            let a = &*pair[0] as *const u64 as usize;
            let b = &*pair[1] as *const u64 as usize;
            assert!(b - a >= 128, "adjacent slots share a cache line");
        }
    }

    #[test]
    fn deref_and_into_inner_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        assert_eq!(*CachePadded::from(7u8), 7);
    }
}
