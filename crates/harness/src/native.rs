//! Native execution on real hardware threads (x86 atomics).
//!
//! This is the substrate the paper actually ran on: real threads whose
//! plain stores and loads (compiled from `Relaxed` atomics to x86 `mov`)
//! exercise the machine's genuine store buffers. On a multi-core x86 host
//! the perpetual runner observes real TSO weak outcomes; on a single-core
//! host (like this reproduction's build machine) threads timeslice and weak
//! outcomes essentially vanish — which is exactly why `perple-sim` is the
//! primary experiment substrate (see DESIGN.md).
//!
//! Both the perpetual harness and the litmus7-style baseline are provided.
//! The baseline's `timebase` mode uses a monotonic-clock deadline in place
//! of the TSC, and memory-inspecting conditions are not evaluated natively
//! (the non-convertible suite is simulator-only).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use perple_convert::{PerpInstr, PerpetualTest};
use perple_model::{Instr, LitmusTest, Outcome};

use crate::baseline::SyncMode;
use crate::pad::CachePadded;

/// Result of a native perpetual run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeRun {
    /// `buf_t` per load-performing thread, frame order (same layout as the
    /// simulated harness).
    pub frame_bufs: Vec<Vec<u64>>,
    /// Wall-clock duration of the run (launch barrier to last join).
    pub wall: Duration,
    /// Iterations executed per thread.
    pub iterations: u64,
}

impl NativeRun {
    /// Borrowed view of the buffers in counter layout.
    pub fn bufs(&self) -> Vec<&[u64]> {
        self.frame_bufs.iter().map(Vec::as_slice).collect()
    }
}

/// Runs a perpetual litmus test on real threads: one launch barrier, then
/// `n` free-running iterations per thread (paper §V-B).
pub fn run_perpetual(perp: &PerpetualTest, n: u64) -> NativeRun {
    let nthreads = perp.thread_count();
    let locations: Vec<CachePadded<AtomicU64>> = (0..perp.locations().len())
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let barrier = Barrier::new(nthreads);
    let start = Instant::now();

    let mut bufs_by_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                let body = &perp.threads()[t];
                let locations = &locations;
                let barrier = &barrier;
                let reads = perp.reads_per_thread()[t];
                scope.spawn(move || {
                    let mut regs = [0u64; 16];
                    let mut buf = Vec::with_capacity(reads * n as usize);
                    barrier.wait();
                    for iter in 0..n {
                        for instr in body {
                            match *instr {
                                PerpInstr::Store { loc, k, a } => {
                                    locations[loc.index()].store(k * iter + a, Ordering::Relaxed);
                                }
                                PerpInstr::Load { reg, loc } => {
                                    regs[reg.index()] =
                                        locations[loc.index()].load(Ordering::Relaxed);
                                    buf.push(regs[reg.index()]);
                                }
                                PerpInstr::Mfence => fence(Ordering::SeqCst),
                                PerpInstr::Xchg { reg, loc, k, a } => {
                                    regs[reg.index()] =
                                        locations[loc.index()].swap(k * iter + a, Ordering::SeqCst);
                                    buf.push(regs[reg.index()]);
                                }
                            }
                        }
                    }
                    buf
                })
            })
            .collect();
        bufs_by_thread = handles
            .into_iter()
            // Invariant assertion, not error handling: the thread body is
            // arithmetic stores into a pre-sized Vec and cannot panic; a
            // join failure is a harness bug worth crashing on.
            .map(|h| h.join().expect("perpetual thread panicked"))
            .collect();
    });

    let wall = start.elapsed();
    let frame_bufs = perp
        .load_threads()
        .iter()
        .map(|t| std::mem::take(&mut bufs_by_thread[t.index()]))
        .collect();
    NativeRun {
        frame_bufs,
        wall,
        iterations: n,
    }
}

/// Result of a native baseline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeBaselineRun {
    /// Occurrences per outcome label.
    pub outcome_counts: std::collections::BTreeMap<String, u64>,
    /// Matches of the test's register-only condition (memory-inspecting
    /// conditions are not evaluated natively and count 0).
    pub target_count: u64,
    /// Wall-clock duration including all synchronization.
    pub wall: Duration,
    /// Iterations executed.
    pub iterations: u64,
}

/// A sense-reversing spin barrier (litmus7's `user` synchronization),
/// optionally fencing after release (`userfence`).
struct SpinBarrier {
    count: AtomicU64,
    generation: AtomicU64,
    parties: u64,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        Self {
            count: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            parties: parties as u64,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins > 64 {
                    // Smart spinning: on oversubscribed hosts, let the
                    // partner run rather than burning the whole quantum.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Runs the litmus7-style iterative baseline natively.
///
/// Protocol per iteration: synchronize (per mode), execute the test body,
/// record registers, synchronize again, thread 0 zeroes the shared
/// locations (Figure 4 of the paper). `none` mode skips both barriers and
/// gives every iteration its own memory cells.
pub fn run_baseline(test: &LitmusTest, mode: SyncMode, n: u64) -> NativeBaselineRun {
    let nthreads = test.thread_count();
    let nlocs = test.location_count();
    let cells = if mode == SyncMode::NoSync {
        nlocs * n as usize
    } else {
        nlocs
    };
    let locations: Vec<CachePadded<AtomicU64>> = (0..cells)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    for (i, cell) in locations.iter().enumerate() {
        cell.store(test.init_values()[i % nlocs] as u64, Ordering::Relaxed);
    }

    let spin = SpinBarrier::new(nthreads);
    let spin_end = SpinBarrier::new(nthreads);
    let pthread = Barrier::new(nthreads);
    let pthread_end = Barrier::new(nthreads);
    let launch = Barrier::new(nthreads);
    let t0 = Instant::now();
    // Timebase mode: shared deadline schedule.
    let period = Duration::from_micros(3);

    let start = Instant::now();
    let mut bufs_by_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nthreads)
            .map(|t| {
                let body = &test.threads()[t];
                let locations = &locations;
                let (spin, spin_end) = (&spin, &spin_end);
                let (pthread, pthread_end) = (&pthread, &pthread_end);
                let launch = &launch;
                let reads = test.reads_per_thread()[t];
                scope.spawn(move || {
                    let mut regs = [0u64; 16];
                    let mut buf = Vec::with_capacity(reads * n as usize);
                    launch.wait();
                    for iter in 0..n {
                        let base = if mode == SyncMode::NoSync {
                            iter as usize * nlocs
                        } else {
                            0
                        };
                        match mode {
                            SyncMode::User => spin.wait(),
                            SyncMode::UserFence => {
                                spin.wait();
                                fence(Ordering::SeqCst);
                            }
                            SyncMode::Pthread => {
                                pthread.wait();
                            }
                            SyncMode::Timebase => {
                                let deadline = t0 + period * (iter as u32 + 1);
                                while Instant::now() < deadline {
                                    std::hint::spin_loop();
                                }
                            }
                            SyncMode::NoSync => {}
                        }
                        for instr in body {
                            match *instr {
                                Instr::Store { loc, value } => {
                                    locations[base + loc.index()]
                                        .store(value as u64, Ordering::Relaxed);
                                }
                                Instr::Load { reg, loc } => {
                                    regs[reg.index()] =
                                        locations[base + loc.index()].load(Ordering::Relaxed);
                                    buf.push(regs[reg.index()]);
                                }
                                Instr::Mfence => fence(Ordering::SeqCst),
                                Instr::Xchg { reg, loc, value } => {
                                    regs[reg.index()] = locations[base + loc.index()]
                                        .swap(value as u64, Ordering::SeqCst);
                                    buf.push(regs[reg.index()]);
                                }
                            }
                        }
                        // End-of-iteration synchronization + reset by P0.
                        match mode {
                            SyncMode::User | SyncMode::UserFence | SyncMode::Timebase => {
                                spin_end.wait();
                                if t == 0 {
                                    for (i, cell) in locations.iter().enumerate() {
                                        cell.store(
                                            test.init_values()[i % nlocs] as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                }
                                spin.wait(); // release after reset
                            }
                            SyncMode::Pthread => {
                                pthread_end.wait();
                                if t == 0 {
                                    for (i, cell) in locations.iter().enumerate() {
                                        cell.store(
                                            test.init_values()[i % nlocs] as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                }
                                pthread.wait();
                            }
                            SyncMode::NoSync => {}
                        }
                    }
                    buf
                })
            })
            .collect();
        bufs_by_thread = handles
            .into_iter()
            // Invariant assertion, not error handling: the thread body is
            // arithmetic stores into a pre-sized Vec and cannot panic; a
            // join failure is a harness bug worth crashing on.
            .map(|h| h.join().expect("baseline thread panicked"))
            .collect();
    });
    let wall = start.elapsed();

    // Tally per-iteration outcomes.
    let reads = test.reads_per_thread();
    let mut outcome_counts = std::collections::BTreeMap::new();
    let mut target_count = 0u64;
    let register_only = !test.target().inspects_memory();
    for i in 0..n as usize {
        let mut outcome = Outcome::new();
        for slot in test.load_slots() {
            let t = slot.thread.index();
            let v = bufs_by_thread[t][reads[t] * i + slot.slot];
            outcome.set(slot.thread, slot.reg, v as u32);
        }
        if register_only && test.target().matches(&outcome, &[]) {
            target_count += 1;
        }
        *outcome_counts.entry(outcome.label()).or_insert(0) += 1;
    }

    NativeBaselineRun {
        outcome_counts,
        target_count,
        wall,
        iterations: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_convert::Conversion;
    use perple_model::suite;

    // Native tests use small iteration counts: the build machine may have a
    // single core, where barrier rounds cost scheduling quanta.

    #[test]
    fn perpetual_native_records_all_iterations() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let run = run_perpetual(&conv.perpetual, 200);
        assert_eq!(run.frame_bufs.len(), 2);
        assert_eq!(run.frame_bufs[0].len(), 200);
        assert!(run.wall > Duration::ZERO);
    }

    #[test]
    fn perpetual_native_values_stay_in_sequence_range() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let n = 500u64;
        let run = run_perpetual(&conv.perpetual, n);
        for buf in &run.frame_bufs {
            for &v in buf {
                assert!(v <= n, "loaded {v} exceeds any stored sequence term");
            }
        }
    }

    #[test]
    fn perpetual_native_forbidden_target_never_fires() {
        // Fenced sb on real hardware must never show the weak outcome.
        let t = suite::amd5();
        let conv = Conversion::convert(&t).unwrap();
        let n = 500u64;
        let run = run_perpetual(&conv.perpetual, n);
        let bufs = run.bufs();
        let hits = (0..n)
            .filter(|&i| conv.target_heuristic.eval(i, &bufs, n))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn native_baseline_counts_every_iteration() {
        for mode in [SyncMode::User, SyncMode::Pthread, SyncMode::NoSync] {
            let t = suite::sb();
            let run = run_baseline(&t, mode, 60);
            let total: u64 = run.outcome_counts.values().sum();
            assert_eq!(total, 60, "{mode}");
        }
    }

    #[test]
    fn native_baseline_forbidden_target_never_fires() {
        let t = suite::mp();
        let run = run_baseline(&t, SyncMode::User, 60);
        assert_eq!(run.target_count, 0);
    }

    #[test]
    fn native_baseline_timebase_and_userfence_run() {
        for mode in [SyncMode::Timebase, SyncMode::UserFence] {
            let t = suite::sb();
            let run = run_baseline(&t, mode, 30);
            assert_eq!(run.iterations, 30, "{mode}");
        }
    }

    #[test]
    fn memory_conditions_are_not_evaluated_natively() {
        let t = suite::by_name("2+2w").unwrap();
        let run = run_baseline(&t, SyncMode::NoSync, 40);
        assert_eq!(run.target_count, 0);
    }
}
