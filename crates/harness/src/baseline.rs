//! litmus7-style iterative baseline on the simulated substrate (§VI-A).
//!
//! Classic litmus testing runs the original test `N` times. All modes
//! except `none` synchronize the threads before every iteration; the modes
//! differ in **cost** (cycles burned per barrier) and **alignment quality**
//! (how tightly the threads' iteration start times cluster), which is what
//! drives the paper's runtime (Figure 10) and outcome-variety (Figures 9
//! and 13) differences:
//!
//! | mode      | mechanism                      | cost | jitter |
//! |-----------|--------------------------------|------|--------|
//! | user      | polling (spin) barrier         | med  | medium |
//! | userfence | polling barrier + fences       | med  | medium |
//! | pthread   | pthread barrier (futex wakeup) | high | large  |
//! | timebase  | deadline on the TSC timebase   | med  | tiny   |
//! | none      | no synchronization             | none | drift  |
//!
//! The cost/jitter constants are calibration parameters chosen to reproduce
//! the paper's *ordering* of the modes, not measurements of any particular
//! machine; see DESIGN.md (substitutions).
//!
//! In `none` mode, litmus7 still compares same-index iterations, laid out
//! in per-iteration memory cells; threads free-run and drift apart, so
//! same-index interaction decays — the contrast PerpLE's frames exploit.

use std::collections::BTreeMap;

use perple_model::{Instr, LitmusTest, Outcome};
use perple_sim::{Addr, Machine, SimConfig, SimOp, ThreadSpec, ValExpr, XorShiftStar};

/// litmus7 thread-synchronization modes (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// Default polling synchronization.
    User,
    /// Polling plus fences to accelerate write propagation.
    UserFence,
    /// pthread-barrier based.
    Pthread,
    /// Timebase-counter deadline (not available on all architectures).
    Timebase,
    /// No per-iteration synchronization (but same-index comparison only).
    NoSync,
}

impl SyncMode {
    /// All five modes, in the paper's presentation order.
    pub const ALL: [SyncMode; 5] = [
        SyncMode::User,
        SyncMode::UserFence,
        SyncMode::Pthread,
        SyncMode::Timebase,
        SyncMode::NoSync,
    ];

    /// Barrier cost in cycles charged per iteration (the amortized
    /// synchronization overhead litmus7 pays per test iteration). The
    /// constants are calibrated so the runtime ratios of Figure 10
    /// reproduce the paper's geometric means; the thread-*alignment*
    /// quality of each mode is a separate knob ([`SyncMode::jitter`]),
    /// modeled as spread inside the barrier window rather than as extra
    /// runtime.
    pub fn barrier_cost(self) -> u64 {
        match self {
            SyncMode::User => 40,
            SyncMode::UserFence => 40,
            SyncMode::Pthread => 800,
            SyncMode::Timebase => 85,
            SyncMode::NoSync => 0,
        }
    }

    /// Start-time jitter bound (cycles) between threads within an
    /// iteration. Polling barriers release threads spread over a window
    /// (the releasing store propagates at different times), pthread wakeups
    /// are scheduler-ordered, and the timebase deadline aligns almost
    /// perfectly — which is why `timebase` exposes weak outcomes litmus7's
    /// other modes need orders of magnitude more iterations to see.
    pub fn jitter(self) -> u64 {
        match self {
            SyncMode::User => 2_000,
            SyncMode::UserFence => 2_200,
            SyncMode::Pthread => 8_000,
            SyncMode::Timebase => 6,
            SyncMode::NoSync => 0, // drift handled by free-running threads
        }
    }

    /// Per-iteration harness overhead outside the barrier (cycles): loop
    /// bookkeeping plus, in `none` mode, the cold per-iteration memory
    /// cells litmus7 allocates (a fresh cache line per iteration).
    pub fn iteration_overhead(self) -> u64 {
        match self {
            SyncMode::NoSync => 8,
            _ => 0, // folded into barrier_cost for the synchronized modes
        }
    }

    /// litmus7's flag name for the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            SyncMode::User => "user",
            SyncMode::UserFence => "userfence",
            SyncMode::Pthread => "pthread",
            SyncMode::Timebase => "timebase",
            SyncMode::NoSync => "none",
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Result of one baseline run of `n` iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRun {
    /// Occurrences per outcome label (one outcome per iteration, so counts
    /// sum to `n`).
    pub outcome_counts: BTreeMap<String, u64>,
    /// How often the test's own condition (target outcome) matched.
    pub target_count: u64,
    /// Total execution cycles including synchronization cost.
    pub exec_cycles: u64,
    /// Iterations run.
    pub iterations: u64,
}

impl BaselineRun {
    /// Number of distinct outcomes observed.
    pub fn distinct_observed(&self) -> usize {
        self.outcome_counts.len()
    }
}

/// Iterative litmus runner in a given synchronization mode.
#[derive(Debug, Clone)]
pub struct BaselineRunner {
    config: SimConfig,
    mode: SyncMode,
    machine: Machine,
    jitter_rng: XorShiftStar,
}

impl BaselineRunner {
    /// Creates a runner for one mode.
    pub fn new(config: SimConfig, mode: SyncMode) -> Self {
        let machine = Machine::new(config.clone());
        let jitter_rng = XorShiftStar::new(config.seed ^ 0xBA55_BA11);
        Self {
            config,
            mode,
            machine,
            jitter_rng,
        }
    }

    /// The runner's synchronization mode.
    pub fn mode(&self) -> SyncMode {
        self.mode
    }

    /// Runs `n` iterations of the original (non-perpetual) test and tallies
    /// outcomes per iteration, litmus7-style.
    pub fn run(&mut self, test: &LitmusTest, n: u64) -> BaselineRun {
        match self.mode {
            SyncMode::NoSync => self.run_unsynchronized(test, n),
            _ => self.run_synchronized(test, n),
        }
    }

    fn run_synchronized(&mut self, test: &LitmusTest, n: u64) -> BaselineRun {
        let nthreads = test.thread_count();
        let nlocs = test.location_count();
        let mut outcome_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut target_count = 0u64;
        let mut exec_cycles = 0u64;

        let bodies: Vec<Vec<SimOp>> = (0..nthreads).map(|t| iteration_body(test, t, 0)).collect();

        for _ in 0..n {
            // Per-iteration barrier: charge its cost and draw fresh
            // start-time jitter for each thread. The jitter spreads thread
            // starts *within* the barrier window (it shapes alignment, not
            // runtime), so only the post-release span counts as cycles.
            exec_cycles += self.mode.barrier_cost();
            let mut max_delay = 0u64;
            let specs: Vec<ThreadSpec> = bodies
                .iter()
                .map(|body| {
                    let delay = self.jitter_rng.below(self.mode.jitter() + 1);
                    max_delay = max_delay.max(delay);
                    ThreadSpec::new(body.clone(), 1).with_start_delay(delay)
                })
                .collect();
            let init: Vec<u64> = test.init_values().iter().map(|&v| v as u64).collect();
            let out = self.machine.run_with_init(&specs, &init);
            exec_cycles += out.cycles.saturating_sub(max_delay);

            let outcome = outcome_from_bufs(test, &out.bufs, 0);
            let mem: Vec<u32> = out.final_mem[..nlocs].iter().map(|&v| v as u32).collect();
            if test.target().matches(&outcome, &mem) {
                target_count += 1;
            }
            *outcome_counts.entry(outcome.label()).or_insert(0) += 1;
        }

        BaselineRun {
            outcome_counts,
            target_count,
            exec_cycles,
            iterations: n,
        }
    }

    fn run_unsynchronized(&mut self, test: &LitmusTest, n: u64) -> BaselineRun {
        // litmus7 `none`: every iteration owns a row of memory cells;
        // threads free-run across all iterations, comparison stays
        // same-index.
        let nthreads = test.thread_count();
        let nlocs = test.location_count() as u32;
        let bodies: Vec<Vec<SimOp>> = (0..nthreads)
            .map(|t| iteration_body(test, t, nlocs))
            .collect();
        let specs: Vec<ThreadSpec> = bodies
            .into_iter()
            .map(|body| ThreadSpec::new(body, n))
            .collect();
        let cells = nlocs as usize * n as usize;
        let mut init = vec![0u64; cells];
        for (i, cell) in init.iter_mut().enumerate() {
            *cell = test.init_values()[i % nlocs as usize] as u64;
        }
        let out = self.machine.run_with_init(&specs, &init);

        let mut outcome_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut target_count = 0u64;
        for i in 0..n {
            let outcome = outcome_from_bufs(test, &out.bufs, i);
            let row = &out.final_mem[(i as usize * nlocs as usize)..][..nlocs as usize];
            let mem: Vec<u32> = row.iter().map(|&v| v as u32).collect();
            if test.target().matches(&outcome, &mem) {
                target_count += 1;
            }
            *outcome_counts.entry(outcome.label()).or_insert(0) += 1;
        }
        let _ = &self.config;
        BaselineRun {
            outcome_counts,
            target_count,
            exec_cycles: out.cycles + n * self.mode.iteration_overhead(),
            iterations: n,
        }
    }
}

/// One iteration's ops for thread `t`. With `stride > 0`, location `l` of
/// iteration `n` lives at cell `n * stride + l` (litmus7's cell arrays).
fn iteration_body(test: &LitmusTest, t: usize, stride: u32) -> Vec<SimOp> {
    let addr = |loc: perple_model::LocId| Addr::strided(loc.index() as u32, stride);
    let mut body = Vec::new();
    for instr in &test.threads()[t] {
        match *instr {
            Instr::Store { loc, value } => body.push(SimOp::Store {
                addr: addr(loc),
                expr: ValExpr::Const(value as u64),
            }),
            Instr::Load { reg, loc } => {
                body.push(SimOp::Load {
                    reg: reg.0,
                    addr: addr(loc),
                });
                body.push(SimOp::Record { reg: reg.0 });
            }
            Instr::Mfence => body.push(SimOp::Mfence),
            Instr::Xchg { reg, loc, value } => {
                body.push(SimOp::Xchg {
                    reg: reg.0,
                    addr: addr(loc),
                    expr: ValExpr::Const(value as u64),
                });
                body.push(SimOp::Record { reg: reg.0 });
            }
        }
    }
    body
}

/// Reconstructs the iteration-`i` register outcome from recorded buffers.
fn outcome_from_bufs(test: &LitmusTest, bufs: &[Vec<u64>], i: u64) -> Outcome {
    let reads = test.reads_per_thread();
    let mut outcome = Outcome::new();
    for slot in test.load_slots() {
        let t = slot.thread.index();
        let v = bufs[t][reads[t] * i as usize + slot.slot];
        outcome.set(slot.thread, slot.reg, v as u32);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    fn run(name: &str, mode: SyncMode, n: u64, seed: u64) -> BaselineRun {
        let t = suite::by_name(name).unwrap();
        let mut r = BaselineRunner::new(SimConfig::default().with_seed(seed), mode);
        r.run(&t, n)
    }

    #[test]
    fn every_iteration_yields_one_outcome() {
        for mode in SyncMode::ALL {
            let r = run("sb", mode, 200, 5);
            let total: u64 = r.outcome_counts.values().sum();
            assert_eq!(total, 200, "{mode}");
            assert_eq!(r.iterations, 200);
        }
    }

    #[test]
    fn barrier_cost_shows_up_in_cycles() {
        let user = run("sb", SyncMode::User, 100, 6);
        let pthread = run("sb", SyncMode::Pthread, 100, 6);
        let none = run("sb", SyncMode::NoSync, 100, 6);
        assert!(
            pthread.exec_cycles > user.exec_cycles,
            "pthread must be slowest"
        );
        assert!(none.exec_cycles < user.exec_cycles, "none must be cheapest");
        assert!(user.exec_cycles >= 100 * SyncMode::User.barrier_cost());
        assert!(
            user.exec_cycles < 100 * (SyncMode::User.barrier_cost() + SyncMode::User.jitter()),
            "jitter must not be charged as runtime"
        );
    }

    #[test]
    fn timebase_finds_the_weak_outcome_fastest() {
        // Tightly aligned starts maximize store-buffer overlap.
        let tb = run("sb", SyncMode::Timebase, 2_000, 7);
        assert!(
            tb.target_count > 0,
            "timebase should expose sb's weak outcome at 2k iterations"
        );
        let user = run("sb", SyncMode::User, 2_000, 7);
        assert!(tb.target_count >= user.target_count);
    }

    #[test]
    fn forbidden_targets_never_fire() {
        for name in ["amd5", "mp", "lb", "amd10"] {
            for mode in SyncMode::ALL {
                let r = run(name, mode, 500, 8);
                assert_eq!(r.target_count, 0, "{name} under {mode}");
            }
        }
    }

    #[test]
    fn sequential_outcome_dominates_in_pthread_mode() {
        // Poor alignment means one thread usually finishes first: sb reads
        // are then 01/10 mostly.
        let r = run("sb", SyncMode::Pthread, 1_000, 9);
        let weak = r.outcome_counts.get("00").copied().unwrap_or(0);
        assert!(
            weak * 10 < 1_000,
            "weak outcomes should be rare in pthread mode"
        );
    }

    #[test]
    fn non_convertible_tests_run_with_memory_conditions() {
        // 2+2w's condition inspects final memory; the baseline evaluates it.
        let r = run("2+2w", SyncMode::User, 300, 10);
        let total: u64 = r.outcome_counts.values().sum();
        assert_eq!(total, 300);
        // Both final-memory patterns occur across iterations (ws races).
        assert!(r.distinct_observed() >= 1);
    }

    #[test]
    fn nosync_mode_runs_whole_suite() {
        for t in suite::convertible() {
            let mut r = BaselineRunner::new(SimConfig::default().with_seed(11), SyncMode::NoSync);
            let out = r.run(&t, 100);
            let total: u64 = out.outcome_counts.values().sum();
            assert_eq!(total, 100, "{}", t.name());
        }
    }

    #[test]
    fn non_convertible_suite_runs_under_user_and_nosync() {
        // §VII-G keeps the 54 non-convertible tests on the baseline; every
        // one must run in both the cheapest and the default mode.
        for t in suite::non_convertible() {
            for mode in [SyncMode::User, SyncMode::NoSync] {
                let mut r = BaselineRunner::new(SimConfig::default().with_seed(13), mode);
                let out = r.run(&t, 50);
                let total: u64 = out.outcome_counts.values().sum();
                assert_eq!(total, 50, "{} under {mode}", t.name());
            }
        }
    }

    #[test]
    fn memory_conditions_are_evaluated_per_iteration() {
        // co-2w's condition is purely on final memory; under ws races both
        // final values occur, so the target fires a nontrivial fraction of
        // iterations in a tightly synchronized mode.
        let t = suite::by_name("co-2w").unwrap();
        let mut r = BaselineRunner::new(SimConfig::default().with_seed(21), SyncMode::Timebase);
        let out = r.run(&t, 400);
        assert!(out.target_count > 0, "ws race never resolved to [x]=1");
        assert!(out.target_count < 400, "ws race always resolved to [x]=1");
    }

    #[test]
    fn mode_metadata() {
        assert_eq!(SyncMode::User.to_string(), "user");
        assert_eq!(SyncMode::NoSync.as_str(), "none");
        assert_eq!(SyncMode::ALL.len(), 5);
        assert_eq!(SyncMode::NoSync.barrier_cost(), 0);
        assert!(SyncMode::Pthread.jitter() > SyncMode::Timebase.jitter());
    }
}
