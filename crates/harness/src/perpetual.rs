//! The PerpLE Harness on the simulated substrate (§V-B).

use perple_convert::{PerpInstr, PerpetualTest};
use perple_sim::{Addr, Budget, Machine, SimConfig, SimOp, ThreadSpec, ValExpr};

/// Result of one perpetual run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerpleRun {
    /// `buf_t` of each **load-performing** thread, in frame order: thread
    /// `t`'s value for load slot `i` of iteration `n` is at
    /// `frame_bufs[pos][r_t * n + i]`.
    pub frame_bufs: Vec<Vec<u64>>,
    /// Simulated execution cycles (launch to last drain); perpetual tests
    /// pay no per-iteration synchronization.
    pub exec_cycles: u64,
    /// Iterations executed per thread. For a budget-truncated run this is
    /// the number of **complete** iterations retained in `frame_bufs`
    /// (buffers are trimmed to whole frames, so the counters stay valid).
    pub iterations: u64,
    /// Number of injected machine faults (see `perple_sim::FaultPlan`).
    pub faults: u64,
    /// False iff the run's watchdog budget expired before all requested
    /// iterations finished; `frame_bufs` then hold a prefix of the full
    /// run's records, trimmed to `iterations` whole frames.
    pub complete: bool,
}

impl PerpleRun {
    /// Borrowed view of the buffers in the layout the counters take.
    pub fn bufs(&self) -> Vec<&[u64]> {
        self.frame_bufs.iter().map(Vec::as_slice).collect()
    }

    /// FNV-1a digest of the run's observable content (iteration count plus
    /// every buffered load value, length-delimited per thread).
    ///
    /// Equal seeds and configs produce equal digests, so the campaign
    /// layer's regression gate can detect machine nondeterminism: two
    /// stored runs with the same cache fingerprint but different digests
    /// mean the simulated machine stopped being a pure function of its
    /// inputs.
    pub fn content_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.iterations);
        for buf in &self.frame_bufs {
            eat(buf.len() as u64);
            for &v in buf {
                eat(v);
            }
        }
        h
    }
}

/// Runs perpetual litmus tests on the simulated TSO machine.
#[derive(Debug, Clone)]
pub struct PerpleRunner {
    machine: Machine,
}

impl PerpleRunner {
    /// Creates a runner over a fresh machine.
    pub fn new(config: SimConfig) -> Self {
        Self {
            machine: Machine::new(config),
        }
    }

    /// Reseeds the underlying machine.
    pub fn reseed(&mut self, seed: u64) {
        self.machine.reseed(seed);
    }

    /// Executes `n` iterations of the perpetual test and collects the `buf`
    /// arrays (threads synchronize only at launch, as in the paper).
    pub fn run(&mut self, perp: &PerpetualTest, n: u64) -> PerpleRun {
        let specs = thread_specs(perp, n);
        let out = self.machine.run(&specs, perp.locations().len());
        Self::collect(perp, &specs, out, n)
    }

    /// Like [`PerpleRunner::run`] but under a watchdog [`Budget`]. If the
    /// budget expires mid-run, the machine stops at its next poll and the
    /// partial buffers are trimmed to the largest number of iterations
    /// **every** load thread completed, so every retained frame is whole;
    /// [`PerpleRun::complete`] is false and [`PerpleRun::iterations`]
    /// reports the trimmed count. Execution up to the cutoff is identical
    /// to the unbudgeted run, so trimmed buffers are exact prefixes.
    pub fn run_budgeted(&mut self, perp: &PerpetualTest, n: u64, budget: &Budget) -> PerpleRun {
        let specs = thread_specs(perp, n);
        let out = self
            .machine
            .run_budgeted(&specs, perp.locations().len(), budget);
        Self::collect(perp, &specs, out, n)
    }

    /// Selects the load-performing threads' buffers in frame order and, for
    /// incomplete runs, trims them to whole iterations.
    fn collect(
        perp: &PerpetualTest,
        specs: &[ThreadSpec],
        out: perple_sim::RunOutput,
        n: u64,
    ) -> PerpleRun {
        let exec_cycles = out.cycles;
        let mut all: Vec<Option<Vec<u64>>> = out.bufs.into_iter().map(Some).collect();
        let mut frame_bufs: Vec<Vec<u64>> = perp
            .load_threads()
            .iter()
            // Invariant: load-thread indices are unique and in-range by
            // construction of the perpetual test, so each take() hits a
            // still-occupied slot.
            .map(|t| all[t.index()].take().expect("one buf per thread"))
            .collect();

        let iterations = if out.complete {
            n
        } else {
            // Whole iterations completed by every load thread.
            let m = perp
                .load_threads()
                .iter()
                .zip(&frame_bufs)
                .map(|(t, buf)| {
                    let reads = specs[t.index()].records_per_iteration() as u64;
                    (buf.len() as u64).checked_div(reads).unwrap_or(n)
                })
                .min()
                .unwrap_or(0);
            for (t, buf) in perp.load_threads().iter().zip(frame_bufs.iter_mut()) {
                let reads = specs[t.index()].records_per_iteration() as u64;
                buf.truncate((m * reads) as usize);
            }
            m
        };

        PerpleRun {
            frame_bufs,
            exec_cycles,
            iterations,
            faults: out.faults,
            complete: out.complete,
        }
    }
}

/// Builds the simulator thread programs for a perpetual test: sequence-term
/// stores, unchanged loads/fences, and a free `Record` after every load so
/// `buf_t` captures each load slot's value in program order.
pub fn thread_specs(perp: &PerpetualTest, n: u64) -> Vec<ThreadSpec> {
    perp.threads()
        .iter()
        .map(|instrs| {
            let mut body = Vec::with_capacity(instrs.len() * 2);
            for instr in instrs {
                match *instr {
                    PerpInstr::Store { loc, k, a } => body.push(SimOp::Store {
                        addr: Addr::fixed(loc.index() as u32),
                        expr: ValExpr::Seq { k, a },
                    }),
                    PerpInstr::Load { reg, loc } => {
                        body.push(SimOp::Load {
                            reg: reg.0,
                            addr: Addr::fixed(loc.index() as u32),
                        });
                        body.push(SimOp::Record { reg: reg.0 });
                    }
                    PerpInstr::Mfence => body.push(SimOp::Mfence),
                    PerpInstr::Xchg { reg, loc, k, a } => {
                        body.push(SimOp::Xchg {
                            reg: reg.0,
                            addr: Addr::fixed(loc.index() as u32),
                            expr: ValExpr::Seq { k, a },
                        });
                        body.push(SimOp::Record { reg: reg.0 });
                    }
                }
            }
            ThreadSpec::new(body, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_convert::Conversion;
    use perple_model::suite;

    fn run_test(
        name: &str,
        n: u64,
        seed: u64,
    ) -> (perple_model::LitmusTest, Conversion, PerpleRun) {
        let t = suite::by_name(name).unwrap();
        let conv = Conversion::convert(&t).unwrap();
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(seed));
        let run = runner.run(&conv.perpetual, n);
        (t, conv, run)
    }

    #[test]
    fn buffers_have_frame_layout() {
        let (_, _, run) = run_test("sb", 500, 1);
        assert_eq!(run.frame_bufs.len(), 2);
        assert_eq!(run.frame_bufs[0].len(), 500);
        assert!(run.exec_cycles > 500);
        assert_eq!(run.iterations, 500);
    }

    #[test]
    fn store_only_threads_have_no_frame_buf() {
        let (_, _, run) = run_test("mp", 300, 2);
        // mp: only thread 1 loads; its buf has 2 records per iteration.
        assert_eq!(run.frame_bufs.len(), 1);
        assert_eq!(run.frame_bufs[0].len(), 600);
    }

    #[test]
    fn record_follows_each_load_in_slot_order() {
        let t = suite::by_name("mp").unwrap();
        let conv = Conversion::convert(&t).unwrap();
        let specs = thread_specs(&conv.perpetual, 10);
        // Thread 1: Load r0, Record r0, Load r1, Record r1.
        let ops = &specs[1].body;
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], SimOp::Load { reg: 0, .. }));
        assert!(matches!(ops[1], SimOp::Record { reg: 0 }));
        assert!(matches!(ops[2], SimOp::Load { reg: 1, .. }));
        assert!(matches!(ops[3], SimOp::Record { reg: 1 }));
    }

    #[test]
    fn perpetual_sb_exposes_the_target_outcome() {
        // The headline behaviour: the sb target (store buffering) is
        // observable without per-iteration synchronization.
        let (_, conv, run) = run_test("sb", 5_000, 42);
        let bufs = run.bufs();
        let r = perple_analysis_shim::count_heuristic_target(&conv, &bufs, 5_000);
        assert!(r > 0, "no target outcomes in 5k perpetual sb iterations");
    }

    #[test]
    fn fenced_test_never_shows_forbidden_target() {
        let (_, conv, run) = run_test("amd5", 5_000, 43);
        let bufs = run.bufs();
        let r = perple_analysis_shim::count_heuristic_target(&conv, &bufs, 5_000);
        assert_eq!(r, 0, "forbidden outcome observed under mfence");
    }

    #[test]
    fn xchg_test_never_shows_forbidden_target() {
        let (_, conv, run) = run_test("amd10", 3_000, 44);
        let bufs = run.bufs();
        let r = perple_analysis_shim::count_heuristic_target(&conv, &bufs, 3_000);
        assert_eq!(r, 0, "forbidden outcome observed under locked exchange");
    }

    /// Minimal local reimplementation of the heuristic target count to
    /// avoid a dev-dependency cycle on perple-analysis.
    mod perple_analysis_shim {
        use perple_convert::Conversion;

        pub fn count_heuristic_target(conv: &Conversion, bufs: &[&[u64]], n: u64) -> u64 {
            (0..n)
                .filter(|&i| conv.target_heuristic.eval(i, bufs, n))
                .count() as u64
        }
    }

    #[test]
    fn budgeted_run_with_unlimited_budget_matches_plain() {
        let t = suite::by_name("sb").unwrap();
        let conv = Conversion::convert(&t).unwrap();
        let mut a = PerpleRunner::new(SimConfig::default().with_seed(7));
        let plain = a.run(&conv.perpetual, 300);
        let mut b = PerpleRunner::new(SimConfig::default().with_seed(7));
        let budgeted = b.run_budgeted(&conv.perpetual, 300, &Budget::unlimited());
        assert_eq!(plain, budgeted);
        assert!(budgeted.complete);
        assert_eq!(budgeted.iterations, 300);
    }

    #[test]
    fn expired_budget_trims_to_whole_iteration_prefix() {
        let t = suite::by_name("mp").unwrap(); // 2 records per iteration
        let conv = Conversion::convert(&t).unwrap();
        let mut a = PerpleRunner::new(SimConfig::default().with_seed(8));
        let full = a.run(&conv.perpetual, 500);
        let mut b = PerpleRunner::new(SimConfig::default().with_seed(8));
        let part = b.run_budgeted(&conv.perpetual, 500, &Budget::with_poll_limit(20));
        assert!(!part.complete);
        assert!(part.iterations < 500);
        assert_eq!(
            part.frame_bufs[0].len() as u64,
            part.iterations * 2,
            "whole frames only"
        );
        assert_eq!(
            part.frame_bufs[0].as_slice(),
            &full.frame_bufs[0][..part.frame_bufs[0].len()],
            "trimmed buffers must be a prefix of the full run"
        );
    }

    #[test]
    fn deterministic_across_equal_seeds() {
        let (_, _, a) = run_test("podwr001", 400, 9);
        let (_, _, b) = run_test("podwr001", 400, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn content_digest_tracks_run_content() {
        let (_, _, a) = run_test("sb", 300, 5);
        let (_, _, b) = run_test("sb", 300, 5);
        assert_eq!(
            a.content_digest(),
            b.content_digest(),
            "equal runs, equal digests"
        );
        let (_, _, c) = run_test("sb", 300, 6);
        assert_ne!(
            a.content_digest(),
            c.content_digest(),
            "different seed, different digest"
        );
        let (_, _, d) = run_test("sb", 299, 5);
        assert_ne!(
            a.content_digest(),
            d.content_digest(),
            "different length, different digest"
        );
    }

    #[test]
    fn whole_convertible_suite_runs() {
        for t in suite::convertible() {
            let conv = Conversion::convert(&t).unwrap();
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(11));
            let run = runner.run(&conv.perpetual, 200);
            assert_eq!(run.frame_bufs.len(), t.load_thread_count(), "{}", t.name());
            let reads = t.reads_per_thread();
            for (pos, lt) in t.load_threads().iter().enumerate() {
                assert_eq!(
                    run.frame_bufs[pos].len(),
                    200 * reads[lt.index()],
                    "{}",
                    t.name()
                );
            }
        }
    }
}
