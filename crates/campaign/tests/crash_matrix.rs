//! The self-injected crash-point matrix — the tentpole proof of the
//! durability layer.
//!
//! A reference campaign runs uninterrupted while its [`StoreIo`] shim
//! counts write boundaries (every atomic write, append, fsync, mkdir,
//! remove, truncate, and rename of the store, cache, and journal). The
//! matrix then replays the same campaign once **per boundary k**, with
//! `abort@k` simulating `SIGKILL` at exactly that write: the run dies, a
//! fresh (new-process) store handle runs `fsck --repair`, and either
//! `resume` finishes the interrupted run or — when the crash landed before
//! any durable state — a fresh run executes from scratch. In every case
//! the final `items.json` must be **byte-identical** to the reference, and
//! no journaled item may ever execute twice.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use perple_campaign::{
    fsck, resume_campaign, run_campaign_with, ArtifactCache, CampaignItem, CampaignSpec, CrashPlan,
    DurabilityPolicy, ExecOutcome, FsyncPolicy, Hasher, Journal, LintSummary, OutcomeRecord,
    RunMeta, RunStore, StageWallMs, StoreIo,
};

fn tmp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("perple-crash-matrix-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::named("cm");
    spec.tests = vec!["sb".to_owned(), "mp".to_owned()];
    spec.seeds = vec![1, 2, 3];
    spec
}

fn items() -> Vec<CampaignItem> {
    let mut out = Vec::new();
    for test in ["sb", "mp"] {
        for seed in [1u64, 2, 3] {
            let mut h = Hasher::new();
            h.field("test", test).field_u64("seed", seed);
            out.push(CampaignItem {
                test: test.to_owned(),
                seed,
                fingerprint: h.finish(),
            });
        }
    }
    out
}

fn meta() -> RunMeta {
    RunMeta {
        created_unix_ms: 77,
        git: "matrix".to_owned(),
        lint: Some(LintSummary {
            errors: 0,
            warnings: 1,
            notes: 0,
        }),
    }
}

fn policy() -> DurabilityPolicy {
    DurabilityPolicy {
        chunk: 2,
        fsync: FsyncPolicy::Batch,
    }
}

/// A deterministic executor that also counts how many times each item ran
/// (the zero-re-execution proof reads these counts).
fn exec_counting(
    counts: &Mutex<HashMap<(String, u64), usize>>,
) -> impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>> + '_ {
    move |batch| {
        let mut counts = counts.lock().unwrap();
        batch
            .iter()
            .map(|i| {
                *counts.entry((i.test.clone(), i.seed)).or_insert(0) += 1;
                Some(ExecOutcome {
                    record: OutcomeRecord {
                        test: i.test.clone(),
                        seed: i.seed,
                        fingerprint: i.fingerprint.hex(),
                        forbidden: i.test == "sb",
                        heuristic: i.seed * 7,
                        exhaustive: i.seed * 7,
                        degraded: false,
                        iterations: 64,
                        run_complete: true,
                        faults: 0,
                        digest: i.seed ^ 0xC0DE,
                        quarantined: false,
                        fault_kind: None,
                    },
                    cacheable: true,
                    wall: StageWallMs::default(),
                })
            })
            .collect()
    }
}

/// The finalized run under `root` (there must be exactly one).
fn sole_run_items(root: &Path) -> Vec<u8> {
    let store = RunStore::open(root).unwrap();
    let runs = store.list().unwrap();
    assert_eq!(runs.len(), 1, "exactly one finalized run expected");
    let id = runs[0]
        .get("id")
        .and_then(perple_analysis::jsonout::Json::as_str)
        .unwrap()
        .to_owned();
    fs::read(store.run_dir(&id).join("items.json")).unwrap()
}

#[test]
fn every_crash_boundary_recovers_bit_identically_with_zero_reexecution() {
    let base = tmp_root("matrix");

    // Reference: uninterrupted run, counting boundaries.
    let ref_root = base.join("ref");
    let ref_io = StoreIo::unplanned();
    {
        let store = RunStore::open_with(&ref_root, ref_io.clone()).unwrap();
        let cache = ArtifactCache::open_with(&ref_root, ref_io.clone()).unwrap();
        let counts = Mutex::new(HashMap::new());
        let summary = run_campaign_with(
            &store,
            &cache,
            &spec(),
            &items(),
            &meta(),
            policy(),
            exec_counting(&counts),
        )
        .unwrap();
        assert_eq!(summary.executed, 6);
        assert_eq!(summary.recovered, 0);
    }
    let total = ref_io.boundaries();
    assert!(
        total > 10,
        "a real campaign crosses many boundaries: {total}"
    );
    let reference = sole_run_items(&ref_root);

    for k in 0..total {
        let root = base.join(format!("k{k}"));
        let counts = Mutex::new(HashMap::new());

        // Crash at boundary k. The run must die (every boundary is
        // pre-finalize-completion work for this single-run store).
        let io = StoreIo::new(CrashPlan::abort_at(k));
        {
            let store = RunStore::open_with(&root, io.clone()).unwrap();
            let cache = ArtifactCache::open_with(&root, io.clone()).unwrap();
            let result = run_campaign_with(
                &store,
                &cache,
                &spec(),
                &items(),
                &meta(),
                policy(),
                exec_counting(&counts),
            );
            match result {
                Err(e) => assert!(e.is_crash(), "k={k}: {e}"),
                // The final index append is the last boundary; an abort
                // *after* every store write would not fire. All earlier
                // ks must fail.
                Ok(_) => panic!("k={k}: abort point never fired"),
            }
        }

        // New process: unplanned handles, fsck --repair, then resume or
        // re-run.
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let report = fsck(&store, &cache, true).unwrap();
        assert!(
            report.is_healthy(),
            "k={k}: fsck must repair everything: {:?}",
            report.findings
        );

        let pending = store.pending_runs();
        let journaled: Vec<(String, u64)> = match pending.as_slice() {
            [id] => Journal::replay(&store.journal_path(id))
                .unwrap()
                .records
                .iter()
                .map(|r| (r.test.clone(), r.seed))
                .collect(),
            _ => Vec::new(),
        };

        match pending.as_slice() {
            [id] => {
                let summary = resume_campaign(
                    &store,
                    &cache,
                    id,
                    &spec(),
                    &items(),
                    &meta(),
                    policy(),
                    exec_counting(&counts),
                )
                .unwrap();
                assert_eq!(summary.recovered, journaled.len(), "k={k}");
            }
            [] if !store.list().unwrap().is_empty() => {
                // The crash hit at/after finalize (e.g. the marker removal
                // or index append): fsck already completed the run.
            }
            [] => {
                // The crash landed before any resumable state: run fresh.
                run_campaign_with(
                    &store,
                    &cache,
                    &spec(),
                    &items(),
                    &meta(),
                    policy(),
                    exec_counting(&counts),
                )
                .unwrap();
            }
            many => panic!("k={k}: more than one pending run: {many:?}"),
        }

        // Bit-identity with the uninterrupted reference.
        let recovered = sole_run_items(&root);
        assert_eq!(
            recovered, reference,
            "k={k}: items.json differs from the uninterrupted run"
        );

        // Zero re-execution: every journaled item ran exactly once across
        // crash + resume (resume served it from the replay, not the
        // executor).
        let counts = counts.lock().unwrap();
        for key in &journaled {
            assert_eq!(
                counts.get(key),
                Some(&1),
                "k={k}: journaled item {key:?} was re-executed"
            );
        }
        // And nothing ran more than twice even in the re-run case (once
        // before the crash, at most once after).
        for (key, n) in counts.iter() {
            assert!(*n <= 2, "k={k}: item {key:?} executed {n} times");
        }
    }
    let _ = fs::remove_dir_all(base);
}

#[test]
fn transient_failures_at_every_boundary_are_absorbed() {
    let base = tmp_root("transient");
    let ref_root = base.join("ref");
    let ref_io = StoreIo::unplanned();
    {
        let store = RunStore::open_with(&ref_root, ref_io.clone()).unwrap();
        let cache = ArtifactCache::open_with(&ref_root, ref_io.clone()).unwrap();
        let counts = Mutex::new(HashMap::new());
        run_campaign_with(
            &store,
            &cache,
            &spec(),
            &items(),
            &meta(),
            policy(),
            exec_counting(&counts),
        )
        .unwrap();
    }
    let total = ref_io.boundaries();
    let reference = sole_run_items(&ref_root);

    // One flaky-filesystem failure at each boundary: the retry loop must
    // absorb every single one with no behavioural difference at all.
    for k in 0..total {
        let root = base.join(format!("k{k}"));
        let io = StoreIo::new(CrashPlan::transient_at(k, 1));
        let store = RunStore::open_with(&root, io.clone()).unwrap();
        let cache = ArtifactCache::open_with(&root, io.clone()).unwrap();
        let counts = Mutex::new(HashMap::new());
        let summary = run_campaign_with(
            &store,
            &cache,
            &spec(),
            &items(),
            &meta(),
            policy(),
            exec_counting(&counts),
        )
        .unwrap();
        assert_eq!(summary.executed, 6, "k={k}");
        assert_eq!(sole_run_items(&root), reference, "k={k}");
    }
    let _ = fs::remove_dir_all(base);
}

#[test]
fn empty_crash_plan_is_byte_identical_to_an_unshimmed_store() {
    let base = tmp_root("noplan");
    let plain_root = base.join("plain");
    let shimmed_root = base.join("shimmed");

    for (root, io) in [
        (&plain_root, StoreIo::unplanned()),
        (&shimmed_root, StoreIo::new(CrashPlan::none())),
    ] {
        let store = RunStore::open_with(root, io.clone()).unwrap();
        let cache = ArtifactCache::open_with(root, io.clone()).unwrap();
        let counts = Mutex::new(HashMap::new());
        run_campaign_with(
            &store,
            &cache,
            &spec(),
            &items(),
            &meta(),
            policy(),
            exec_counting(&counts),
        )
        .unwrap();
    }
    assert_eq!(
        sole_run_items(&plain_root),
        sole_run_items(&shimmed_root),
        "an empty plan must not perturb a single byte of items.json"
    );
    // The whole deterministic surface matches: item files and the index
    // line structure (manifests differ only in wall-clock fields).
    let plain = RunStore::open(&plain_root).unwrap();
    let shimmed = RunStore::open(&shimmed_root).unwrap();
    assert_eq!(plain.list().unwrap().len(), shimmed.list().unwrap().len());
    let _ = fs::remove_dir_all(base);
}
