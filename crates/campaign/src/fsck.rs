//! Store consistency checking and repair — `perple campaign fsck`.
//!
//! Walks every durable artifact of a campaign store — the `runs.jsonl`
//! index, each run directory (manifest, items, pending marker, journal,
//! stray temp files), and the content-addressed cache — verifying
//! checksums and cross-references, and classifying every defect under the
//! [`StorageKind`] taxonomy:
//!
//! | damage                                | kind                | repair |
//! |---------------------------------------|---------------------|--------|
//! | stray `.tmp` from a died atomic write | `TornWrite`         | remove |
//! | torn trailing journal frame           | `TornWrite`         | truncate to the valid prefix |
//! | torn / unparseable index line         | `TornWrite` / `ChecksumMismatch` | rebuild index from manifests |
//! | finalize died between manifest and marker removal | `TornWrite` | remove marker, rebuild index |
//! | mid-journal checksum failure          | `ChecksumMismatch`  | — (refused; not a torn append) |
//! | unparseable manifest / items file     | `ChecksumMismatch`  | — (source of truth is gone) |
//! | run dir with neither manifest nor marker | `OrphanRun`      | remove the reservation |
//! | manifest missing from index, or index entry with no run | `StaleIndex` | rebuild index from manifests |
//! | cache entry failing the content-address contract | `ChecksumMismatch` | quarantine |
//!
//! Repairs are **conservative**: anything that can be rebuilt from a
//! surviving source of truth (the index, from manifests) or safely
//! amputated (torn tails, stray temps, empty reservations) is; anything
//! whose source of truth is itself damaged is reported and left alone.
//! A run with a pending marker and no manifest is not damage — it is an
//! interrupted run, reported as *resumable*.

use std::fs;
use std::path::PathBuf;

use perple_analysis::jsonout::Json;

use crate::cache::ArtifactCache;
use crate::journal::Journal;
use crate::store::RunStore;
use crate::{CampaignError, StorageKind};

/// One defect (or repaired defect) found by [`fsck`].
#[derive(Debug, Clone)]
pub struct Finding {
    /// Damage classification.
    pub kind: StorageKind,
    /// The damaged path.
    pub path: PathBuf,
    /// Human-readable description of the damage.
    pub detail: String,
    /// True iff fsck knows a safe repair for this defect.
    pub repairable: bool,
    /// True iff the repair was applied (always false without `--repair`).
    pub repaired: bool,
}

/// What a full [`fsck`] pass found (and possibly fixed).
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every defect, discovery order.
    pub findings: Vec<Finding>,
    /// Run directories examined.
    pub runs_checked: usize,
    /// Cache entry files examined.
    pub cache_entries_checked: usize,
    /// Interrupted-but-intact runs that `campaign resume` can finish.
    pub resumable: Vec<String>,
    /// Findings whose repair was applied.
    pub repaired: usize,
}

impl FsckReport {
    /// True iff the store has no defects at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True iff the store is clean **or** every defect was repaired —
    /// the exit-0 condition of `campaign fsck`.
    pub fn is_healthy(&self) -> bool {
        self.findings.iter().all(|f| f.repaired)
    }

    /// Human-readable report for the CLI.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{} {}: {} [{}]\n",
                if f.repaired {
                    "repaired"
                } else if f.repairable {
                    "repairable"
                } else {
                    "damaged"
                },
                f.kind,
                f.detail,
                f.path.display(),
            ));
        }
        for id in &self.resumable {
            s.push_str(&format!(
                "resumable {id}: interrupted run (finish with `campaign resume {id}`)\n"
            ));
        }
        s.push_str(&format!(
            "checked {} run(s), {} cache entr(ies): {}\n",
            self.runs_checked,
            self.cache_entries_checked,
            if self.is_clean() {
                "clean".to_owned()
            } else {
                format!(
                    "{} finding(s), {} repaired",
                    self.findings.len(),
                    self.repaired
                )
            }
        ));
        s
    }

    /// The report as JSON (for `campaign fsck --json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("kind", Json::from(f.kind.name())),
                                ("path", Json::from(f.path.display().to_string())),
                                ("detail", Json::from(f.detail.as_str())),
                                ("repairable", Json::from(f.repairable)),
                                ("repaired", Json::from(f.repaired)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "resumable",
                Json::Arr(
                    self.resumable
                        .iter()
                        .map(|id| Json::from(id.as_str()))
                        .collect(),
                ),
            ),
            ("runs_checked", Json::from(self.runs_checked)),
            (
                "cache_entries_checked",
                Json::from(self.cache_entries_checked),
            ),
            ("repaired", Json::from(self.repaired)),
            ("healthy", Json::from(self.is_healthy())),
        ])
    }
}

/// Context threaded through the per-area check passes.
struct Fsck<'a> {
    store: &'a RunStore,
    cache: &'a ArtifactCache,
    repair: bool,
    report: FsckReport,
    /// Set when any index-level damage is found; with `repair` the whole
    /// index is rebuilt once from surviving manifests at the end.
    rebuild_index: bool,
}

/// Checks (and with `repair`, fixes) a whole campaign store.
///
/// # Errors
/// [`CampaignError`] only for repair IO failures — damage itself is
/// reported in the [`FsckReport`], never as an error.
pub fn fsck(
    store: &RunStore,
    cache: &ArtifactCache,
    repair: bool,
) -> Result<FsckReport, CampaignError> {
    let mut ctx = Fsck {
        store,
        cache,
        repair,
        report: FsckReport::default(),
        rebuild_index: false,
    };
    let index_ids = ctx.check_index();
    ctx.check_runs(&index_ids)?;
    ctx.check_cache()?;
    if ctx.rebuild_index && repair {
        ctx.rebuild_index()?;
    }
    Ok(ctx.report)
}

impl Fsck<'_> {
    fn finding(&mut self, kind: StorageKind, path: PathBuf, detail: String, repairable: bool) {
        self.report.findings.push(Finding {
            kind,
            path,
            detail,
            repairable,
            repaired: false,
        });
    }

    /// Marks the most recent finding repaired.
    fn repaired(&mut self) {
        if let Some(last) = self.report.findings.last_mut() {
            last.repaired = true;
            self.report.repaired += 1;
        }
    }

    /// Index pass: framing and parseability of `runs.jsonl`. Returns the
    /// ids the index claims (cross-checked against run dirs later).
    fn check_index(&mut self) -> Vec<String> {
        let path = self.store.index_path();
        let Ok(bytes) = fs::read(&path) else {
            return Vec::new();
        };
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            self.finding(
                StorageKind::TornWrite,
                path.clone(),
                "final index line has no newline (an append died mid-write)".to_owned(),
                true,
            );
            self.rebuild_index = true;
        }
        let text = String::from_utf8_lossy(&bytes);
        let lines: Vec<&str> = text
            .split('\n')
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let mut ids = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            match perple_analysis::jsonout::parse(line) {
                Ok(v) => {
                    if let Some(id) = v.get("id").and_then(Json::as_str) {
                        ids.push(id.to_owned());
                    }
                }
                Err(e) => {
                    let last = i + 1 == lines.len();
                    self.finding(
                        if last {
                            StorageKind::TornWrite
                        } else {
                            StorageKind::ChecksumMismatch
                        },
                        path.clone(),
                        format!(
                            "index line {} does not parse ({e}){}",
                            i + 1,
                            if last {
                                " — torn trailing append"
                            } else {
                                ""
                            }
                        ),
                        true,
                    );
                    self.rebuild_index = true;
                }
            }
        }
        ids
    }

    /// Per-run pass: stray temps, journal integrity, manifest/items
    /// parseability, lifecycle state, index membership.
    fn check_runs(&mut self, index_ids: &[String]) -> Result<(), CampaignError> {
        let mut run_ids = Vec::new();
        if let Ok(entries) = fs::read_dir(self.store.root().join("runs")) {
            run_ids = entries
                .flatten()
                .filter(|e| e.path().is_dir())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            run_ids.sort();
        }
        self.report.runs_checked = run_ids.len();

        for id in &run_ids {
            let dir = self.store.run_dir(id);

            // Stray temp files: an atomic write whose rename never ran.
            let mut temps: Vec<PathBuf> = fs::read_dir(&dir)
                .map(|entries| {
                    entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
                        .collect()
                })
                .unwrap_or_default();
            temps.sort();
            for tmp in temps {
                self.finding(
                    StorageKind::TornWrite,
                    tmp.clone(),
                    "stray temp file from an interrupted atomic write".to_owned(),
                    true,
                );
                if self.repair {
                    self.store.io().remove_file(&tmp)?;
                    self.repaired();
                }
            }

            // Journal integrity.
            let journal_path = self.store.journal_path(id);
            if journal_path.exists() {
                match Journal::replay(&journal_path) {
                    Ok(replay) if replay.torn_tail => {
                        self.finding(
                            StorageKind::TornWrite,
                            journal_path.clone(),
                            format!(
                                "torn trailing journal frame ({} valid records survive)",
                                replay.records.len()
                            ),
                            true,
                        );
                        if self.repair {
                            self.store.io().truncate(&journal_path, replay.valid_len)?;
                            self.repaired();
                        }
                    }
                    Ok(_) => {}
                    Err(e) => self.finding(
                        StorageKind::ChecksumMismatch,
                        journal_path.clone(),
                        format!("journal replay refused: {e}"),
                        false,
                    ),
                }
            }

            // Lifecycle: manifest × pending marker.
            let has_manifest = dir.join("manifest.json").exists();
            let has_pending = self.store.pending_path(id).exists();
            match (has_manifest, has_pending) {
                (true, true) => {
                    // Finalize died between the manifest landing and the
                    // marker removal; the run is complete.
                    self.finding(
                        StorageKind::TornWrite,
                        self.store.pending_path(id),
                        "pending marker outlived the manifest (finalize was interrupted)"
                            .to_owned(),
                        true,
                    );
                    self.rebuild_index = true; // the index append may also have been lost
                    if self.repair {
                        self.store.io().remove_file(&self.store.pending_path(id))?;
                        self.repaired();
                    }
                }
                (false, true) => self.report.resumable.push(id.clone()),
                (false, false) => {
                    // A reservation that never got its pending marker holds
                    // no durable work (the journal is only created after
                    // the marker lands) — safe to release.
                    self.finding(
                        StorageKind::OrphanRun,
                        dir.clone(),
                        "run directory has neither manifest nor pending marker".to_owned(),
                        true,
                    );
                    if self.repair {
                        fs::remove_dir_all(&dir).map_err(|e| CampaignError::io(&dir, e))?;
                        self.repaired();
                        continue; // nothing left to cross-check
                    }
                }
                (true, false) => {}
            }

            // Completed-run files must parse; their content has no
            // redundant copy, so damage is report-only.
            if has_manifest {
                if let Err(e) = self.store.load_manifest(id) {
                    self.finding(
                        StorageKind::ChecksumMismatch,
                        dir.join("manifest.json"),
                        format!("manifest does not parse: {e}"),
                        false,
                    );
                }
                if let Err(e) = self.store.load_items(id) {
                    self.finding(
                        StorageKind::ChecksumMismatch,
                        dir.join("items.json"),
                        format!("items file does not parse: {e}"),
                        false,
                    );
                }
                if !index_ids.iter().any(|i| i == id) {
                    self.finding(
                        StorageKind::StaleIndex,
                        self.store.index_path(),
                        format!("completed run {id:?} is missing from the index"),
                        true,
                    );
                    self.rebuild_index = true;
                }
            }
        }

        // Index entries pointing at nothing.
        for id in index_ids {
            if !self.store.run_dir(id).join("manifest.json").exists() {
                self.finding(
                    StorageKind::StaleIndex,
                    self.store.index_path(),
                    format!("index lists run {id:?} but no such completed run exists"),
                    true,
                );
                self.rebuild_index = true;
            }
        }
        Ok(())
    }

    /// Cache pass: every entry must honour the content-address contract.
    fn check_cache(&mut self) -> Result<(), CampaignError> {
        for namespace in ["result", "conv"] {
            for path in self.cache.entry_paths(namespace) {
                self.report.cache_entries_checked += 1;
                if path.extension().is_some_and(|x| x == "tmp") {
                    self.finding(
                        StorageKind::TornWrite,
                        path.clone(),
                        "stray temp file from an interrupted cache write".to_owned(),
                        true,
                    );
                    if self.repair {
                        self.store.io().remove_file(&path)?;
                        self.repaired();
                    }
                    continue;
                }
                if let Some(reason) = ArtifactCache::verify_entry(&path) {
                    self.finding(
                        StorageKind::ChecksumMismatch,
                        path.clone(),
                        format!("cache entry fails verification: {reason}"),
                        true,
                    );
                    if self.repair {
                        self.cache.quarantine(&path)?;
                        self.repaired();
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuilds `runs.jsonl` from scratch out of every surviving valid
    /// manifest, ordered by `(created_unix_ms, id)` — and marks every
    /// index-level finding repaired.
    fn rebuild_index(&mut self) -> Result<(), CampaignError> {
        let mut manifests: Vec<(u64, String, Json)> = Vec::new();
        if let Ok(entries) = fs::read_dir(self.store.root().join("runs")) {
            for entry in entries.flatten() {
                let id = entry.file_name().to_string_lossy().into_owned();
                if let Ok(manifest) = self.store.load_manifest(&id) {
                    let created = manifest
                        .get("created_unix_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    manifests.push((created, id, manifest));
                }
            }
        }
        manifests.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut text = String::new();
        for (_, _, manifest) in &manifests {
            text.push_str(&RunStore::index_line(manifest).render());
            text.push('\n');
        }
        self.store
            .io()
            .write_atomic(&self.store.index_path(), &text)?;
        for finding in &mut self.report.findings {
            if !finding.repaired
                && finding.repairable
                && matches!(
                    finding.kind,
                    StorageKind::StaleIndex
                        | StorageKind::TornWrite
                        | StorageKind::ChecksumMismatch
                )
                && finding.path == self.store.index_path()
            {
                finding.repaired = true;
                self.report.repaired += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::OutcomeRecord;
    use std::path::Path;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(root: &Path) -> (RunStore, ArtifactCache) {
        (
            RunStore::open(root).unwrap(),
            ArtifactCache::open(root).unwrap(),
        )
    }

    fn manifest(id: &str, created: u64) -> Json {
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("id", Json::from(id)),
            ("name", Json::from("f")),
            ("created_unix_ms", Json::from(created)),
            ("counts", Json::obj(vec![("items", Json::from(0u64))])),
        ])
    }

    fn record(seed: u64) -> OutcomeRecord {
        OutcomeRecord {
            test: "sb".to_owned(),
            seed,
            fingerprint: format!("{seed:032x}"),
            forbidden: false,
            heuristic: 1,
            exhaustive: 1,
            degraded: false,
            iterations: 10,
            run_complete: true,
            faults: 0,
            digest: seed,
            quarantined: false,
            fault_kind: None,
        }
    }

    #[test]
    fn a_clean_store_has_no_findings() {
        let root = tmp_root("clean");
        let (store, cache) = open(&root);
        store
            .write_run("f-0001", &manifest("f-0001", 1), &[record(1)])
            .unwrap();
        let report = fsck(&store, &cache, false).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.is_healthy());
        assert_eq!(report.runs_checked, 1);
        assert!(report.resumable.is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn interrupted_runs_are_resumable_not_defects() {
        let root = tmp_root("resumable");
        let (store, cache) = open(&root);
        let id = store.begin_run("f").unwrap();
        store
            .write_pending(&id, &Json::obj(vec![("spec", Json::from("x"))]))
            .unwrap();
        let report = fsck(&store, &cache, false).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.resumable, vec![id]);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn torn_index_line_is_found_and_rebuilt() {
        let root = tmp_root("tornindex");
        let (store, cache) = open(&root);
        store
            .write_run("f-0001", &manifest("f-0001", 1), &[])
            .unwrap();
        store
            .write_run("f-0002", &manifest("f-0002", 2), &[])
            .unwrap();
        let path = store.index_path();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"id\":\"f-00");
        fs::write(&path, &bytes).unwrap();

        let dry = fsck(&store, &cache, false).unwrap();
        assert!(!dry.is_clean());
        assert!(dry
            .findings
            .iter()
            .any(|f| f.kind == StorageKind::TornWrite && !f.repaired));

        let wet = fsck(&store, &cache, true).unwrap();
        assert!(wet.is_healthy(), "{:?}", wet.findings);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let ids: Vec<String> = store
            .list()
            .unwrap()
            .iter()
            .filter_map(|l| l.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect();
        assert_eq!(ids, ["f-0001", "f-0002"]);
        assert!(fsck(&store, &cache, false).unwrap().is_clean());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn missing_index_lines_are_rebuilt_from_manifests() {
        let root = tmp_root("staleindex");
        let (store, cache) = open(&root);
        store
            .write_run("f-0001", &manifest("f-0001", 1), &[])
            .unwrap();
        store
            .write_run("f-0002", &manifest("f-0002", 2), &[])
            .unwrap();
        // Lose the index entirely — every run is now stale-indexed.
        fs::remove_file(store.index_path()).unwrap();
        let report = fsck(&store, &cache, true).unwrap();
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.kind == StorageKind::StaleIndex && f.repaired),
            "{:?}",
            report.findings
        );
        assert_eq!(store.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn index_entries_without_runs_are_stale() {
        let root = tmp_root("ghost");
        let (store, cache) = open(&root);
        store
            .write_run("f-0001", &manifest("f-0001", 1), &[])
            .unwrap();
        fs::remove_dir_all(store.run_dir("f-0001")).unwrap();
        let report = fsck(&store, &cache, true).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == StorageKind::StaleIndex && f.repaired));
        assert!(store.list().unwrap().is_empty(), "ghost entry dropped");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn orphan_reservations_are_released() {
        let root = tmp_root("orphan");
        let (store, cache) = open(&root);
        let id = store.begin_run("f").unwrap();
        let report = fsck(&store, &cache, false).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == StorageKind::OrphanRun && !f.repaired));
        let wet = fsck(&store, &cache, true).unwrap();
        assert!(wet.is_healthy(), "{:?}", wet.findings);
        assert!(!store.run_dir(&id).exists(), "reservation released");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn interrupted_finalize_is_completed() {
        let root = tmp_root("finalize");
        let (store, cache) = open(&root);
        let id = store.begin_run("f").unwrap();
        store
            .write_pending(&id, &Json::obj(vec![("spec", Json::from("x"))]))
            .unwrap();
        // Simulate a crash after the manifest landed but before the
        // marker was removed and the index appended.
        fs::write(
            store.run_dir(&id).join("manifest.json"),
            manifest(&id, 5).render(),
        )
        .unwrap();
        fs::write(
            store.run_dir(&id).join("items.json"),
            Json::obj(vec![
                ("schema", Json::from(1u64)),
                ("items", Json::Arr(Vec::new())),
            ])
            .render(),
        )
        .unwrap();
        let report = fsck(&store, &cache, true).unwrap();
        assert!(report.is_healthy(), "{:?}", report.findings);
        assert!(!store.pending_path(&id).exists(), "marker removed");
        assert_eq!(store.resolve("latest").unwrap(), id, "index completed");
        assert!(fsck(&store, &cache, false).unwrap().is_clean());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn torn_journal_tails_are_truncated() {
        let root = tmp_root("tornwal");
        let (store, cache) = open(&root);
        let id = store.begin_run("f").unwrap();
        store
            .write_pending(&id, &Json::obj(vec![("spec", Json::from("x"))]))
            .unwrap();
        let path = store.journal_path(&id);
        {
            use crate::io::StoreIo;
            use crate::journal::{FsyncPolicy, JournalHeader};
            let mut j = Journal::create(
                StoreIo::unplanned(),
                &path,
                FsyncPolicy::Never,
                &JournalHeader {
                    id: id.clone(),
                    name: "f".to_owned(),
                    items: 2,
                },
            )
            .unwrap();
            j.append_record(&record(1)).unwrap();
        }
        // Tear the last frame.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();

        let report = fsck(&store, &cache, true).unwrap();
        assert!(report.is_healthy(), "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == StorageKind::TornWrite && f.path == path && f.repaired));
        let replay = Journal::replay(&path).unwrap();
        assert!(!replay.torn_tail, "tail amputated");
        assert!(replay.records.is_empty(), "the torn record is gone");
        assert_eq!(report.resumable, vec![id]);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn stray_temps_and_corrupt_cache_entries_are_cleaned() {
        let root = tmp_root("cache");
        let (store, cache) = open(&root);
        store
            .write_run("f-0001", &manifest("f-0001", 1), &[])
            .unwrap();
        // Stray run temp.
        fs::write(store.run_dir("f-0001").join("manifest.tmp"), "{half").unwrap();
        // Corrupt cache entry + stray cache temp.
        let shard = root.join("cas/result/ab");
        fs::create_dir_all(&shard).unwrap();
        let bad = shard.join(format!("ab{}.json", "0".repeat(30)));
        fs::write(&bad, "{truncated").unwrap();
        fs::write(shard.join("deadbeef.tmp"), "{hal").unwrap();

        let report = fsck(&store, &cache, true).unwrap();
        assert!(report.is_healthy(), "{:?}", report.findings);
        assert_eq!(report.cache_entries_checked, 2);
        assert!(!store.run_dir("f-0001").join("manifest.tmp").exists());
        assert!(!bad.exists(), "corrupt entry quarantined");
        assert!(root.join("cas/quarantine").exists());
        assert!(fsck(&store, &cache, false).unwrap().is_clean());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn mid_journal_corruption_is_reported_not_repaired() {
        let root = tmp_root("midwal");
        let (store, cache) = open(&root);
        let id = store.begin_run("f").unwrap();
        store
            .write_pending(&id, &Json::obj(vec![("spec", Json::from("x"))]))
            .unwrap();
        let path = store.journal_path(&id);
        {
            use crate::io::StoreIo;
            use crate::journal::{FsyncPolicy, JournalHeader};
            let mut j = Journal::create(
                StoreIo::unplanned(),
                &path,
                FsyncPolicy::Never,
                &JournalHeader {
                    id: id.clone(),
                    name: "f".to_owned(),
                    items: 2,
                },
            )
            .unwrap();
            j.append_record(&record(1)).unwrap();
            j.append_record(&record(2)).unwrap();
        }
        // Flip a byte inside the first record frame (valid frames follow).
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let report = fsck(&store, &cache, true).unwrap();
        let finding = report
            .findings
            .iter()
            .find(|f| f.path == path)
            .expect("journal finding");
        assert_eq!(finding.kind, StorageKind::ChecksumMismatch);
        assert!(!finding.repairable);
        assert!(!report.is_healthy());
        let _ = fs::remove_dir_all(root);
    }
}
