//! The append-only on-disk run store.
//!
//! Layout under the store root (default `results/store/`):
//!
//! ```text
//! results/store/
//!   runs.jsonl                  append-only index, one line per run
//!   runs/<id>/manifest.json     spec, config, git-describe, timings
//!   runs/<id>/items.json        deterministic per-item outcome records
//!   cas/...                     the content-addressed cache (see `cache`)
//! ```
//!
//! Runs are **append-only**: a run directory is written once (files land
//! via temp-file + rename so a crash never leaves a half-written manifest
//! behind a valid name) and never mutated; re-running a campaign creates a
//! new run id. `items.json` contains only deterministic outcome fields —
//! counts, seeds, fingerprints, digests, never wall-clock values — so two
//! runs of an identical campaign produce **byte-identical** item files.
//! All wall-clock data (created-at, stage walls) lives in the manifest.

use std::fs;
use std::path::{Path, PathBuf};

use perple_analysis::jsonout::{self, Json};

use crate::io::StoreIo;
use crate::{CampaignError, StorageKind};

/// Attempts to win a run-id reservation before declaring contention.
const RESERVE_ATTEMPTS: u32 = 32;

/// One item's deterministic outcome: what the counters saw, never when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// Test name.
    pub test: String,
    /// The spec-level seed axis value this item ran under.
    pub seed: u64,
    /// Hex cache fingerprint of the item's complete inputs.
    pub fingerprint: String,
    /// True iff the target outcome is forbidden under x86-TSO (any
    /// nonzero count is then a consistency violation).
    pub forbidden: bool,
    /// Target occurrences, heuristic counter.
    pub heuristic: u64,
    /// Target occurrences, exhaustive counter (or the heuristic counts
    /// when `degraded`).
    pub exhaustive: u64,
    /// True iff the exhaustive count degraded to heuristic on budget
    /// expiry.
    pub degraded: bool,
    /// Whole iterations executed.
    pub iterations: u64,
    /// False iff the run stage was truncated by its budget.
    pub run_complete: bool,
    /// Injected machine faults observed during the run.
    pub faults: u64,
    /// Content digest of the run's buffers (`PerpleRun::content_digest`);
    /// equal fingerprints must imply equal digests.
    pub digest: u64,
    /// True iff every attempt failed and the item carries no counts.
    pub quarantined: bool,
    /// Failure kind that quarantined the item (`panic`, `timeout`, …).
    pub fault_kind: Option<String>,
}

impl OutcomeRecord {
    /// The identity compare matches items on: `(test, seed)`.
    pub fn key(&self) -> (String, u64) {
        (self.test.clone(), self.seed)
    }

    /// Observed target frequency (occurrences per iteration, heuristic
    /// counter); 0 for empty runs.
    pub fn rate(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.heuristic as f64 / self.iterations as f64
    }

    /// The record as a stable-key-order JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("test", Json::from(self.test.as_str())),
            ("seed", Json::from(self.seed)),
            ("fingerprint", Json::from(self.fingerprint.as_str())),
            ("forbidden", Json::from(self.forbidden)),
            ("heuristic", Json::from(self.heuristic)),
            ("exhaustive", Json::from(self.exhaustive)),
            ("degraded", Json::from(self.degraded)),
            ("iterations", Json::from(self.iterations)),
            ("run_complete", Json::from(self.run_complete)),
            ("faults", Json::from(self.faults)),
            ("digest", Json::from(self.digest)),
            ("quarantined", Json::from(self.quarantined)),
            (
                "fault_kind",
                match &self.fault_kind {
                    Some(k) => Json::from(k.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a record back from its JSON form.
    ///
    /// # Errors
    /// [`CampaignError::Corrupt`] when a required field is missing or
    /// mistyped.
    pub fn from_json(v: &Json) -> Result<Self, CampaignError> {
        let need = |field: &'static str| {
            move || CampaignError::Corrupt(format!("outcome record is missing {field:?}"))
        };
        Ok(Self {
            test: v
                .get("test")
                .and_then(Json::as_str)
                .ok_or_else(need("test"))?
                .to_owned(),
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or_else(need("seed"))?,
            fingerprint: v
                .get("fingerprint")
                .and_then(Json::as_str)
                .ok_or_else(need("fingerprint"))?
                .to_owned(),
            forbidden: v
                .get("forbidden")
                .and_then(Json::as_bool)
                .ok_or_else(need("forbidden"))?,
            heuristic: v
                .get("heuristic")
                .and_then(Json::as_u64)
                .ok_or_else(need("heuristic"))?,
            exhaustive: v
                .get("exhaustive")
                .and_then(Json::as_u64)
                .ok_or_else(need("exhaustive"))?,
            degraded: v
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(need("degraded"))?,
            iterations: v
                .get("iterations")
                .and_then(Json::as_u64)
                .ok_or_else(need("iterations"))?,
            run_complete: v
                .get("run_complete")
                .and_then(Json::as_bool)
                .ok_or_else(need("run_complete"))?,
            faults: v
                .get("faults")
                .and_then(Json::as_u64)
                .ok_or_else(need("faults"))?,
            digest: v
                .get("digest")
                .and_then(Json::as_u64)
                .ok_or_else(need("digest"))?,
            quarantined: v
                .get("quarantined")
                .and_then(Json::as_bool)
                .ok_or_else(need("quarantined"))?,
            fault_kind: v
                .get("fault_kind")
                .and_then(Json::as_str)
                .map(str::to_owned),
        })
    }
}

/// Handle on one store root.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
    io: StoreIo,
}

impl RunStore {
    /// The conventional store location: the `PERPLE_STORE` environment
    /// variable when set and non-empty, `results/store` (relative to the
    /// working directory) otherwise. `--store DIR` overrides both.
    pub fn default_root() -> PathBuf {
        match std::env::var_os("PERPLE_STORE") {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("results/store"),
        }
    }

    /// Opens (creating if needed) a store at `root` with a production
    /// (injection-free) IO shim.
    ///
    /// # Errors
    /// [`CampaignError::Io`] if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        Self::open_with(root, StoreIo::unplanned())
    }

    /// Opens a store whose every write crosses the given shim — the entry
    /// point of the crash matrix.
    ///
    /// # Errors
    /// [`CampaignError::Io`] if the directories cannot be created.
    pub fn open_with(root: impl Into<PathBuf>, io: StoreIo) -> Result<Self, CampaignError> {
        let root = root.into();
        fs::create_dir_all(root.join("runs")).map_err(|e| CampaignError::io(&root, e))?;
        Ok(Self { root, io })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's IO shim (shared with its cache and journals).
    pub fn io(&self) -> &StoreIo {
        &self.io
    }

    /// The directory of one run.
    pub fn run_dir(&self, id: &str) -> PathBuf {
        self.root.join("runs").join(id)
    }

    /// Allocates the next run id for a campaign name: `<name>-NNNN` with
    /// the smallest unused sequence number.
    pub fn next_run_id(&self, name: &str) -> String {
        let prefix = format!("{name}-");
        let mut max = 0u64;
        if let Ok(entries) = fs::read_dir(self.root.join("runs")) {
            for entry in entries.flatten() {
                let file = entry.file_name();
                let Some(rest) = file
                    .to_string_lossy()
                    .strip_prefix(&prefix)
                    .map(str::to_owned)
                else {
                    continue;
                };
                if let Ok(n) = rest.parse::<u64>() {
                    max = max.max(n);
                }
            }
        }
        format!("{name}-{:04}", max + 1)
    }

    /// Atomically reserves the next run id for `name`: the run directory
    /// itself is the lock (`create_dir` either wins or loses, never
    /// both), so two concurrent campaigns against one store can never
    /// claim the same id.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] with [`StorageKind::Contention`] if the
    /// reservation loses the race [`RESERVE_ATTEMPTS`] times in a row.
    pub fn begin_run(&self, name: &str) -> Result<String, CampaignError> {
        for _ in 0..RESERVE_ATTEMPTS {
            let id = self.next_run_id(name);
            if self.io.create_dir(&self.run_dir(&id))? {
                return Ok(id);
            }
        }
        Err(CampaignError::storage(
            StorageKind::Contention,
            format!(
                "could not reserve a {name:?} run id in {RESERVE_ATTEMPTS} attempts \
                 (another campaign is racing this store)"
            ),
        ))
    }

    /// The pending marker of a reserved-but-unfinalized run; its presence
    /// (without a manifest) is what makes a run **resumable**.
    pub fn pending_path(&self, id: &str) -> PathBuf {
        self.run_dir(id).join("pending.json")
    }

    /// The write-ahead journal of a run.
    pub fn journal_path(&self, id: &str) -> PathBuf {
        self.run_dir(id).join("journal.bin")
    }

    /// Writes the pending marker: everything resume needs to rebuild the
    /// run (the spec text and the original run metadata).
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure or injected crash.
    pub fn write_pending(&self, id: &str, pending: &Json) -> Result<(), CampaignError> {
        self.io
            .write_atomic(&self.pending_path(id), &pending.render())
    }

    /// Loads the pending marker of an interrupted run.
    ///
    /// # Errors
    /// [`CampaignError::NotFound`] if the run has no pending marker (it
    /// finished, or never started), [`CampaignError::Corrupt`] if the
    /// marker does not parse.
    pub fn load_pending(&self, id: &str) -> Result<Json, CampaignError> {
        let path = self.pending_path(id);
        let text = fs::read_to_string(&path)
            .map_err(|_| CampaignError::NotFound(format!("run {id:?} is not resumable")))?;
        jsonout::parse(&text)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))
    }

    /// Run ids that were reserved but never finalized (pending marker
    /// present, manifest absent) — the resumable set, oldest id first.
    pub fn pending_runs(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(self.root.join("runs")) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let id = e.file_name().to_string_lossy().into_owned();
                let dir = e.path();
                (dir.join("pending.json").exists() && !dir.join("manifest.json").exists())
                    .then_some(id)
            })
            .collect();
        ids.sort();
        ids
    }

    /// Writes one complete run: `manifest.json`, `items.json`, and the
    /// index line — append-only, atomically per file.
    ///
    /// # Errors
    /// [`CampaignError::Io`] on filesystem trouble; refuses to overwrite
    /// an existing run id (the store is append-only).
    pub fn write_run(
        &self,
        id: &str,
        manifest: &Json,
        items: &[OutcomeRecord],
    ) -> Result<(), CampaignError> {
        let dir = self.run_dir(id);
        if dir.exists() {
            return Err(CampaignError::Io(format!(
                "{}: run already exists (the store is append-only)",
                dir.display()
            )));
        }
        self.io.create_dir_all(&dir)?;
        self.persist_run(id, manifest, items)
    }

    /// Finalizes a run whose directory was reserved by [`RunStore::begin_run`]:
    /// writes the files, clears the pending marker, appends the index
    /// line. After this the run is complete and immutable.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure or injected crash.
    pub fn finalize_run(
        &self,
        id: &str,
        manifest: &Json,
        items: &[OutcomeRecord],
    ) -> Result<(), CampaignError> {
        self.persist_run(id, manifest, items)
    }

    fn persist_run(
        &self,
        id: &str,
        manifest: &Json,
        items: &[OutcomeRecord],
    ) -> Result<(), CampaignError> {
        let dir = self.run_dir(id);
        let items_doc = Json::obj(vec![
            ("schema", Json::from(1u64)),
            (
                "items",
                Json::Arr(items.iter().map(OutcomeRecord::to_json).collect()),
            ),
        ]);
        self.io
            .write_atomic(&dir.join("items.json"), &items_doc.render())?;
        self.io
            .write_atomic(&dir.join("manifest.json"), &manifest.render())?;
        // Manifest down, marker up: from here the run is complete even if
        // the index append below is lost (fsck re-derives the line).
        if self.pending_path(id).exists() {
            self.io.remove_file(&self.pending_path(id))?;
        }
        self.append_index(manifest)
    }

    /// The index line of one manifest (also how `fsck --repair` rebuilds
    /// the index from surviving manifests).
    pub(crate) fn index_line(manifest: &Json) -> Json {
        Json::obj(vec![
            ("id", manifest.get("id").cloned().unwrap_or(Json::Null)),
            ("name", manifest.get("name").cloned().unwrap_or(Json::Null)),
            (
                "created_unix_ms",
                manifest
                    .get("created_unix_ms")
                    .cloned()
                    .unwrap_or(Json::Null),
            ),
            (
                "counts",
                manifest.get("counts").cloned().unwrap_or(Json::Null),
            ),
        ])
    }

    /// The index file path.
    pub fn index_path(&self) -> PathBuf {
        self.root.join("runs.jsonl")
    }

    /// Appends one line to the `runs.jsonl` index. A torn trailing
    /// partial line from an earlier crash is amputated first, so a clean
    /// append also repairs the index's framing.
    fn append_index(&self, manifest: &Json) -> Result<(), CampaignError> {
        let path = self.index_path();
        if let Ok(existing) = fs::read(&path) {
            if !existing.is_empty() && existing.last() != Some(&b'\n') {
                let keep = existing
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |p| p + 1);
                self.io.truncate(&path, keep as u64)?;
            }
        }
        self.io
            .append_line(&path, &Self::index_line(manifest).render())
    }

    /// Every index line, oldest first. A torn trailing line (an append
    /// that died mid-write) is skipped — the listing must survive a
    /// crash; `fsck` reports and repairs the damage.
    ///
    /// # Errors
    /// [`CampaignError::Corrupt`] if a line **before** the final one is
    /// unparseable (that is corruption, not a torn append).
    pub fn list(&self) -> Result<Vec<Json>, CampaignError> {
        let path = self.index_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(CampaignError::io(&path, e)),
        };
        let lines: Vec<&str> = text
            .split('\n')
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let mut parsed = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match jsonout::parse(line) {
                Ok(v) => parsed.push(v),
                Err(_) if i + 1 == lines.len() => break, // torn trailing line
                Err(e) => {
                    return Err(CampaignError::Corrupt(format!(
                        "{}: line {}: {e}",
                        path.display(),
                        i + 1
                    )));
                }
            }
        }
        Ok(parsed)
    }

    /// Resolves a run reference to an exact id: an exact id, a unique id
    /// prefix, or `latest` (most recently appended index entry).
    ///
    /// # Errors
    /// [`CampaignError::NotFound`] for unknown or ambiguous references.
    pub fn resolve(&self, reference: &str) -> Result<String, CampaignError> {
        let index = self.list()?;
        let ids: Vec<String> = index
            .iter()
            .filter_map(|l| l.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect();
        if reference == "latest" {
            return ids
                .last()
                .cloned()
                .ok_or_else(|| CampaignError::NotFound("store has no runs".to_owned()));
        }
        if ids.iter().any(|i| i == reference) {
            return Ok(reference.to_owned());
        }
        let matches: Vec<&String> = ids.iter().filter(|i| i.starts_with(reference)).collect();
        match matches.as_slice() {
            [one] => Ok((*one).clone()),
            [] => Err(CampaignError::NotFound(format!(
                "no run matches {reference:?}"
            ))),
            many => Err(CampaignError::NotFound(format!(
                "{reference:?} is ambiguous ({} matches)",
                many.len()
            ))),
        }
    }

    /// Loads a run's manifest.
    ///
    /// # Errors
    /// [`CampaignError::NotFound`] for missing runs, [`CampaignError::Corrupt`]
    /// for unparseable manifests.
    pub fn load_manifest(&self, id: &str) -> Result<Json, CampaignError> {
        let path = self.run_dir(id).join("manifest.json");
        let text = fs::read_to_string(&path)
            .map_err(|_| CampaignError::NotFound(format!("run {id:?} has no manifest")))?;
        jsonout::parse(&text)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))
    }

    /// Loads a run's outcome records.
    ///
    /// # Errors
    /// [`CampaignError::NotFound`] / [`CampaignError::Corrupt`] as for
    /// [`RunStore::load_manifest`].
    pub fn load_items(&self, id: &str) -> Result<Vec<OutcomeRecord>, CampaignError> {
        let path = self.run_dir(id).join("items.json");
        let text = fs::read_to_string(&path)
            .map_err(|_| CampaignError::NotFound(format!("run {id:?} has no items file")))?;
        let doc = jsonout::parse(&text)
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))?;
        doc.get("items")
            .and_then(Json::as_arr)
            .ok_or_else(|| {
                CampaignError::Corrupt(format!("{}: missing \"items\" array", path.display()))
            })?
            .iter()
            .map(OutcomeRecord::from_json)
            .collect()
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout — recorded in every run manifest so stored
/// results can be traced back to the code that produced them.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, RunStore) {
        let dir = std::env::temp_dir().join(format!(
            "perple-campaign-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).unwrap();
        (dir, store)
    }

    fn record(test: &str, seed: u64, heuristic: u64) -> OutcomeRecord {
        OutcomeRecord {
            test: test.to_owned(),
            seed,
            fingerprint: format!("{:032x}", 0xABCDu128 + seed as u128),
            forbidden: false,
            heuristic,
            exhaustive: heuristic + 1,
            degraded: false,
            iterations: 400,
            run_complete: true,
            faults: 0,
            digest: 0xDEAD_BEEF ^ seed,
            quarantined: false,
            fault_kind: None,
        }
    }

    fn manifest(id: &str) -> Json {
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("id", Json::from(id)),
            ("name", Json::from("t")),
            ("created_unix_ms", Json::from(123u64)),
            ("counts", Json::obj(vec![("items", Json::from(2u64))])),
        ])
    }

    #[test]
    fn write_then_load_round_trips() {
        let (dir, store) = tmp_store("roundtrip");
        let items = vec![record("sb", 1, 9), record("mp", 2, 0)];
        store
            .write_run("t-0001", &manifest("t-0001"), &items)
            .unwrap();
        assert_eq!(store.load_items("t-0001").unwrap(), items);
        let m = store.load_manifest("t-0001").unwrap();
        assert_eq!(m.get("id").and_then(Json::as_str), Some("t-0001"));
        let index = store.list().unwrap();
        assert_eq!(index.len(), 1);
        assert_eq!(index[0].get("id").and_then(Json::as_str), Some("t-0001"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn item_files_are_byte_identical_for_equal_outcomes() {
        let (dir, store) = tmp_store("stable");
        let items = vec![record("sb", 1, 9)];
        store
            .write_run("a-0001", &manifest("a-0001"), &items)
            .unwrap();
        store
            .write_run("a-0002", &manifest("a-0002"), &items)
            .unwrap();
        let a = fs::read(store.run_dir("a-0001").join("items.json")).unwrap();
        let b = fs::read(store.run_dir("a-0002").join("items.json")).unwrap();
        assert_eq!(
            a, b,
            "deterministic outcomes must serialize byte-identically"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn store_is_append_only() {
        let (dir, store) = tmp_store("appendonly");
        store.write_run("x-0001", &manifest("x-0001"), &[]).unwrap();
        let err = store
            .write_run("x-0001", &manifest("x-0001"), &[])
            .unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)), "{err}");
        assert!(err.to_string().contains("append-only"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn run_ids_increment_per_name() {
        let (dir, store) = tmp_store("ids");
        assert_eq!(store.next_run_id("smoke"), "smoke-0001");
        store
            .write_run("smoke-0001", &manifest("smoke-0001"), &[])
            .unwrap();
        assert_eq!(store.next_run_id("smoke"), "smoke-0002");
        assert_eq!(store.next_run_id("other"), "other-0001");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn resolve_handles_exact_prefix_latest_and_misses() {
        let (dir, store) = tmp_store("resolve");
        store
            .write_run("aa-0001", &manifest("aa-0001"), &[])
            .unwrap();
        store
            .write_run("ab-0001", &manifest("ab-0001"), &[])
            .unwrap();
        assert_eq!(store.resolve("aa-0001").unwrap(), "aa-0001");
        assert_eq!(store.resolve("ab").unwrap(), "ab-0001");
        assert_eq!(store.resolve("latest").unwrap(), "ab-0001");
        assert!(
            matches!(store.resolve("a"), Err(CampaignError::NotFound(_))),
            "ambiguous"
        );
        assert!(matches!(
            store.resolve("zz"),
            Err(CampaignError::NotFound(_))
        ));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn quarantined_records_round_trip_their_fault_kind() {
        let mut r = record("sb", 1, 0);
        r.quarantined = true;
        r.fault_kind = Some("panic".to_owned());
        let back = OutcomeRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn corrupt_records_are_rejected_with_the_missing_field() {
        let err =
            OutcomeRecord::from_json(&Json::obj(vec![("test", Json::from("sb"))])).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }

    #[test]
    fn begin_run_reserves_ids_atomically() {
        let (dir, store) = tmp_store("reserve");
        let a = store.begin_run("x").unwrap();
        let b = store.begin_run("x").unwrap();
        assert_eq!(a, "x-0001");
        assert_eq!(b, "x-0002", "reserved dir blocks id reuse");
        assert!(store.run_dir(&a).exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_begin_runs_never_collide() {
        let (dir, store) = tmp_store("race");
        let ids: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = store.clone();
                    s.spawn(move || store.begin_run("race").unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate ids handed out: {ids:?}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn pending_marker_tracks_resumability() {
        let (dir, store) = tmp_store("pending");
        let id = store.begin_run("p").unwrap();
        assert!(store.pending_runs().is_empty(), "no marker yet");
        store
            .write_pending(&id, &Json::obj(vec![("spec", Json::from("tests = sb\n"))]))
            .unwrap();
        assert_eq!(store.pending_runs(), vec![id.clone()]);
        let pending = store.load_pending(&id).unwrap();
        assert_eq!(
            pending.get("spec").and_then(Json::as_str),
            Some("tests = sb\n")
        );
        store.finalize_run(&id, &manifest(&id), &[]).unwrap();
        assert!(
            store.pending_runs().is_empty(),
            "finalize clears the marker"
        );
        assert!(!store.pending_path(&id).exists());
        assert!(matches!(
            store.load_pending(&id),
            Err(CampaignError::NotFound(_))
        ));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_index_line_is_tolerated_and_repaired_by_the_next_append() {
        let (dir, store) = tmp_store("tornidx");
        store.write_run("t-0001", &manifest("t-0001"), &[]).unwrap();
        // Tear the index: a half-written second line with no newline.
        let path = store.index_path();
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"id\":\"t-00");
        fs::write(&path, &bytes).unwrap();
        // Listing survives, serving the valid prefix.
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].get("id").and_then(Json::as_str), Some("t-0001"));
        assert_eq!(store.resolve("latest").unwrap(), "t-0001");
        // A clean append amputates the torn tail and restores framing.
        store.write_run("t-0002", &manifest("t-0002"), &[]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("t-00\""),
            "torn fragment amputated: {text:?}"
        );
        let ids: Vec<_> = store
            .list()
            .unwrap()
            .iter()
            .filter_map(|l| l.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect();
        assert_eq!(ids, ["t-0001", "t-0002"]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_file_index_corruption_is_still_an_error() {
        let (dir, store) = tmp_store("mididx");
        store.write_run("m-0001", &manifest("m-0001"), &[]).unwrap();
        store.write_run("m-0002", &manifest("m-0002"), &[]).unwrap();
        let path = store.index_path();
        let text = fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("{\"id\":\"m-0001\"", "{garbage", 1);
        fs::write(&path, corrupted).unwrap();
        assert!(matches!(store.list(), Err(CampaignError::Corrupt(_))));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn resolve_reports_missing_and_ambiguous_references_distinctly() {
        let (dir, store) = tmp_store("resolve2");
        assert!(
            matches!(store.resolve("latest"), Err(CampaignError::NotFound(_))),
            "empty store has no latest"
        );
        store.write_run("q-0001", &manifest("q-0001"), &[]).unwrap();
        store.write_run("q-0002", &manifest("q-0002"), &[]).unwrap();
        let ambiguous = store.resolve("q-").unwrap_err();
        assert!(ambiguous.to_string().contains("ambiguous"), "{ambiguous}");
        assert!(ambiguous.to_string().contains("2 matches"), "{ambiguous}");
        let missing = store.resolve("zz").unwrap_err();
        assert!(missing.to_string().contains("no run matches"), "{missing}");
        let _ = fs::remove_dir_all(dir);
    }
}
