//! # perple-campaign
//!
//! The persistence and incrementality layer of the PerpLE reproduction:
//! memory consistency testing as a **repeated, queryable process** rather
//! than a single execution.
//!
//! Three cooperating pieces:
//!
//! * [`store`] — an append-only, on-disk run store under `results/store/`:
//!   one directory per campaign run holding a manifest (spec, config,
//!   git-describe, wall/stage timings) plus deterministic per-item outcome
//!   records, and an append-only `runs.jsonl` index;
//! * [`cache`] — a content-addressed artifact cache (`cas/`) keyed by a
//!   [`fingerprint`] of the item's inputs (litmus source bytes, conversion
//!   options, simulator config, seed): conversion artifacts and counted
//!   results are both cached, so a warm re-run of an unchanged suite item
//!   is a cache hit that skips convert → simulate → count entirely;
//! * [`engine`] — executes a declarative [`spec::CampaignSpec`]
//!   (tests × seeds under one config) with cache-hit skipping, delegating
//!   the actual misses to a caller-supplied executor (the `perple` facade
//!   runs them on its resilient suite pool);
//! * [`compare`] — the regression gate: pairwise outcome comparison
//!   between two stored runs (new forbidden-outcome observations, allowed
//!   frequency swings, injected machine faults, nondeterminism, timing)
//!   with text and JSON reports, suitable as a CI exit gate.
//!
//! The crate is deliberately engine-agnostic: it never converts, simulates,
//! or counts anything itself, so it depends only on `perple-analysis` (for
//! the shared byte-stable [`perple_analysis::jsonout`] writer every file in
//! the store is serialized with).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compare;
pub mod engine;
pub mod fingerprint;
pub mod spec;
pub mod store;

pub use cache::ArtifactCache;
pub use compare::{
    compare_records, compare_runs, metric_notes, CompareConfig, CompareReport, Regression,
    RegressionKind,
};
pub use engine::{
    run_campaign, CampaignItem, ExecOutcome, LintSummary, RunMeta, RunSummary, StageWallMs,
};
pub use fingerprint::{Fingerprint, Hasher, CACHE_FORMAT_VERSION};
pub use spec::CampaignSpec;
pub use store::{git_describe, OutcomeRecord, RunStore};

use std::fmt;

/// Errors of the campaign layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// Filesystem trouble (path and cause).
    Io(String),
    /// A spec or stored document failed to parse.
    Parse(String),
    /// A referenced run id does not exist (or is ambiguous).
    NotFound(String),
    /// A stored document exists but its content is not what the schema
    /// requires.
    Corrupt(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(m) => write!(f, "store I/O failed: {m}"),
            CampaignError::Parse(m) => write!(f, "parse error: {m}"),
            CampaignError::NotFound(m) => write!(f, "run not found: {m}"),
            CampaignError::Corrupt(m) => write!(f, "corrupt store document: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl CampaignError {
    /// Wraps an `io::Error` with the path it happened on.
    pub fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        CampaignError::Io(format!("{}: {e}", path.display()))
    }
}
