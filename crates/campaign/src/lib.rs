//! # perple-campaign
//!
//! The persistence and incrementality layer of the PerpLE reproduction:
//! memory consistency testing as a **repeated, queryable process** rather
//! than a single execution.
//!
//! Three cooperating pieces:
//!
//! * [`store`] — an append-only, on-disk run store under `results/store/`:
//!   one directory per campaign run holding a manifest (spec, config,
//!   git-describe, wall/stage timings) plus deterministic per-item outcome
//!   records, and an append-only `runs.jsonl` index;
//! * [`cache`] — a content-addressed artifact cache (`cas/`) keyed by a
//!   [`fingerprint`] of the item's inputs (litmus source bytes, conversion
//!   options, simulator config, seed): conversion artifacts and counted
//!   results are both cached, so a warm re-run of an unchanged suite item
//!   is a cache hit that skips convert → simulate → count entirely;
//! * [`engine`] — executes a declarative [`spec::CampaignSpec`]
//!   (tests × seeds under one config) with cache-hit skipping, delegating
//!   the actual misses to a caller-supplied executor (the `perple` facade
//!   runs them on its resilient suite pool);
//! * [`compare`] — the regression gate: pairwise outcome comparison
//!   between two stored runs (new forbidden-outcome observations, allowed
//!   frequency swings, injected machine faults, nondeterminism, timing)
//!   with text and JSON reports, suitable as a CI exit gate.
//!
//! The crate is deliberately engine-agnostic: it never converts, simulates,
//! or counts anything itself, so it depends only on `perple-analysis` (for
//! the shared byte-stable [`perple_analysis::jsonout`] writer every file in
//! the store is serialized with).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compare;
pub mod engine;
pub mod fingerprint;
pub mod fsck;
pub mod io;
pub mod journal;
pub mod spec;
pub mod store;

pub use cache::ArtifactCache;
pub use compare::{
    compare_records, compare_runs, metric_notes, CompareConfig, CompareReport, Regression,
    RegressionKind,
};
pub use engine::{
    resume_campaign, resume_campaign_observed, run_campaign, run_campaign_observed,
    run_campaign_with, CampaignItem, DurabilityPolicy, ExecOutcome, LintSummary, RunMeta,
    RunSummary, StageWallMs,
};
pub use fingerprint::{Fingerprint, Hasher, CACHE_FORMAT_VERSION};
pub use fsck::{fsck, Finding, FsckReport};
pub use io::{CrashKind, CrashPlan, StoreIo};
pub use journal::{FsyncPolicy, Journal, JournalHeader, Replay};
pub use spec::CampaignSpec;
pub use store::{git_describe, OutcomeRecord, RunStore};

use std::fmt;

/// What kind of storage damage (or storage-level failure) was detected.
/// The closed taxonomy `campaign fsck` classifies findings under and the
/// `PerpleError::Storage` wrapper surfaces to the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// An interrupted write left a truncated artifact behind: a torn
    /// trailing journal frame, an unterminated `runs.jsonl` line, a
    /// leftover `*.tmp` file.
    TornWrite,
    /// Stored bytes exist but fail their checksum or schema: a mid-file
    /// journal checksum mismatch, an unparseable manifest, a cache entry
    /// whose content disagrees with its content-addressed name.
    ChecksumMismatch,
    /// A run directory that belongs to no completed or resumable run.
    OrphanRun,
    /// The `runs.jsonl` index and the run directories disagree: an index
    /// line pointing at a missing run, or a finalized run missing its
    /// index line.
    StaleIndex,
    /// Two writers raced for the same run id and the atomic directory
    /// reservation could not be won.
    Contention,
    /// A `CrashPlan` injection point fired (simulated process death); all
    /// subsequent IO through the same shim fails with this kind too.
    CrashInjected,
    /// A transient IO failure persisted through every bounded-backoff
    /// retry.
    Transient,
    /// Any other filesystem-level failure.
    Io,
}

impl StorageKind {
    /// Stable kebab-case tag (used in fsck reports and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            StorageKind::TornWrite => "torn-write",
            StorageKind::ChecksumMismatch => "checksum-mismatch",
            StorageKind::OrphanRun => "orphan-run",
            StorageKind::StaleIndex => "stale-index",
            StorageKind::Contention => "contention",
            StorageKind::CrashInjected => "crash-injected",
            StorageKind::Transient => "transient",
            StorageKind::Io => "io",
        }
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors of the campaign layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// Filesystem trouble (path and cause).
    Io(String),
    /// A spec or stored document failed to parse.
    Parse(String),
    /// A referenced run id does not exist (or is ambiguous).
    NotFound(String),
    /// A stored document exists but its content is not what the schema
    /// requires.
    Corrupt(String),
    /// Classified storage damage or storage-level failure.
    Storage {
        /// The damage class.
        kind: StorageKind,
        /// What and where.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(m) => write!(f, "store I/O failed: {m}"),
            CampaignError::Parse(m) => write!(f, "parse error: {m}"),
            CampaignError::NotFound(m) => write!(f, "run not found: {m}"),
            CampaignError::Corrupt(m) => write!(f, "corrupt store document: {m}"),
            CampaignError::Storage { kind, message } => {
                write!(f, "storage failure ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl CampaignError {
    /// Wraps an `io::Error` with the path it happened on.
    pub fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        CampaignError::Io(format!("{}: {e}", path.display()))
    }

    /// A classified storage error.
    pub fn storage(kind: StorageKind, message: impl Into<String>) -> Self {
        CampaignError::Storage {
            kind,
            message: message.into(),
        }
    }

    /// True iff the error is an injected (or propagated) simulated crash:
    /// the IO shim died at a `CrashPlan` point and nothing may be written
    /// through it again. Callers must treat this as process death — no
    /// degradation, no cleanup, propagate.
    pub fn is_crash(&self) -> bool {
        matches!(
            self,
            CampaignError::Storage {
                kind: StorageKind::CrashInjected,
                ..
            }
        )
    }
}
