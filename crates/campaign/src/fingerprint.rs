//! Content fingerprints for cache keys.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash of an item's **complete
//! behavioural inputs**. The campaign layer keys its content-addressed
//! cache on fingerprints, so the hash must be a pure function of the fed
//! bytes: no pointers, no iteration order surprises, no process state.
//! Fields are fed through [`Hasher::field`] with explicit names and
//! delimiters, so `("ab", "c")` and `("a", "bc")` hash differently and a
//! new field can never silently alias an old one.
//!
//! What goes into a campaign item's fingerprint (and what invalidates
//! cached results) is decided by the caller — see `DESIGN.md`,
//! "Cache keys and invalidation".

use std::fmt;

/// Version tag mixed into every fingerprint. Bump when the meaning of any
/// cached record changes (counter semantics, record schema, conversion
/// pipeline): a bump orphans every old cache entry instead of returning
/// stale results.
pub const CACHE_FORMAT_VERSION: u32 = 1;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// A 128-bit content hash, printable as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The 32-character lowercase hex form (the cache file name).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex form back (inverse of [`Fingerprint::hex`]).
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental FNV-1a-128 hasher with named, delimited fields.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u128,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher, already seeded with [`CACHE_FORMAT_VERSION`].
    pub fn new() -> Self {
        let mut h = Self {
            state: FNV128_OFFSET,
        };
        h.field_u64("cache-format", CACHE_FORMAT_VERSION as u64);
        h
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds one named string field (name and value length-delimited).
    pub fn field(&mut self, name: &str, value: &str) -> &mut Self {
        self.eat(&(name.len() as u64).to_le_bytes());
        self.eat(name.as_bytes());
        self.eat(&(value.len() as u64).to_le_bytes());
        self.eat(value.as_bytes());
        self
    }

    /// Feeds one named integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.eat(&(name.len() as u64).to_le_bytes());
        self.eat(name.as_bytes());
        self.eat(&8u64.to_le_bytes());
        self.eat(&value.to_le_bytes());
        self
    }

    /// Feeds one named optional-integer field (`None` hashes distinctly
    /// from every `Some`).
    pub fn field_opt_u64(&mut self, name: &str, value: Option<u64>) -> &mut Self {
        match value {
            Some(v) => {
                self.field(name, "some");
                self.field_u64(name, v)
            }
            None => self.field(name, "none"),
        }
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl Fn(&mut Hasher)) -> Fingerprint {
        let mut h = Hasher::new();
        build(&mut h);
        h.finish()
    }

    #[test]
    fn equal_inputs_hash_equal() {
        let a = fp(|h| {
            h.field("src", "MOV [x],$1").field_u64("seed", 7);
        });
        let b = fp(|h| {
            h.field("src", "MOV [x],$1").field_u64("seed", 7);
        });
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.hex());
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let base = fp(|h| {
            h.field("src", "abc")
                .field_u64("seed", 7)
                .field_opt_u64("cap", Some(10));
        });
        let variants = [
            fp(|h| {
                h.field("src", "abd")
                    .field_u64("seed", 7)
                    .field_opt_u64("cap", Some(10));
            }),
            fp(|h| {
                h.field("src", "abc")
                    .field_u64("seed", 8)
                    .field_opt_u64("cap", Some(10));
            }),
            fp(|h| {
                h.field("src", "abc")
                    .field_u64("seed", 7)
                    .field_opt_u64("cap", Some(11));
            }),
            fp(|h| {
                h.field("src", "abc")
                    .field_u64("seed", 7)
                    .field_opt_u64("cap", None);
            }),
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let a = fp(|h| {
            h.field("x", "ab").field("y", "c");
        });
        let b = fp(|h| {
            h.field("x", "a").field("y", "bc");
        });
        assert_ne!(a, b);
        let c = fp(|h| {
            h.field("xa", "b").field("y", "c");
        });
        assert_ne!(a, c);
    }

    #[test]
    fn hex_round_trips() {
        let a = fp(|h| {
            h.field("src", "whatever");
        });
        assert_eq!(a.hex().len(), 32);
        assert_eq!(Fingerprint::parse_hex(&a.hex()), Some(a));
        assert_eq!(Fingerprint::parse_hex("zz"), None);
        assert_eq!(Fingerprint::parse_hex(""), None);
    }

    #[test]
    fn fingerprints_are_stable_constants() {
        // Pin one concrete value: if this changes, every existing cache
        // entry is orphaned — bump CACHE_FORMAT_VERSION intentionally
        // instead of changing hashing accidentally.
        let a = fp(|h| {
            h.field("litmus", "X86 sb").field_u64("seed", 1);
        });
        assert_eq!(
            a,
            fp(|h| {
                h.field("litmus", "X86 sb").field_u64("seed", 1);
            })
        );
        assert!(a.0 != 0);
    }
}
