//! The regression gate: pairwise comparison of two stored runs.
//!
//! [`compare_records`] matches items by `(test, seed)` and applies the
//! rules below; [`compare_runs`] loads two runs from a [`RunStore`] and
//! additionally gates on manifest wall time. A report **is a regression**
//! iff any rule fired; the CLI turns that into a nonzero exit code, which
//! makes `perple campaign compare` usable directly as a CI gate.
//!
//! Rules, in severity order:
//!
//! * **NewForbidden** — an outcome forbidden under x86-TSO was observed in
//!   the new run but not the baseline: the headline consistency bug.
//! * **LostOutcome** — the baseline observed the (allowed) target and the
//!   new run never did: the test lost its discriminating power.
//! * **FrequencySwing** — allowed-outcome frequency moved by more than
//!   `freq_threshold` (relative) with at least `min_occurrences` on one
//!   side: a perturbation-strength regression in the PerpLE sense.
//! * **NewFaults** — the new run observed more injected machine faults.
//! * **Nondeterminism** — same fingerprint, different content digest: the
//!   run is not reproducible.
//! * **MissingItem / Quarantined** — coverage loss: an item disappeared,
//!   or is newly quarantined.
//! * **Timing** — campaign wall time grew by more than `timing_factor`×
//!   (ignored below `timing_min_ms`, where noise dominates).

use perple_analysis::jsonout::Json;

use crate::store::{OutcomeRecord, RunStore};
use crate::CampaignError;

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Relative frequency change that counts as a swing (0.5 = ±50%).
    pub freq_threshold: f64,
    /// Minimum occurrences (on either side) before frequencies are
    /// compared at all — below this the estimate is noise.
    pub min_occurrences: u64,
    /// Wall-time growth factor that counts as a timing regression.
    pub timing_factor: f64,
    /// Wall times below this (ms) are never compared.
    pub timing_min_ms: u64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            freq_threshold: 0.5,
            min_occurrences: 10,
            timing_factor: 5.0,
            timing_min_ms: 1_000,
        }
    }
}

/// What kind of rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegressionKind {
    /// Forbidden outcome newly observed.
    NewForbidden,
    /// Previously-observed allowed outcome vanished.
    LostOutcome,
    /// Allowed-outcome frequency swung beyond the threshold.
    FrequencySwing,
    /// More injected machine faults than the baseline.
    NewFaults,
    /// Same fingerprint, different content digest.
    Nondeterminism,
    /// Item present in the baseline, absent in the new run.
    MissingItem,
    /// Item newly quarantined.
    Quarantined,
    /// Campaign wall time regressed.
    Timing,
}

impl RegressionKind {
    fn label(self) -> &'static str {
        match self {
            RegressionKind::NewForbidden => "new-forbidden",
            RegressionKind::LostOutcome => "lost-outcome",
            RegressionKind::FrequencySwing => "frequency-swing",
            RegressionKind::NewFaults => "new-faults",
            RegressionKind::Nondeterminism => "nondeterminism",
            RegressionKind::MissingItem => "missing-item",
            RegressionKind::Quarantined => "quarantined",
            RegressionKind::Timing => "timing",
        }
    }
}

/// One fired rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The rule.
    pub kind: RegressionKind,
    /// Item identity `test#seed`, or `<campaign>` for run-level rules.
    pub item: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// The full gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Baseline run id.
    pub base_id: String,
    /// Candidate run id.
    pub new_id: String,
    /// Matched `(test, seed)` pairs.
    pub matched: usize,
    /// Every fired rule, severity order.
    pub regressions: Vec<Regression>,
    /// Informational deltas between the two manifests' embedded
    /// observability snapshots (see the engine's `metrics` object). These
    /// never gate — identical specs executing different cache-miss sets
    /// legitimately differ — but a frames-examined growth on equal
    /// executed-item counts is called out as a likely counting-efficiency
    /// regression. Empty when either manifest predates the snapshot.
    pub metric_notes: Vec<String>,
}

impl CompareReport {
    /// True iff the gate should fail.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Plain-text report.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "compare {} -> {}: {} matched, {} regression(s)\n",
            self.base_id,
            self.new_id,
            self.matched,
            self.regressions.len()
        );
        for r in &self.regressions {
            s.push_str(&format!(
                "  [{}] {}: {}\n",
                r.kind.label(),
                r.item,
                r.detail
            ));
        }
        if self.regressions.is_empty() {
            s.push_str("  ok: no regressions\n");
        }
        for note in &self.metric_notes {
            s.push_str(&format!("  (metrics) {note}\n"));
        }
        s
    }

    /// JSON report (same shape as the text, machine-readable).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("base", Json::from(self.base_id.as_str())),
            ("new", Json::from(self.new_id.as_str())),
            ("matched", Json::from(self.matched)),
            ("regression", Json::from(self.is_regression())),
            (
                "regressions",
                Json::Arr(
                    self.regressions
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("kind", Json::from(r.kind.label())),
                                ("item", Json::from(r.item.as_str())),
                                ("detail", Json::from(r.detail.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metric_notes",
                Json::Arr(
                    self.metric_notes
                        .iter()
                        .map(|n| Json::from(n.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Compares two record sets (plus optional wall times) under `cfg`.
pub fn compare_records(
    base_id: &str,
    new_id: &str,
    base: &[OutcomeRecord],
    new: &[OutcomeRecord],
    walls: Option<(u64, u64)>,
    cfg: &CompareConfig,
) -> CompareReport {
    let mut regressions = Vec::new();
    let mut matched = 0usize;

    for b in base {
        let item = format!("{}#{}", b.test, b.seed);
        let Some(n) = new.iter().find(|n| n.test == b.test && n.seed == b.seed) else {
            regressions.push(Regression {
                kind: RegressionKind::MissingItem,
                item,
                detail: "present in baseline, absent in new run".to_owned(),
            });
            continue;
        };
        matched += 1;

        if n.quarantined && !b.quarantined {
            regressions.push(Regression {
                kind: RegressionKind::Quarantined,
                item: item.clone(),
                detail: format!(
                    "newly quarantined ({})",
                    n.fault_kind.as_deref().unwrap_or("unknown fault")
                ),
            });
            continue; // A quarantined record carries no counts to compare.
        }
        if b.quarantined {
            continue; // No baseline counts to compare against.
        }

        if n.forbidden && n.heuristic > 0 && b.heuristic == 0 {
            regressions.push(Regression {
                kind: RegressionKind::NewForbidden,
                item: item.clone(),
                detail: format!(
                    "forbidden outcome observed {} time(s) in {} iterations (baseline: 0)",
                    n.heuristic, n.iterations
                ),
            });
        }
        if !n.forbidden && b.heuristic >= cfg.min_occurrences && n.heuristic == 0 {
            regressions.push(Regression {
                kind: RegressionKind::LostOutcome,
                item: item.clone(),
                detail: format!(
                    "baseline observed the target {} time(s); new run never did",
                    b.heuristic
                ),
            });
        } else if !n.forbidden
            && (b.heuristic >= cfg.min_occurrences || n.heuristic >= cfg.min_occurrences)
        {
            let (rb, rn) = (b.rate(), n.rate());
            if rb > 0.0 {
                let rel = (rn - rb).abs() / rb;
                if rel > cfg.freq_threshold {
                    regressions.push(Regression {
                        kind: RegressionKind::FrequencySwing,
                        item: item.clone(),
                        detail: format!(
                            "target frequency {:.4} -> {:.4} ({:+.0}%)",
                            rb,
                            rn,
                            (rn - rb) / rb * 100.0
                        ),
                    });
                }
            }
        }
        if n.faults > b.faults {
            regressions.push(Regression {
                kind: RegressionKind::NewFaults,
                item: item.clone(),
                detail: format!("machine faults {} -> {}", b.faults, n.faults),
            });
        }
        if n.fingerprint == b.fingerprint && n.digest != b.digest {
            regressions.push(Regression {
                kind: RegressionKind::Nondeterminism,
                item,
                detail: format!(
                    "identical inputs ({}) produced digest {:#x} then {:#x}",
                    &b.fingerprint[..8],
                    b.digest,
                    n.digest
                ),
            });
        }
    }

    if let Some((wb, wn)) = walls {
        if wb >= cfg.timing_min_ms && wn as f64 > wb as f64 * cfg.timing_factor {
            regressions.push(Regression {
                kind: RegressionKind::Timing,
                item: "<campaign>".to_owned(),
                detail: format!("wall time {wb} ms -> {wn} ms (> {}x)", cfg.timing_factor),
            });
        }
    }

    regressions.sort_by_key(|r| {
        [
            RegressionKind::NewForbidden,
            RegressionKind::LostOutcome,
            RegressionKind::FrequencySwing,
            RegressionKind::NewFaults,
            RegressionKind::Nondeterminism,
            RegressionKind::MissingItem,
            RegressionKind::Quarantined,
            RegressionKind::Timing,
        ]
        .iter()
        .position(|k| *k == r.kind)
        .unwrap_or(usize::MAX)
    });

    CompareReport {
        base_id: base_id.to_owned(),
        new_id: new_id.to_owned(),
        matched,
        regressions,
        metric_notes: Vec::new(),
    }
}

/// Diffs two manifests' embedded `metrics.counters` objects into
/// informational notes: one line per changed counter, plus an explicit
/// frames-examined call-out when both runs executed the same number of
/// items (equal work, more frames scanned = the counters got slower).
/// Returns nothing when either manifest lacks a snapshot.
pub fn metric_notes(base_manifest: &Json, new_manifest: &Json) -> Vec<String> {
    let counters = |m: &Json| -> Option<Vec<(String, u64)>> {
        match m.get("metrics")?.get("counters")? {
            Json::Obj(pairs) => Some(
                pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|v| (k.clone(), v)))
                    .collect(),
            ),
            _ => None,
        }
    };
    let executed = |m: &Json| -> Option<u64> { m.get("counts")?.get("executed")?.as_u64() };
    let (Some(base), Some(new)) = (counters(base_manifest), counters(new_manifest)) else {
        return Vec::new();
    };
    let mut notes = Vec::new();
    let same_work = {
        let (b, n) = (executed(base_manifest), executed(new_manifest));
        b.is_some() && b == n && b != Some(0)
    };
    for (name, b) in &base {
        let Some((_, n)) = new.iter().find(|(k, _)| k == name) else {
            continue;
        };
        if n == b {
            continue;
        }
        if name == "count_frames_examined" && same_work && *n > *b {
            notes.push(format!(
                "count_frames_examined regressed: {b} -> {n} over the same \
                 executed-item count (counting does more work per item)"
            ));
        } else {
            notes.push(format!("{name}: {b} -> {n}"));
        }
    }
    notes
}

/// Loads two runs by reference and compares them (wall times from the
/// manifests).
///
/// # Errors
/// Store errors from resolving or loading either run.
pub fn compare_runs(
    store: &RunStore,
    base_ref: &str,
    new_ref: &str,
    cfg: &CompareConfig,
) -> Result<CompareReport, CampaignError> {
    let _span = perple_obs::trace::span("compare");
    let base_id = store.resolve(base_ref)?;
    let new_id = store.resolve(new_ref)?;
    let base = store.load_items(&base_id)?;
    let new = store.load_items(&new_id)?;
    let base_manifest = store.load_manifest(&base_id)?;
    let new_manifest = store.load_manifest(&new_id)?;
    let wall = |m: &Json| m.get("wall_ms").and_then(Json::as_u64).unwrap_or(0);
    let walls = Some((wall(&base_manifest), wall(&new_manifest)));
    let mut report = compare_records(&base_id, &new_id, &base, &new, walls, cfg);
    report.metric_notes = metric_notes(&base_manifest, &new_manifest);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(test: &str, seed: u64, forbidden: bool, heuristic: u64) -> OutcomeRecord {
        OutcomeRecord {
            test: test.to_owned(),
            seed,
            fingerprint: format!("{:032x}", 7u128),
            forbidden,
            heuristic,
            exhaustive: heuristic,
            degraded: false,
            iterations: 1_000,
            run_complete: true,
            faults: 0,
            digest: 0x1234,
            quarantined: false,
            fault_kind: None,
        }
    }

    fn gate(base: &[OutcomeRecord], new: &[OutcomeRecord]) -> CompareReport {
        compare_records("b", "n", base, new, None, &CompareConfig::default())
    }

    #[test]
    fn identical_runs_pass() {
        let items = vec![record("sb", 1, true, 0), record("mp", 1, false, 40)];
        let report = gate(&items, &items);
        assert!(!report.is_regression(), "{}", report.render_text());
        assert_eq!(report.matched, 2);
        assert!(report.render_text().contains("ok: no regressions"));
    }

    #[test]
    fn new_forbidden_observation_fires() {
        let base = vec![record("sb", 1, true, 0)];
        let new = vec![record("sb", 1, true, 3)];
        let report = gate(&base, &new);
        assert!(report.is_regression());
        assert_eq!(report.regressions[0].kind, RegressionKind::NewForbidden);
    }

    #[test]
    fn lost_outcome_and_frequency_swing_fire() {
        let base = vec![record("mp", 1, false, 200), record("lb", 1, false, 100)];
        let new = vec![record("mp", 1, false, 0), record("lb", 1, false, 10)];
        let kinds: Vec<_> = gate(&base, &new)
            .regressions
            .iter()
            .map(|r| r.kind)
            .collect();
        assert!(kinds.contains(&RegressionKind::LostOutcome));
        assert!(kinds.contains(&RegressionKind::FrequencySwing));
    }

    #[test]
    fn small_counts_do_not_trip_the_frequency_gate() {
        let base = vec![record("mp", 1, false, 3)];
        let new = vec![record("mp", 1, false, 8)];
        assert!(
            !gate(&base, &new).is_regression(),
            "below min_occurrences is noise"
        );
    }

    #[test]
    fn new_faults_fire() {
        let base = vec![record("sb", 1, true, 0)];
        let mut n = record("sb", 1, true, 0);
        n.faults = 12;
        let report = gate(&base, &[n]);
        assert!(report.is_regression());
        assert_eq!(report.regressions[0].kind, RegressionKind::NewFaults);
    }

    #[test]
    fn nondeterminism_fires_only_for_equal_fingerprints() {
        let base = vec![record("sb", 1, true, 0)];
        let mut same_inputs = record("sb", 1, true, 0);
        same_inputs.digest = 0x9999;
        let report = gate(&base, &[same_inputs.clone()]);
        assert_eq!(report.regressions[0].kind, RegressionKind::Nondeterminism);

        let mut different_inputs = same_inputs;
        different_inputs.fingerprint = format!("{:032x}", 8u128);
        assert!(!gate(&base, &[different_inputs]).is_regression());
    }

    #[test]
    fn missing_and_quarantined_fire() {
        let base = vec![record("sb", 1, true, 0), record("mp", 1, false, 40)];
        let mut q = record("sb", 1, true, 0);
        q.quarantined = true;
        q.fault_kind = Some("timeout".to_owned());
        let report = gate(&base, &[q]);
        let kinds: Vec<_> = report.regressions.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RegressionKind::Quarantined));
        assert!(kinds.contains(&RegressionKind::MissingItem));
    }

    #[test]
    fn timing_gate_respects_floor_and_factor() {
        let cfg = CompareConfig::default();
        let items = vec![record("sb", 1, true, 0)];
        let fast = compare_records("b", "n", &items, &items, Some((100, 5_000)), &cfg);
        assert!(!fast.is_regression(), "sub-floor baselines never gate");
        let slow = compare_records("b", "n", &items, &items, Some((2_000, 11_000)), &cfg);
        assert_eq!(slow.regressions[0].kind, RegressionKind::Timing);
        let fine = compare_records("b", "n", &items, &items, Some((2_000, 9_000)), &cfg);
        assert!(!fine.is_regression());
    }

    fn manifest(frames: u64, executed: u64) -> Json {
        Json::obj(vec![
            (
                "counts",
                Json::obj(vec![("executed", Json::from(executed))]),
            ),
            (
                "metrics",
                Json::obj(vec![(
                    "counters",
                    Json::obj(vec![
                        ("count_frames_examined", Json::from(frames)),
                        ("sim_store_buffer_flushes", Json::from(10u64)),
                    ]),
                )]),
            ),
        ])
    }

    #[test]
    fn metric_notes_diff_embedded_snapshots() {
        // Equal executed work, more frames scanned: the efficiency call-out.
        let notes = metric_notes(&manifest(100, 3), &manifest(500, 3));
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert!(notes[0].contains("count_frames_examined regressed: 100 -> 500"));

        // Different executed counts: still noted, but not as a regression.
        let notes = metric_notes(&manifest(100, 3), &manifest(500, 2));
        assert_eq!(notes, vec!["count_frames_examined: 100 -> 500".to_owned()]);

        // Unchanged counters produce no noise.
        assert!(metric_notes(&manifest(100, 3), &manifest(100, 3)).is_empty());

        // Manifests without a snapshot (pre-observability runs) are silent.
        let bare = Json::obj(vec![]);
        assert!(metric_notes(&bare, &manifest(1, 1)).is_empty());
        assert!(metric_notes(&manifest(1, 1), &bare).is_empty());
    }

    #[test]
    fn metric_notes_render_and_serialize_without_gating() {
        let items = vec![record("mp", 1, false, 40)];
        let mut report = gate(&items, &items);
        report.metric_notes = metric_notes(&manifest(100, 3), &manifest(500, 3));
        assert!(!report.is_regression(), "notes must never gate");
        assert!(report.render_text().contains("(metrics)"));
        let arr = report
            .to_json()
            .get("metric_notes")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn report_json_matches_verdict() {
        let base = vec![record("sb", 1, true, 0)];
        let new = vec![record("sb", 1, true, 2)];
        let json = gate(&base, &new).to_json();
        assert_eq!(json.get("regression").and_then(Json::as_bool), Some(true));
        let arr = json.get("regressions").and_then(Json::as_arr).unwrap();
        assert_eq!(
            arr[0].get("kind").and_then(Json::as_str),
            Some("new-forbidden")
        );
    }
}
