//! Declarative campaign specifications.
//!
//! A campaign is *tests × seeds under one configuration*, written in a
//! TOML-ish line format so specs can live in the repo and in CI:
//!
//! ```text
//! # tiny CI campaign
//! name = smoke
//! tests = sb, mp, lb          # suite names, or "convertible" for all
//! seeds = 1, 2
//! iterations = 400
//! workers = 2                 # 0 = machine default
//! retries = 1
//! timeout_ms = 0              # 0 = no watchdog
//! frame_cap = 1000000         # 0 = unlimited exhaustive scan
//! inject = corrupt@t0:0..100  # optional fault plan (omit for none)
//! counter = rf                # optional exact-counter backend
//! journal_chunk = 16          # items per write-ahead journal chunk
//! fsync = batch               # journal sync policy: always, batch, never
//! ```
//!
//! `key = value` lines, `#` comments, unknown keys rejected. [`CampaignSpec::render`]
//! emits a canonical form whose re-parse is identical (round-trip
//! identity), which is also what the run manifest embeds.

use crate::CampaignError;

/// A parsed campaign specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (run ids are `<name>-<NNNN>`).
    pub name: String,
    /// Test names, or the magic entry `convertible` (the whole Table II
    /// convertible suite).
    pub tests: Vec<String>,
    /// Per-item seeds; the campaign expands to `tests × seeds`.
    pub seeds: Vec<u64>,
    /// Iterations per item run.
    pub iterations: u64,
    /// Suite/counter workers (0 = machine default).
    pub workers: usize,
    /// Retries for failed items (resilient executor).
    pub retries: u32,
    /// Per-stage watchdog in milliseconds (`None` = unbudgeted).
    pub timeout_ms: Option<u64>,
    /// Exhaustive-counter frame cap (`None` = scan everything).
    pub frame_cap: Option<u64>,
    /// Machine fault-injection plan in its CLI grammar (validated by the
    /// execution layer, which owns the parser).
    pub inject: Option<String>,
    /// Exact-counter backend (`exhaustive`, `heuristic`, or `rf`); `None`
    /// leaves the execution layer's default (`rf`) in charge.
    pub counter: Option<String>,
    /// Items per executor chunk between write-ahead journal sync points —
    /// the unit of crash data loss (0 behaves as 1).
    pub journal_chunk: u64,
    /// Journal fsync policy (`always`, `batch`, or `never`); `None` leaves
    /// the engine default (`batch`) in charge.
    pub fsync: Option<String>,
}

impl CampaignSpec {
    /// A named spec with the library defaults (no tests or seeds yet).
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            tests: Vec::new(),
            seeds: vec![1],
            iterations: 1_000,
            workers: 0,
            retries: 0,
            timeout_ms: None,
            frame_cap: Some(1_000_000),
            inject: None,
            counter: None,
            journal_chunk: 16,
            fsync: None,
        }
    }

    /// The durability policy the spec's journal keys describe.
    pub fn durability(&self) -> crate::engine::DurabilityPolicy {
        crate::engine::DurabilityPolicy {
            chunk: self.journal_chunk.min(usize::MAX as u64) as usize,
            fsync: self
                .fsync
                .as_deref()
                .and_then(crate::journal::FsyncPolicy::parse)
                .unwrap_or_default(),
        }
    }

    /// Parses the line format described in the module docs.
    ///
    /// # Errors
    /// [`CampaignError::Parse`] on unknown keys, malformed numbers, or a
    /// spec with no tests, no seeds, or zero iterations.
    pub fn parse(text: &str) -> Result<Self, CampaignError> {
        let mut spec = Self::named("campaign");
        let mut saw_tests = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                CampaignError::Parse(format!(
                    "line {}: expected `key = value`, got {raw:?}",
                    lineno + 1
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| {
                CampaignError::Parse(format!("line {}: bad {what} {value:?}", lineno + 1))
            };
            match key {
                "name" => {
                    if value.is_empty()
                        || !value
                            .chars()
                            .all(|c| c.is_alphanumeric() || c == '-' || c == '_')
                    {
                        return Err(bad("name (alphanumeric, '-', '_')"));
                    }
                    spec.name = value.to_owned();
                }
                "tests" => {
                    spec.tests = split_list(value);
                    saw_tests = true;
                }
                "seeds" => {
                    spec.seeds = split_list(value)
                        .iter()
                        .map(|s| parse_u64(s))
                        .collect::<Option<Vec<u64>>>()
                        .ok_or_else(|| bad("seed list"))?;
                }
                "iterations" => {
                    spec.iterations = parse_u64(value).ok_or_else(|| bad("iteration count"))?;
                }
                "workers" => {
                    spec.workers = parse_u64(value).ok_or_else(|| bad("worker count"))? as usize;
                }
                "retries" => {
                    spec.retries = parse_u64(value)
                        .ok_or_else(|| bad("retry count"))?
                        .min(u32::MAX as u64) as u32;
                }
                "timeout_ms" => {
                    let ms = parse_u64(value).ok_or_else(|| bad("timeout"))?;
                    spec.timeout_ms = (ms > 0).then_some(ms);
                }
                "frame_cap" => {
                    let cap = parse_u64(value).ok_or_else(|| bad("frame cap"))?;
                    spec.frame_cap = (cap > 0).then_some(cap);
                }
                "inject" => {
                    spec.inject = (!value.is_empty()).then(|| value.to_owned());
                }
                "counter" => {
                    if !["exhaustive", "heuristic", "rf", ""].contains(&value) {
                        return Err(bad("counter (exhaustive, heuristic, or rf)"));
                    }
                    spec.counter = (!value.is_empty()).then(|| value.to_owned());
                }
                "journal_chunk" => {
                    spec.journal_chunk = parse_u64(value).ok_or_else(|| bad("journal chunk"))?;
                }
                "fsync" => {
                    if !value.is_empty() && crate::journal::FsyncPolicy::parse(value).is_none() {
                        return Err(bad("fsync policy (always, batch, or never)"));
                    }
                    spec.fsync = (!value.is_empty()).then(|| value.to_owned());
                }
                other => {
                    return Err(CampaignError::Parse(format!(
                        "line {}: unknown key {other:?}",
                        lineno + 1
                    )));
                }
            }
        }
        if !saw_tests || spec.tests.is_empty() {
            return Err(CampaignError::Parse("spec lists no tests".to_owned()));
        }
        if spec.seeds.is_empty() {
            return Err(CampaignError::Parse("spec lists no seeds".to_owned()));
        }
        if spec.iterations == 0 {
            return Err(CampaignError::Parse(
                "iterations must be at least 1".to_owned(),
            ));
        }
        Ok(spec)
    }

    /// Canonical rendering; `parse(render(spec)) == spec` (round trip).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("name = {}\n", self.name));
        s.push_str(&format!("tests = {}\n", self.tests.join(", ")));
        s.push_str(&format!(
            "seeds = {}\n",
            self.seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("iterations = {}\n", self.iterations));
        s.push_str(&format!("workers = {}\n", self.workers));
        s.push_str(&format!("retries = {}\n", self.retries));
        s.push_str(&format!("timeout_ms = {}\n", self.timeout_ms.unwrap_or(0)));
        s.push_str(&format!("frame_cap = {}\n", self.frame_cap.unwrap_or(0)));
        if let Some(inject) = &self.inject {
            s.push_str(&format!("inject = {inject}\n"));
        }
        if let Some(counter) = &self.counter {
            s.push_str(&format!("counter = {counter}\n"));
        }
        if self.journal_chunk != 16 {
            s.push_str(&format!("journal_chunk = {}\n", self.journal_chunk));
        }
        if let Some(fsync) = &self.fsync {
            s.push_str(&format!("fsync = {fsync}\n"));
        }
        s
    }

    /// Number of items the spec expands to (tests × seeds) **before** the
    /// execution layer expands magic test entries like `convertible`.
    pub fn nominal_items(&self) -> usize {
        self.tests.len() * self.seeds.len()
    }
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split([',', ' '])
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# tiny campaign
name = smoke
tests = sb, mp lb   # mixed separators
seeds = 1, 2
iterations = 400
workers = 2
retries = 1
timeout_ms = 0
frame_cap = 1000000
inject = corrupt@t0:0..100
counter = rf
";

    #[test]
    fn parses_the_documented_example() {
        let spec = CampaignSpec::parse(EXAMPLE).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.tests, ["sb", "mp", "lb"]);
        assert_eq!(spec.seeds, [1, 2]);
        assert_eq!(spec.iterations, 400);
        assert_eq!(spec.workers, 2);
        assert_eq!(spec.retries, 1);
        assert_eq!(spec.timeout_ms, None, "0 means unbudgeted");
        assert_eq!(spec.frame_cap, Some(1_000_000));
        assert_eq!(spec.inject.as_deref(), Some("corrupt@t0:0..100"));
        assert_eq!(spec.counter.as_deref(), Some("rf"));
        assert_eq!(spec.nominal_items(), 6);
    }

    #[test]
    fn render_parse_round_trip_is_identity() {
        let spec = CampaignSpec::parse(EXAMPLE).unwrap();
        let reparsed = CampaignSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, reparsed);
        // And canonical text is a fixpoint.
        assert_eq!(spec.render(), reparsed.render());
    }

    #[test]
    fn hex_seeds_and_magic_tests() {
        let spec =
            CampaignSpec::parse("tests = convertible\nseeds = 0x10\niterations = 5\n").unwrap();
        assert_eq!(spec.seeds, [16]);
        assert_eq!(spec.tests, ["convertible"]);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for (bad, why) in [
            ("", "no tests"),
            ("tests = sb\nseeds =\n", "empty seeds"),
            ("tests =\nseeds = 1\n", "empty tests"),
            ("tests = sb\nseeds = x\n", "junk seed"),
            ("tests = sb\nseeds = 1\niterations = 0\n", "zero iterations"),
            ("tests = sb\nseeds = 1\nfrobnicate = 9\n", "unknown key"),
            ("tests = sb\nseeds = 1\nworkers nine\n", "missing ="),
            ("name = bad name!\ntests = sb\nseeds = 1\n", "bad name"),
            ("tests = sb\nseeds = 1\ncounter = turbo\n", "bad counter"),
            ("tests = sb\nseeds = 1\nfsync = maybe\n", "bad fsync"),
            ("tests = sb\nseeds = 1\njournal_chunk = x\n", "junk chunk"),
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn defaults_apply_when_keys_are_omitted() {
        let spec = CampaignSpec::parse("tests = sb\nseeds = 3\n").unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.iterations, 1_000);
        assert_eq!(spec.workers, 0);
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.timeout_ms, None);
        assert_eq!(spec.frame_cap, Some(1_000_000));
        assert_eq!(spec.inject, None);
        assert_eq!(spec.counter, None);
        assert_eq!(spec.journal_chunk, 16);
        assert_eq!(spec.fsync, None);
    }

    #[test]
    fn durability_keys_parse_render_and_map_to_the_policy() {
        use crate::engine::DurabilityPolicy;
        use crate::journal::FsyncPolicy;
        let spec =
            CampaignSpec::parse("tests = sb\nseeds = 1\njournal_chunk = 4\nfsync = always\n")
                .unwrap();
        assert_eq!(spec.journal_chunk, 4);
        assert_eq!(spec.fsync.as_deref(), Some("always"));
        assert_eq!(
            spec.durability(),
            DurabilityPolicy {
                chunk: 4,
                fsync: FsyncPolicy::Always
            }
        );
        let reparsed = CampaignSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, reparsed, "new keys round-trip");
        // Defaults map to the default policy and stay out of the canonical
        // rendering (existing spec files keep their byte-exact form).
        let plain = CampaignSpec::parse("tests = sb\nseeds = 1\n").unwrap();
        assert_eq!(plain.durability(), DurabilityPolicy::default());
        assert!(!plain.render().contains("journal_chunk"));
        assert!(!plain.render().contains("fsync"));
    }
}
