//! The write-ahead item journal of one campaign run.
//!
//! Before a run's items land in `items.json`, every completed
//! [`OutcomeRecord`] is appended to `journal.bin` as a checksummed frame —
//! so a campaign killed at *any* byte boundary has a provable prefix of
//! durable results that `campaign resume` replays instead of re-executing.
//!
//! ## Frame format
//!
//! ```text
//! [u32 payload length, LE] [u64 FNV-1a-64 of payload, LE] [payload bytes]
//! ```
//!
//! Frame 0 is the **header** (`{"schema":1,"id":...,"name":...,"items":N}`);
//! every later frame is one outcome record in the store's stable-key JSON
//! form. Appends go through the [`StoreIo`] shim (so the crash matrix can
//! tear them), and the [`FsyncPolicy`] decides when the file is pushed to
//! stable storage.
//!
//! ## Replay and torn tails
//!
//! [`Journal::replay`] walks the frames front to back. A final frame that
//! is incomplete — fewer than 12 header bytes left, a declared length
//! running past EOF, or a checksum mismatch on the *last* frame — is a
//! **torn tail**: the prefix before it is valid, the tail is amputated by
//! truncating to [`Replay::valid_len`]. A checksum mismatch with more
//! frames *after* it is not a torn write (appends only tear at the end);
//! that is real corruption and replay refuses it.

use std::fs;
use std::path::{Path, PathBuf};

use perple_analysis::jsonout::{self, Json};
use perple_obs::metrics::{self, Metric};

use crate::io::StoreIo;
use crate::store::OutcomeRecord;
use crate::{CampaignError, StorageKind};

/// Frame header: u32 length + u64 checksum.
const FRAME_HEADER: usize = 12;
/// Largest payload replay accepts; a longer declared length is corruption
/// (or garbage read as a length), never a real frame.
const FRAME_CAP: u32 = 16 * 1024 * 1024;

/// When journal bytes are pushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame: at most one item lost to a
    /// crash, at OS-call cost per item.
    Always,
    /// `fsync` once per executor chunk (the default): at most one chunk
    /// lost, one sync per `journal_chunk` items.
    #[default]
    Batch,
    /// Never explicitly sync; durability is whatever the OS flushes.
    Never,
}

impl FsyncPolicy {
    /// Parses the spec/CLI form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "batch" => Some(Self::Batch),
            "never" => Some(Self::Never),
            _ => None,
        }
    }

    /// The canonical spec/CLI form.
    pub fn name(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Never => "never",
        }
    }
}

/// Frame 0: which run this journal belongs to and how many items the
/// expanded campaign has — replay sanity-checks both before trusting a
/// single record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// The run id the journal belongs to.
    pub id: String,
    /// The campaign name.
    pub name: String,
    /// Total items in the expanded campaign.
    pub items: u64,
}

impl JournalHeader {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::from(1u64)),
            ("id", Json::from(self.id.as_str())),
            ("name", Json::from(self.name.as_str())),
            ("items", Json::from(self.items)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, CampaignError> {
        let need = |field: &'static str| {
            move || CampaignError::Corrupt(format!("journal header is missing {field:?}"))
        };
        Ok(Self {
            id: v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(need("id"))?
                .to_owned(),
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(need("name"))?
                .to_owned(),
            items: v
                .get("items")
                .and_then(Json::as_u64)
                .ok_or_else(need("items"))?,
        })
    }
}

/// What [`Journal::replay`] recovered from an interrupted run's journal.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The header frame, if one was durably written (`None` for an empty
    /// or headerless-torn journal — resume starts over from nothing).
    pub header: Option<JournalHeader>,
    /// Every durably journaled outcome record, append order.
    pub records: Vec<OutcomeRecord>,
    /// Byte offset just past the last valid frame; bytes beyond it are a
    /// torn tail the caller truncates away.
    pub valid_len: u64,
    /// True iff a torn trailing frame was found (and counted in the
    /// `store_torn_frames` metric).
    pub torn_tail: bool,
}

/// An open, appendable write-ahead journal.
#[derive(Debug)]
pub struct Journal {
    io: StoreIo,
    path: PathBuf,
    file: fs::File,
    policy: FsyncPolicy,
}

impl Journal {
    /// Creates a fresh journal and durably writes its header frame.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure or injected crash.
    pub fn create(
        io: StoreIo,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        header: &JournalHeader,
    ) -> Result<Self, CampaignError> {
        let path = path.into();
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| CampaignError::io(&path, e))?;
        let mut journal = Self {
            io,
            path,
            file,
            policy,
        };
        journal.append_frame(&header.to_json().render())?;
        // The header is always synced: a journal whose identity frame can
        // vanish is not worth replaying.
        journal.io.sync(&journal.path, &journal.file)?;
        Ok(journal)
    }

    /// Reopens an existing journal (whose valid prefix was already
    /// replayed and whose torn tail, if any, was already truncated) for
    /// further appends.
    ///
    /// # Errors
    /// [`CampaignError::Io`] if the file cannot be opened.
    pub fn open_append(
        io: StoreIo,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<Self, CampaignError> {
        let path = path.into();
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| CampaignError::io(&path, e))?;
        Ok(Self {
            io,
            path,
            file,
            policy,
        })
    }

    /// Appends one completed item's record; under `FsyncPolicy::Always`
    /// the frame is synced before this returns.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure or injected crash.
    pub fn append_record(&mut self, record: &OutcomeRecord) -> Result<(), CampaignError> {
        self.append_frame(&record.to_json().render())?;
        metrics::add(Metric::StoreJournalAppends, 1);
        if self.policy == FsyncPolicy::Always {
            self.io.sync(&self.path, &self.file)?;
        }
        Ok(())
    }

    /// Chunk-boundary sync point: under `FsyncPolicy::Batch` the frames
    /// appended since the last sync are pushed to stable storage.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure or injected crash.
    pub fn sync_batch(&mut self) -> Result<(), CampaignError> {
        if self.policy == FsyncPolicy::Batch {
            self.io.sync(&self.path, &self.file)?;
        }
        Ok(())
    }

    fn append_frame(&mut self, payload: &str) -> Result<(), CampaignError> {
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len()).map_err(|_| {
            CampaignError::storage(
                StorageKind::Io,
                format!("{}: frame too large", self.path.display()),
            )
        })?;
        let mut frame = Vec::with_capacity(FRAME_HEADER + bytes.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv64(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.io.append(&self.path, &mut self.file, &frame)
    }

    /// Replays a journal file: the valid frame prefix, the torn-tail
    /// verdict, and where to truncate. A missing file replays as empty.
    ///
    /// # Errors
    /// [`CampaignError::Storage`] with [`StorageKind::ChecksumMismatch`]
    /// for mid-file corruption (a bad frame with valid frames after it),
    /// [`CampaignError::Corrupt`] for frames whose JSON does not parse.
    pub fn replay(path: &Path) -> Result<Replay, CampaignError> {
        let data = match fs::read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay {
                    header: None,
                    records: Vec::new(),
                    valid_len: 0,
                    torn_tail: false,
                });
            }
            Err(e) => return Err(CampaignError::io(path, e)),
        };

        let mut offset = 0usize;
        let mut payloads: Vec<&[u8]> = Vec::new();
        let mut torn_tail = false;
        while offset < data.len() {
            let Some((payload, next)) = frame_at(&data, offset) else {
                // Incomplete or checksum-failing frame. Only the *last*
                // frame may legitimately be torn: scan forward — if any
                // complete valid frame starts after this point the file is
                // corrupt mid-stream, not torn.
                if has_valid_frame_after(&data, offset) {
                    return Err(CampaignError::storage(
                        StorageKind::ChecksumMismatch,
                        format!(
                            "{}: bad frame at offset {offset} with valid frames after it",
                            path.display()
                        ),
                    ));
                }
                torn_tail = true;
                break;
            };
            payloads.push(payload);
            offset = next;
        }
        if torn_tail {
            metrics::add(Metric::StoreTornFrames, 1);
        }

        let mut header = None;
        let mut records = Vec::with_capacity(payloads.len().saturating_sub(1));
        for (i, payload) in payloads.iter().enumerate() {
            let text = std::str::from_utf8(payload).map_err(|_| {
                CampaignError::Corrupt(format!("{}: frame {i} is not UTF-8", path.display()))
            })?;
            let doc = jsonout::parse(text).map_err(|e| {
                CampaignError::Corrupt(format!("{}: frame {i}: {e}", path.display()))
            })?;
            if i == 0 {
                header = Some(JournalHeader::from_json(&doc)?);
            } else {
                records.push(OutcomeRecord::from_json(&doc)?);
            }
        }
        Ok(Replay {
            header,
            records,
            valid_len: offset as u64,
            torn_tail,
        })
    }
}

/// Parses the frame at `offset`: `Some((payload, next_offset))` iff the
/// frame is complete, within the cap, and checksum-valid.
fn frame_at(data: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let rest = &data[offset..];
    if rest.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    if len > FRAME_CAP as usize {
        return None;
    }
    let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
    let payload = rest.get(FRAME_HEADER..FRAME_HEADER + len)?;
    (fnv64(payload) == sum).then_some((payload, offset + FRAME_HEADER + len))
}

/// True iff a complete, checksum-valid frame starts anywhere after a bad
/// one — the mid-file-corruption discriminator.
fn has_valid_frame_after(data: &[u8], bad_offset: usize) -> bool {
    (bad_offset + 1..data.len()).any(|start| frame_at(data, start).is_some())
}

/// FNV-1a 64-bit — the frame checksum (the cache fingerprint's 128-bit
/// sibling lives in [`crate::fingerprint`]).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::CrashPlan;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header(items: u64) -> JournalHeader {
        JournalHeader {
            id: "t-0001".to_owned(),
            name: "t".to_owned(),
            items,
        }
    }

    fn record(test: &str, seed: u64) -> OutcomeRecord {
        OutcomeRecord {
            test: test.to_owned(),
            seed,
            fingerprint: format!("{:032x}", seed),
            forbidden: false,
            heuristic: seed * 3,
            exhaustive: seed * 3,
            degraded: false,
            iterations: 100,
            run_complete: true,
            faults: 0,
            digest: seed ^ 0xAB,
            quarantined: false,
            fault_kind: None,
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp("roundtrip");
        let path = dir.join("journal.bin");
        let mut j =
            Journal::create(StoreIo::unplanned(), &path, FsyncPolicy::Always, &header(2)).unwrap();
        j.append_record(&record("sb", 1)).unwrap();
        j.append_record(&record("mp", 2)).unwrap();
        drop(j);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.header, Some(header(2)));
        assert_eq!(replay.records, vec![record("sb", 1), record("mp", 2)]);
        assert!(!replay.torn_tail);
        assert_eq!(replay.valid_len, fs::metadata(&path).unwrap().len());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_journal_replays_as_empty() {
        let dir = tmp("missing");
        let replay = Journal::replay(&dir.join("journal.bin")).unwrap();
        assert_eq!(replay.header, None);
        assert!(replay.records.is_empty());
        assert!(!replay.torn_tail);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let dir = tmp("torn");
        let path = dir.join("journal.bin");
        let mut j =
            Journal::create(StoreIo::unplanned(), &path, FsyncPolicy::Never, &header(3)).unwrap();
        j.append_record(&record("sb", 1)).unwrap();
        j.append_record(&record("mp", 2)).unwrap();
        drop(j);
        let whole = fs::metadata(&path).unwrap().len();

        // Tear the final frame at every byte boundary inside it: the two
        // preceding frames must always survive, and valid_len must point
        // at the prefix end.
        let full = fs::read(&path).unwrap();
        assert_eq!(Journal::replay(&path).unwrap().valid_len, whole);
        let second_frame_end = {
            // Recompute where frame 2 (the "mp" record) starts by replaying
            // truncations until only two records remain.
            let mut end = 0;
            for cut in (0..full.len()).rev() {
                fs::write(&path, &full[..cut]).unwrap();
                let r = Journal::replay(&path).unwrap();
                if r.records.len() == 1 {
                    end = r.valid_len;
                    break;
                }
            }
            end
        };
        for cut in (second_frame_end as usize + 1)..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let r = Journal::replay(&path).unwrap();
            assert!(r.torn_tail, "cut at {cut} must be torn");
            assert_eq!(r.records.len(), 1, "cut at {cut}");
            assert_eq!(r.valid_len, second_frame_end, "cut at {cut}");
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_torn_append_is_a_torn_tail() {
        let dir = tmp("injtorn");
        let path = dir.join("journal.bin");
        // Boundaries: 0 = header append, 1 = header sync, 2 = first
        // record append (torn).
        let io = StoreIo::new(CrashPlan::abort_at(2));
        let mut j = Journal::create(io, &path, FsyncPolicy::Never, &header(1)).unwrap();
        let err = j.append_record(&record("sb", 1)).unwrap_err();
        assert!(err.is_crash(), "{err}");
        drop(j);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.header, Some(header(1)));
        assert!(replay.records.is_empty());
        assert!(replay.torn_tail);
        assert!(replay.valid_len < fs::metadata(&path).unwrap().len());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let dir = tmp("midcorrupt");
        let path = dir.join("journal.bin");
        let mut j =
            Journal::create(StoreIo::unplanned(), &path, FsyncPolicy::Never, &header(2)).unwrap();
        j.append_record(&record("sb", 1)).unwrap();
        j.append_record(&record("mp", 2)).unwrap();
        drop(j);
        // Flip one payload byte inside the *first* record frame.
        let mut bytes = fs::read(&path).unwrap();
        let hdr = frame_at(&bytes, 0).unwrap().1;
        bytes[hdr + FRAME_HEADER + 3] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = Journal::replay(&path).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Storage {
                    kind: StorageKind::ChecksumMismatch,
                    ..
                }
            ),
            "{err}"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn fsync_policy_parses_and_renders() {
        for p in [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never] {
            assert_eq!(FsyncPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Batch);
    }
}
