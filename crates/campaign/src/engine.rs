//! The incremental campaign engine.
//!
//! [`run_campaign`] takes an expanded item list (tests × seeds with
//! precomputed [`Fingerprint`]s), partitions it into cache **hits** and
//! **misses**, hands the misses to a caller-supplied executor in
//! journal-sized chunks, caches the fresh clean outcomes, and writes the
//! whole run — hits and misses in the original item order — to the
//! [`RunStore`].
//!
//! The executor is a callback (`FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>`)
//! rather than a trait object into the simulator: this crate stays
//! engine-agnostic and the `perple` facade plugs its resilient suite pool
//! in without a dependency cycle. The contract: each returned vector is
//! parallel to its input chunk; `None` marks an item the executor could
//! not produce any record for (those are dropped from the stored run and
//! reported in [`RunSummary::lost`]).
//!
//! ## Durability
//!
//! A run begins by atomically reserving its id ([`RunStore::begin_run`]),
//! writing a `pending.json` marker (everything resume needs), and opening
//! a write-ahead [`Journal`]. Misses execute in chunks of
//! [`DurabilityPolicy::chunk`]; every completed record is journaled before
//! the next chunk starts, so a crash loses at most one chunk of work.
//! [`resume_campaign`] replays the journal (amputating a torn trailing
//! frame), serves journaled items from the replay and unchanged items from
//! the cache, executes only the true remainder, and finalizes — producing
//! `items.json` **bit-identical** to an uninterrupted run.
//!
//! Cache policy: only **clean** outcomes are cached — not quarantined, all
//! attempts on the nominal seed (degraded or fault-bearing runs are still
//! *valid* observations and are stored in the run, but recovered items ran
//! under perturbed retry seeds, so their counts are not a pure function of
//! the fingerprint and must be re-executed next time). A *failed* cache
//! write is graceful degradation, not a campaign abort: the item simply
//! stays uncached (`store_cache_write_drops` counts it) — unless the
//! failure is an injected crash, which kills the run like the real thing.

use std::collections::HashMap;
use std::time::Instant;

use perple_analysis::jsonout::Json;
use perple_obs::metrics::{self, Metric, MetricsSnapshot};

use crate::cache::ArtifactCache;
use crate::fingerprint::Fingerprint;
use crate::journal::{FsyncPolicy, Journal, JournalHeader};
use crate::spec::CampaignSpec;
use crate::store::{OutcomeRecord, RunStore};
use crate::CampaignError;

/// One expanded campaign item: a `(test, seed)` cell with the fingerprint
/// of its complete inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignItem {
    /// Test name (concrete — magic spec entries are expanded upstream).
    pub test: String,
    /// The spec-level seed for this item.
    pub seed: u64,
    /// Fingerprint of the item's complete behavioural inputs.
    pub fingerprint: Fingerprint,
}

/// Wall-clock stage totals for the executed (miss) portion of a run.
/// Lives only in the manifest — item records stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWallMs {
    /// Conversion wall total, milliseconds.
    pub convert_ms: u64,
    /// Simulation (perpetual run) wall total, milliseconds.
    pub run_ms: u64,
    /// Counting wall total, milliseconds.
    pub count_ms: u64,
}

impl StageWallMs {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("convert_ms", Json::from(self.convert_ms)),
            ("run_ms", Json::from(self.run_ms)),
            ("count_ms", Json::from(self.count_ms)),
        ])
    }

    fn add(&mut self, other: StageWallMs) {
        self.convert_ms += other.convert_ms;
        self.run_ms += other.run_ms;
        self.count_ms += other.count_ms;
    }
}

/// What the executor produced for one miss.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The outcome record (stored in the run; cached iff `cacheable`).
    pub record: OutcomeRecord,
    /// True iff the record is a pure function of the fingerprint (clean
    /// first-attempt result on the nominal seed).
    pub cacheable: bool,
    /// Per-stage wall time this item actually spent (summed into the
    /// manifest; zero for cache hits by construction, since hits never
    /// reach the executor).
    pub wall: StageWallMs,
}

/// Severity totals from a pre-run lint pass over the spec's tests. Defined
/// here (not in the lint crate) so the engine stays analysis-agnostic: the
/// caller runs whatever linter it likes and hands the engine the counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-severity findings.
    pub errors: u64,
    /// Warning-severity findings.
    pub warnings: u64,
    /// Note-severity findings.
    pub notes: u64,
}

/// Everything the caller embeds in the manifest besides the spec. Wall
/// times are measured by the engine itself; these are the bits only the
/// caller knows.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Unix timestamp of the run start, milliseconds.
    pub created_unix_ms: u64,
    /// `git describe` of the producing tree.
    pub git: String,
    /// Lint totals over the spec's tests, if the caller ran a pre-run lint
    /// pass. `None` omits the manifest's `lint` key entirely.
    pub lint: Option<LintSummary>,
}

impl RunMeta {
    /// The `pending.json` marker document: the spec text plus this
    /// metadata, so `campaign resume` can rebuild the run without the
    /// original invocation.
    fn to_pending_json(&self, id: &str, spec: &CampaignSpec) -> Json {
        let mut fields = vec![
            ("schema", Json::from(1u64)),
            ("id", Json::from(id)),
            ("created_unix_ms", Json::from(self.created_unix_ms)),
            ("git", Json::from(self.git.as_str())),
            ("spec", Json::from(spec.render())),
        ];
        if let Some(lint) = &self.lint {
            fields.push((
                "lint",
                Json::obj(vec![
                    ("errors", Json::from(lint.errors)),
                    ("warnings", Json::from(lint.warnings)),
                    ("notes", Json::from(lint.notes)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Rebuilds the metadata recorded in a `pending.json` marker.
    ///
    /// # Errors
    /// [`CampaignError::Corrupt`] when required fields are missing.
    pub fn from_pending_json(pending: &Json) -> Result<Self, CampaignError> {
        let need = |field: &'static str| {
            move || CampaignError::Corrupt(format!("pending marker is missing {field:?}"))
        };
        Ok(Self {
            created_unix_ms: pending
                .get("created_unix_ms")
                .and_then(Json::as_u64)
                .ok_or_else(need("created_unix_ms"))?,
            git: pending
                .get("git")
                .and_then(Json::as_str)
                .ok_or_else(need("git"))?
                .to_owned(),
            lint: pending.get("lint").map(|l| LintSummary {
                errors: l.get("errors").and_then(Json::as_u64).unwrap_or(0),
                warnings: l.get("warnings").and_then(Json::as_u64).unwrap_or(0),
                notes: l.get("notes").and_then(Json::as_u64).unwrap_or(0),
            }),
        })
    }
}

/// How aggressively a run journals: executor chunk size (items per
/// invocation, the unit of crash data loss) and fsync policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Items per executor chunk; completed chunks are journaled before
    /// the next starts. 0 behaves as 1.
    pub chunk: usize,
    /// When journal frames reach stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        Self {
            chunk: 16,
            fsync: FsyncPolicy::Batch,
        }
    }
}

/// The manifest's `metrics` object: the run's observability snapshot
/// delta (counters plus histogram buckets) over the executed portion.
/// Cache hits never reach the executor, so a fully warm run embeds an
/// all-zero snapshot — which is exactly what it did.
fn metrics_json(delta: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                delta
                    .counters
                    .iter()
                    .map(|&(name, v)| (name.to_owned(), Json::from(v)))
                    .collect(),
            ),
        ),
        (
            "hists",
            Json::Obj(
                delta
                    .hists
                    .iter()
                    .map(|(name, buckets)| {
                        (
                            (*name).to_owned(),
                            Json::Arr(buckets.iter().map(|&b| Json::from(b)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// What a campaign run did, for callers and the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The allocated run id.
    pub id: String,
    /// Total items in the expanded campaign.
    pub items: usize,
    /// Items served from the result cache (no convert/simulate/count).
    pub hits: usize,
    /// Items handed to the executor.
    pub executed: usize,
    /// Executed items for which the executor returned no record.
    pub lost: usize,
    /// Stored records that are quarantined.
    pub quarantined: usize,
    /// Stored records with a forbidden target and a nonzero count
    /// (consistency violations).
    pub violations: usize,
    /// Items replayed from the write-ahead journal (0 except on resume).
    pub recovered: usize,
}

/// Runs one campaign with the default [`DurabilityPolicy`].
///
/// # Errors
/// [`CampaignError`] on store or cache I/O failure.
pub fn run_campaign(
    store: &RunStore,
    cache: &ArtifactCache,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    exec: impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
) -> Result<RunSummary, CampaignError> {
    run_campaign_with(
        store,
        cache,
        spec,
        items,
        meta,
        DurabilityPolicy::default(),
        exec,
    )
}

/// Runs one campaign: reserve id → journal open → cache partition →
/// execute misses in chunks (journaling each) → cache clean outcomes →
/// finalize the run.
///
/// # Errors
/// [`CampaignError`] on store or cache I/O failure or injected crash.
pub fn run_campaign_with(
    store: &RunStore,
    cache: &ArtifactCache,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    policy: DurabilityPolicy,
    exec: impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
) -> Result<RunSummary, CampaignError> {
    run_campaign_observed(store, cache, spec, items, meta, policy, exec, |_, _| {})
}

/// [`run_campaign_with`] with an item observer: `on_item(slot, record)` is
/// called exactly once per expanded item, as soon as that item's outcome
/// is final — for cache hits during the partition (in slot order), for
/// misses as each journaled chunk completes. `None` marks a lost item
/// (the executor produced no record; nothing will be stored for that
/// slot). This is how `perple serve` streams records while a campaign is
/// still running — every observed record is already durable (journaled or
/// cached) when the callback fires.
///
/// # Errors
/// As for [`run_campaign_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_observed(
    store: &RunStore,
    cache: &ArtifactCache,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    policy: DurabilityPolicy,
    mut exec: impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
    mut on_item: impl FnMut(usize, Option<&OutcomeRecord>),
) -> Result<RunSummary, CampaignError> {
    let t0 = Instant::now();
    let _span = perple_obs::trace::span("campaign");
    let metrics_before = perple_obs::metrics::snapshot();

    let id = store.begin_run(&spec.name)?;
    store.write_pending(&id, &meta.to_pending_json(&id, spec))?;
    let mut journal = Journal::create(
        store.io().clone(),
        store.journal_path(&id),
        policy.fsync,
        &JournalHeader {
            id: id.clone(),
            name: spec.name.clone(),
            items: items.len() as u64,
        },
    )?;

    // Partition against the result cache, remembering each item's slot so
    // the stored run keeps the expansion order regardless of hit pattern.
    let mut records: Vec<Option<OutcomeRecord>> = vec![None; items.len()];
    let mut misses: Vec<(usize, CampaignItem)> = Vec::new();
    for (slot, item) in items.iter().enumerate() {
        match cache.load_result(item.fingerprint) {
            Some(hit) => {
                on_item(slot, Some(&hit));
                records[slot] = Some(hit);
            }
            None => misses.push((slot, item.clone())),
        }
    }
    let hits = items.len() - misses.len();

    let (lost, stage_wall) = execute_chunks(
        cache,
        &mut journal,
        policy,
        &misses,
        &mut records,
        &mut exec,
        &mut on_item,
    )?;
    drop(journal);

    finish(
        store,
        spec,
        &id,
        meta,
        records,
        Totals {
            items: items.len(),
            hits,
            executed: misses.len(),
            lost,
            recovered: 0,
        },
        stage_wall,
        t0,
        &metrics_before,
    )
}

/// Resumes an interrupted run: replay the journal (amputating a torn
/// trailing frame), serve journaled items from the replay and unchanged
/// items from the cache, execute only the remainder, finalize. The
/// resulting `items.json` is bit-identical to an uninterrupted run's.
///
/// # Errors
/// [`CampaignError::NotFound`] if the run has no pending marker (it
/// completed, or never started); [`CampaignError::Storage`] for journal
/// corruption beyond a torn tail; other [`CampaignError`]s as for
/// [`run_campaign_with`].
#[allow(clippy::too_many_arguments)]
pub fn resume_campaign(
    store: &RunStore,
    cache: &ArtifactCache,
    id: &str,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    policy: DurabilityPolicy,
    exec: impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
) -> Result<RunSummary, CampaignError> {
    resume_campaign_observed(store, cache, id, spec, items, meta, policy, exec, |_, _| {})
}

/// [`resume_campaign`] with the item observer of
/// [`run_campaign_observed`]: journal-replayed and cache-served items are
/// observed during the partition (in slot order), executed remainders as
/// their chunks complete.
///
/// # Errors
/// As for [`resume_campaign`].
#[allow(clippy::too_many_arguments)]
pub fn resume_campaign_observed(
    store: &RunStore,
    cache: &ArtifactCache,
    id: &str,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    policy: DurabilityPolicy,
    mut exec: impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
    mut on_item: impl FnMut(usize, Option<&OutcomeRecord>),
) -> Result<RunSummary, CampaignError> {
    let t0 = Instant::now();
    let _span = perple_obs::trace::span("campaign");
    let metrics_before = perple_obs::metrics::snapshot();

    // Only a reserved-but-unfinalized run is resumable.
    store.load_pending(id)?;

    let journal_path = store.journal_path(id);
    let replay = Journal::replay(&journal_path)?;
    if replay.torn_tail {
        store.io().truncate(&journal_path, replay.valid_len)?;
    }
    if let Some(header) = &replay.header {
        if header.id != id {
            return Err(CampaignError::Corrupt(format!(
                "journal of run {id:?} claims to belong to {:?}",
                header.id
            )));
        }
        if header.items != items.len() as u64 {
            return Err(CampaignError::Corrupt(format!(
                "journal of run {id:?} covers {} items but the spec expands to {} \
                 (spec changed between run and resume?)",
                header.items,
                items.len()
            )));
        }
    }
    let mut journaled: HashMap<(String, u64), OutcomeRecord> = replay
        .records
        .into_iter()
        .map(|r| ((r.test.clone(), r.seed), r))
        .collect();

    // Three-way partition: journal replay beats cache beats execution.
    let mut records: Vec<Option<OutcomeRecord>> = vec![None; items.len()];
    let mut misses: Vec<(usize, CampaignItem)> = Vec::new();
    let mut recovered = 0usize;
    let mut hits = 0usize;
    for (slot, item) in items.iter().enumerate() {
        if let Some(done) = journaled.remove(&(item.test.clone(), item.seed)) {
            on_item(slot, Some(&done));
            records[slot] = Some(done);
            recovered += 1;
        } else if let Some(hit) = cache.load_result(item.fingerprint) {
            on_item(slot, Some(&hit));
            records[slot] = Some(hit);
            hits += 1;
        } else {
            misses.push((slot, item.clone()));
        }
    }
    metrics::add(Metric::StoreRecoveredItems, recovered as u64);

    let mut journal = if replay.header.is_some() {
        Journal::open_append(store.io().clone(), &journal_path, policy.fsync)?
    } else {
        // Empty or headerless-torn journal: nothing was durably started;
        // begin it properly now.
        Journal::create(
            store.io().clone(),
            &journal_path,
            policy.fsync,
            &JournalHeader {
                id: id.to_owned(),
                name: spec.name.clone(),
                items: items.len() as u64,
            },
        )?
    };
    let (lost, stage_wall) = execute_chunks(
        cache,
        &mut journal,
        policy,
        &misses,
        &mut records,
        &mut exec,
        &mut on_item,
    )?;
    drop(journal);

    finish(
        store,
        spec,
        id,
        meta,
        records,
        Totals {
            items: items.len(),
            hits,
            executed: misses.len(),
            lost,
            recovered,
        },
        stage_wall,
        t0,
        &metrics_before,
    )
}

/// Executes the misses in journal-sized chunks: every returned record is
/// journaled (and, if clean, cached) before the next chunk starts.
#[allow(clippy::too_many_arguments)]
fn execute_chunks(
    cache: &ArtifactCache,
    journal: &mut Journal,
    policy: DurabilityPolicy,
    misses: &[(usize, CampaignItem)],
    records: &mut [Option<OutcomeRecord>],
    exec: &mut impl FnMut(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
    on_item: &mut impl FnMut(usize, Option<&OutcomeRecord>),
) -> Result<(usize, StageWallMs), CampaignError> {
    let mut lost = 0usize;
    let mut stage_wall = StageWallMs::default();
    for chunk in misses.chunks(policy.chunk.max(1)) {
        let batch: Vec<CampaignItem> = chunk.iter().map(|(_, i)| i.clone()).collect();
        let outcomes = exec(&batch);
        assert_eq!(
            outcomes.len(),
            batch.len(),
            "executor must return one slot per input item"
        );
        for ((slot, item), outcome) in chunk.iter().zip(outcomes) {
            match outcome {
                Some(out) => {
                    if out.cacheable {
                        // A failed cache write degrades to uncached
                        // execution — the result is still good; only an
                        // injected crash (simulated process death) may
                        // abort the run here.
                        match cache.store_result(item.fingerprint, &out.record) {
                            Ok(()) => {}
                            Err(e) if e.is_crash() => return Err(e),
                            Err(_) => metrics::add(Metric::StoreCacheWriteDrops, 1),
                        }
                    }
                    journal.append_record(&out.record)?;
                    stage_wall.add(out.wall);
                    on_item(*slot, Some(&out.record));
                    records[*slot] = Some(out.record);
                }
                None => {
                    on_item(*slot, None);
                    lost += 1;
                }
            }
        }
        journal.sync_batch()?;
    }
    Ok((lost, stage_wall))
}

struct Totals {
    items: usize,
    hits: usize,
    executed: usize,
    lost: usize,
    recovered: usize,
}

/// Assembles the manifest and finalizes the run.
#[allow(clippy::too_many_arguments)]
fn finish(
    store: &RunStore,
    spec: &CampaignSpec,
    id: &str,
    meta: &RunMeta,
    records: Vec<Option<OutcomeRecord>>,
    totals: Totals,
    stage_wall: StageWallMs,
    t0: Instant,
    metrics_before: &MetricsSnapshot,
) -> Result<RunSummary, CampaignError> {
    let stored: Vec<OutcomeRecord> = records.into_iter().flatten().collect();
    let quarantined = stored.iter().filter(|r| r.quarantined).count();
    let violations = stored
        .iter()
        .filter(|r| r.forbidden && r.heuristic > 0)
        .count();

    let mut fields = vec![
        ("schema", Json::from(1u64)),
        ("id", Json::from(id)),
        ("name", Json::from(spec.name.as_str())),
        ("created_unix_ms", Json::from(meta.created_unix_ms)),
        ("git", Json::from(meta.git.as_str())),
        ("spec", Json::from(spec.render())),
        (
            "counts",
            Json::obj(vec![
                ("items", Json::from(totals.items)),
                ("hits", Json::from(totals.hits)),
                ("executed", Json::from(totals.executed)),
                ("lost", Json::from(totals.lost)),
                ("quarantined", Json::from(quarantined)),
                ("violations", Json::from(violations)),
                ("recovered", Json::from(totals.recovered)),
            ]),
        ),
    ];
    if let Some(lint) = &meta.lint {
        fields.push((
            "lint",
            Json::obj(vec![
                ("errors", Json::from(lint.errors)),
                ("warnings", Json::from(lint.warnings)),
                ("notes", Json::from(lint.notes)),
            ]),
        ));
    }
    fields.extend([
        ("wall_ms", Json::from(t0.elapsed().as_millis())),
        ("stage_wall_ms", stage_wall.to_json()),
        (
            "metrics",
            metrics_json(&perple_obs::metrics::snapshot().delta_from(metrics_before)),
        ),
    ]);
    let manifest = Json::obj(fields);
    store.finalize_run(id, &manifest, &stored)?;

    Ok(RunSummary {
        id: id.to_owned(),
        items: totals.items,
        hits: totals.hits,
        executed: totals.executed,
        lost: totals.lost,
        quarantined,
        violations,
        recovered: totals.recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Hasher;
    use crate::io::{CrashPlan, StoreIo};
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-eng-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn item(test: &str, seed: u64) -> CampaignItem {
        let mut h = Hasher::new();
        h.field("test", test).field_u64("seed", seed);
        CampaignItem {
            test: test.to_owned(),
            seed,
            fingerprint: h.finish(),
        }
    }

    fn outcome(it: &CampaignItem, heuristic: u64, cacheable: bool) -> ExecOutcome {
        ExecOutcome {
            record: OutcomeRecord {
                test: it.test.clone(),
                seed: it.seed,
                fingerprint: it.fingerprint.hex(),
                forbidden: it.test == "sb",
                heuristic,
                exhaustive: heuristic,
                degraded: false,
                iterations: 100,
                run_complete: true,
                faults: 0,
                digest: heuristic.wrapping_mul(31) ^ it.seed,
                quarantined: false,
                fault_kind: None,
            },
            cacheable,
            wall: StageWallMs {
                convert_ms: 1,
                run_ms: 2,
                count_ms: 3,
            },
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            created_unix_ms: 1,
            git: "test".to_owned(),
            lint: None,
        }
    }

    #[test]
    fn lint_summary_appears_in_the_manifest_only_when_present() {
        let root = tmp_root("lintmeta");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("lm");
        let items = vec![item("sb", 1)];
        let bare = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        assert!(
            store.load_manifest(&bare.id).unwrap().get("lint").is_none(),
            "no lint pass, no lint key"
        );

        let mut with_lint = meta();
        with_lint.lint = Some(LintSummary {
            errors: 0,
            warnings: 2,
            notes: 5,
        });
        let linted = run_campaign(&store, &cache, &spec, &items, &with_lint, |batch| {
            batch.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        let m = store.load_manifest(&linted.id).unwrap();
        let lint = m.get("lint").expect("lint key present");
        assert_eq!(lint.get("warnings").and_then(Json::as_u64), Some(2));
        assert_eq!(lint.get("notes").and_then(Json::as_u64), Some(5));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn warm_rerun_executes_nothing() {
        let root = tmp_root("warm");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("warm");
        let items = vec![item("sb", 1), item("mp", 1), item("sb", 2)];
        let calls = AtomicUsize::new(0);

        let cold = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            calls.fetch_add(batch.len(), Ordering::SeqCst);
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        assert_eq!((cold.hits, cold.executed), (0, 3));
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        let warm = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            calls.fetch_add(batch.len(), Ordering::SeqCst);
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        assert_eq!(
            (warm.hits, warm.executed),
            (3, 0),
            "warm run must skip all work"
        );
        assert_eq!(
            calls.load(Ordering::SeqCst),
            3,
            "executor not called on warm run"
        );
        assert_eq!(
            store.load_items(&cold.id).unwrap(),
            store.load_items(&warm.id).unwrap(),
            "hit records equal the originals"
        );
        // Zero convert/run/count wall on the warm run: nothing executed.
        let m = store.load_manifest(&warm.id).unwrap();
        let sw = m.get("stage_wall_ms").unwrap();
        for stage in ["convert_ms", "run_ms", "count_ms"] {
            assert_eq!(sw.get(stage).and_then(Json::as_u64), Some(0), "{stage}");
        }
        let cold_sw = store.load_manifest(&cold.id).unwrap();
        assert_eq!(
            cold_sw
                .get("stage_wall_ms")
                .unwrap()
                .get("run_ms")
                .and_then(Json::as_u64),
            Some(6),
            "cold run sums executed stage walls"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn manifest_embeds_the_metrics_snapshot() {
        let root = tmp_root("metrics");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("m");
        let items = vec![item("sb", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        let m = store.load_manifest(&summary.id).unwrap();
        let metrics = m.get("metrics").expect("manifest carries metrics");
        let counters = metrics.get("counters").expect("counters object");
        // Every metric of the closed set is present (zero when this test's
        // stub executor skipped the stage, but always queryable).
        for metric in perple_obs::metrics::Metric::ALL {
            assert!(
                counters.get(metric.name()).and_then(Json::as_u64).is_some(),
                "{}",
                metric.name()
            );
        }
        let hists = metrics.get("hists").expect("hists object");
        for hist in perple_obs::metrics::Hist::ALL {
            let buckets = hists.get(hist.name()).and_then(Json::as_arr).unwrap();
            assert_eq!(buckets.len(), perple_obs::metrics::HIST_BUCKETS);
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn uncacheable_outcomes_are_stored_but_rerun() {
        let root = tmp_root("uncache");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("u");
        let items = vec![item("sb", 1)];
        let first = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 2, false))).collect()
        })
        .unwrap();
        assert_eq!(first.hits, 0);
        assert_eq!(
            store.load_items(&first.id).unwrap().len(),
            1,
            "stored in the run"
        );
        let second = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 2, true))).collect()
        })
        .unwrap();
        assert_eq!(
            second.executed, 1,
            "uncacheable outcome did not populate the cache"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn lost_items_are_counted_and_dropped() {
        let root = tmp_root("lost");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("l");
        let items = vec![item("sb", 1), item("mp", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch
                .iter()
                .map(|i| (i.test == "sb").then(|| outcome(i, 1, true)))
                .collect()
        })
        .unwrap();
        assert_eq!(summary.lost, 1);
        let stored = store.load_items(&summary.id).unwrap();
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].test, "sb");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn violations_and_quarantines_are_summarised() {
        let root = tmp_root("sum");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("s");
        let items = vec![item("sb", 1), item("mp", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch
                .iter()
                .map(|i| {
                    let mut out = outcome(i, 7, true);
                    if i.test == "mp" {
                        out.record.quarantined = true;
                        out.record.fault_kind = Some("panic".to_owned());
                        out.cacheable = false;
                    }
                    Some(out)
                })
                .collect()
        })
        .unwrap();
        assert_eq!(summary.violations, 1, "forbidden sb with nonzero count");
        assert_eq!(summary.quarantined, 1);
        let manifest = store.load_manifest(&summary.id).unwrap();
        let counts = manifest.get("counts").unwrap();
        assert_eq!(counts.get("violations").and_then(Json::as_u64), Some(1));
        assert_eq!(counts.get("quarantined").and_then(Json::as_u64), Some(1));
        assert_eq!(
            counts.get("recovered").and_then(Json::as_u64),
            Some(0),
            "fresh runs recover nothing"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn chunked_execution_journals_between_chunks() {
        let root = tmp_root("chunks");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("ck");
        let items: Vec<CampaignItem> = (1..=5).map(|s| item("sb", s)).collect();
        let batches = std::sync::Mutex::new(Vec::new());
        let policy = DurabilityPolicy {
            chunk: 2,
            fsync: FsyncPolicy::Never,
        };
        let summary = run_campaign_with(&store, &cache, &spec, &items, &meta(), policy, |batch| {
            batches.lock().unwrap().push(batch.len());
            batch.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        assert_eq!(summary.executed, 5);
        assert_eq!(*batches.lock().unwrap(), vec![2, 2, 1], "chunked 2+2+1");
        // The journal holds every record behind the finalized run.
        let replay = Journal::replay(&store.journal_path(&summary.id)).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert!(!replay.torn_tail);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn interrupted_run_resumes_bit_identically_without_reexecution() {
        let base = tmp_root("resume");
        // Reference: uninterrupted run in its own store.
        let ref_root = base.join("ref");
        let ref_store = RunStore::open(&ref_root).unwrap();
        let ref_cache = ArtifactCache::open(&ref_root).unwrap();
        let spec = CampaignSpec::named("r");
        let items: Vec<CampaignItem> = (1..=6).map(|s| item("mp", s)).collect();
        let policy = DurabilityPolicy {
            chunk: 2,
            fsync: FsyncPolicy::Batch,
        };
        run_campaign_with(
            &ref_store,
            &ref_cache,
            &spec,
            &items,
            &meta(),
            policy,
            |b| b.iter().map(|i| Some(outcome(i, i.seed, true))).collect(),
        )
        .unwrap();
        let reference = fs::read(ref_store.run_dir("r-0001").join("items.json")).unwrap();

        // Crashed run: die on the journal append of the 3rd record, then
        // resume with a fresh (new-process) store handle.
        let crash_root = base.join("crash");
        let exec_counts: std::sync::Mutex<HashMap<u64, usize>> =
            std::sync::Mutex::new(HashMap::new());
        let count_exec = |b: &[CampaignItem]| {
            let mut counts = exec_counts.lock().unwrap();
            for i in b {
                *counts.entry(i.seed).or_insert(0) += 1;
            }
            b.iter()
                .map(|i| Some(outcome(i, i.seed, true)))
                .collect::<Vec<_>>()
        };
        // Probe: run uninterrupted with a counting shim to learn the
        // boundary total, then crash a real run mid-way through it.
        let probe_io = StoreIo::unplanned();
        {
            let store = RunStore::open_with(&crash_root, probe_io.clone()).unwrap();
            let cache = ArtifactCache::open_with(&crash_root, probe_io.clone()).unwrap();
            run_campaign_with(&store, &cache, &spec, &items, &meta(), policy, |b| {
                b.iter().map(|i| Some(outcome(i, i.seed, true))).collect()
            })
            .unwrap();
        }
        let total = probe_io.boundaries();
        let _ = fs::remove_dir_all(&crash_root);

        // Crash roughly mid-run.
        let io = StoreIo::new(CrashPlan::abort_at(total / 2));
        let store = RunStore::open_with(&crash_root, io.clone()).unwrap();
        let cache = ArtifactCache::open_with(&crash_root, io.clone()).unwrap();
        let err = run_campaign_with(&store, &cache, &spec, &items, &meta(), policy, count_exec)
            .unwrap_err();
        assert!(err.is_crash(), "{err}");

        // New process: fresh handles, no plan.
        let store = RunStore::open(&crash_root).unwrap();
        let cache = ArtifactCache::open(&crash_root).unwrap();
        let pending = store.pending_runs();
        assert_eq!(pending, vec!["r-0001".to_owned()]);
        let replayed_before = Journal::replay(&store.journal_path("r-0001"))
            .unwrap()
            .records
            .len();
        let summary = resume_campaign(
            &store,
            &cache,
            "r-0001",
            &spec,
            &items,
            &meta(),
            policy,
            count_exec,
        )
        .unwrap();
        assert_eq!(summary.id, "r-0001");
        assert_eq!(summary.recovered, replayed_before);
        assert_eq!(summary.items, 6);

        // Bit-identity with the uninterrupted reference.
        let recovered_items = fs::read(store.run_dir("r-0001").join("items.json")).unwrap();
        assert_eq!(
            recovered_items, reference,
            "items.json must be bit-identical"
        );

        // Zero re-execution of journaled items: journaled seeds executed
        // exactly once across crash + resume. (Cache hits may also absorb
        // items the crash lost between cache write and journal append.)
        let counts = exec_counts.lock().unwrap();
        for record in Journal::replay(&store.journal_path("r-0001"))
            .unwrap()
            .records
            .iter()
            .take(replayed_before)
        {
            assert_eq!(
                counts.get(&record.seed),
                Some(&1),
                "journaled seed {} re-executed",
                record.seed
            );
        }
        assert!(store.pending_runs().is_empty(), "run finalized");
        let _ = fs::remove_dir_all(base);
    }

    #[test]
    fn observer_sees_every_slot_exactly_once_and_matches_the_stored_run() {
        let root = tmp_root("observe");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("ob");
        let items: Vec<CampaignItem> = (1..=5).map(|s| item("sb", s)).collect();
        let policy = DurabilityPolicy {
            chunk: 2,
            fsync: FsyncPolicy::Never,
        };

        // Warm seeds 2 and 4 so the cold run mixes hits and misses; the
        // "mp" executor below loses seed 3 entirely.
        for it in [&items[1], &items[3]] {
            cache
                .store_result(it.fingerprint, &outcome(it, 9, true).record)
                .unwrap();
        }
        let mut seen: Vec<(usize, Option<OutcomeRecord>)> = Vec::new();
        let summary = run_campaign_observed(
            &store,
            &cache,
            &spec,
            &items,
            &meta(),
            policy,
            |b| {
                b.iter()
                    .map(|i| (i.seed != 3).then(|| outcome(i, i.seed, true)))
                    .collect()
            },
            |slot, rec| seen.push((slot, rec.cloned())),
        )
        .unwrap();
        assert_eq!((summary.hits, summary.executed, summary.lost), (2, 3, 1));

        // Exactly one observation per slot; hits observed first, in slot
        // order; the observed records equal the stored run plus a None
        // for the lost slot.
        let mut slots: Vec<usize> = seen.iter().map(|(s, _)| *s).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            seen.iter().map(|(s, _)| *s).take(2).collect::<Vec<_>>(),
            vec![1, 3],
            "cache hits stream first, in slot order"
        );
        assert!(seen[..2].iter().all(|(_, r)| r.is_some()));
        let stored = store.load_items(&summary.id).unwrap();
        let mut observed: Vec<OutcomeRecord> = seen.iter().filter_map(|(_, r)| r.clone()).collect();
        observed.sort_by_key(|r| r.seed);
        assert_eq!(observed, stored, "observed records are the stored run");
        let lost_slot = seen.iter().find(|(_, r)| r.is_none()).unwrap().0;
        assert_eq!(
            items[lost_slot].seed, 3,
            "the lost item is observed as None"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn resume_refuses_completed_and_unknown_runs() {
        let root = tmp_root("nonresume");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("n");
        let items = vec![item("sb", 1)];
        let done = run_campaign(&store, &cache, &spec, &items, &meta(), |b| {
            b.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        for id in [done.id.as_str(), "n-9999"] {
            let err = resume_campaign(
                &store,
                &cache,
                id,
                &spec,
                &items,
                &meta(),
                DurabilityPolicy::default(),
                |b: &[CampaignItem]| b.iter().map(|i| Some(outcome(i, 1, true))).collect(),
            )
            .unwrap_err();
            assert!(matches!(err, CampaignError::NotFound(_)), "{id}: {err}");
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn resume_rejects_a_spec_whose_item_count_changed() {
        let root = tmp_root("specchange");
        let io = StoreIo::new(CrashPlan::abort_at(8));
        let store = RunStore::open_with(&root, io.clone()).unwrap();
        let cache = ArtifactCache::open_with(&root, io).unwrap();
        let spec = CampaignSpec::named("sc");
        let items = vec![item("sb", 1), item("sb", 2)];
        let _ = run_campaign(&store, &cache, &spec, &items, &meta(), |b| {
            b.iter()
                .map(|i| Some(outcome(i, 1, true)))
                .collect::<Vec<_>>()
        });
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        if store.pending_runs().is_empty() {
            // The crash landed before the pending marker; nothing to test.
            let _ = fs::remove_dir_all(root);
            return;
        }
        let grown = vec![item("sb", 1), item("sb", 2), item("sb", 3)];
        let err = resume_campaign(
            &store,
            &cache,
            "sc-0001",
            &spec,
            &grown,
            &meta(),
            DurabilityPolicy::default(),
            |b: &[CampaignItem]| b.iter().map(|i| Some(outcome(i, 1, true))).collect(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("spec changed"), "{err}");
        let _ = fs::remove_dir_all(root);
    }
}
