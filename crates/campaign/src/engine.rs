//! The incremental campaign engine.
//!
//! [`run_campaign`] takes an expanded item list (tests × seeds with
//! precomputed [`Fingerprint`]s), partitions it into cache **hits** and
//! **misses**, hands only the misses to a caller-supplied executor, caches
//! the fresh clean outcomes, and writes the whole run — hits and misses in
//! the original item order — to the [`RunStore`].
//!
//! The executor is a callback (`FnOnce(&[CampaignItem]) -> Vec<Option<ExecOutcome>>`)
//! rather than a trait object into the simulator: this crate stays
//! engine-agnostic and the `perple` facade plugs its resilient suite pool
//! in without a dependency cycle. The contract: the returned vector is
//! parallel to the input slice; `None` marks an item the executor could
//! not produce any record for (those are dropped from the stored run and
//! reported in [`RunSummary::lost`]).
//!
//! Cache policy: only **clean** outcomes are cached — not quarantined, all
//! attempts on the nominal seed (degraded or fault-bearing runs are still
//! *valid* observations and are stored in the run, but recovered items ran
//! under perturbed retry seeds, so their counts are not a pure function of
//! the fingerprint and must be re-executed next time).

use std::time::Instant;

use perple_analysis::jsonout::Json;
use perple_obs::metrics::MetricsSnapshot;

use crate::cache::ArtifactCache;
use crate::fingerprint::Fingerprint;
use crate::spec::CampaignSpec;
use crate::store::{OutcomeRecord, RunStore};
use crate::CampaignError;

/// One expanded campaign item: a `(test, seed)` cell with the fingerprint
/// of its complete inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignItem {
    /// Test name (concrete — magic spec entries are expanded upstream).
    pub test: String,
    /// The spec-level seed for this item.
    pub seed: u64,
    /// Fingerprint of the item's complete behavioural inputs.
    pub fingerprint: Fingerprint,
}

/// Wall-clock stage totals for the executed (miss) portion of a run.
/// Lives only in the manifest — item records stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageWallMs {
    /// Conversion wall total, milliseconds.
    pub convert_ms: u64,
    /// Simulation (perpetual run) wall total, milliseconds.
    pub run_ms: u64,
    /// Counting wall total, milliseconds.
    pub count_ms: u64,
}

impl StageWallMs {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("convert_ms", Json::from(self.convert_ms)),
            ("run_ms", Json::from(self.run_ms)),
            ("count_ms", Json::from(self.count_ms)),
        ])
    }

    fn add(&mut self, other: StageWallMs) {
        self.convert_ms += other.convert_ms;
        self.run_ms += other.run_ms;
        self.count_ms += other.count_ms;
    }
}

/// What the executor produced for one miss.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The outcome record (stored in the run; cached iff `cacheable`).
    pub record: OutcomeRecord,
    /// True iff the record is a pure function of the fingerprint (clean
    /// first-attempt result on the nominal seed).
    pub cacheable: bool,
    /// Per-stage wall time this item actually spent (summed into the
    /// manifest; zero for cache hits by construction, since hits never
    /// reach the executor).
    pub wall: StageWallMs,
}

/// Severity totals from a pre-run lint pass over the spec's tests. Defined
/// here (not in the lint crate) so the engine stays analysis-agnostic: the
/// caller runs whatever linter it likes and hands the engine the counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-severity findings.
    pub errors: u64,
    /// Warning-severity findings.
    pub warnings: u64,
    /// Note-severity findings.
    pub notes: u64,
}

/// Everything the caller embeds in the manifest besides the spec. Wall
/// times are measured by the engine itself; these are the bits only the
/// caller knows.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Unix timestamp of the run start, milliseconds.
    pub created_unix_ms: u64,
    /// `git describe` of the producing tree.
    pub git: String,
    /// Lint totals over the spec's tests, if the caller ran a pre-run lint
    /// pass. `None` omits the manifest's `lint` key entirely.
    pub lint: Option<LintSummary>,
}

/// The manifest's `metrics` object: the run's observability snapshot
/// delta (counters plus histogram buckets) over the executed portion.
/// Cache hits never reach the executor, so a fully warm run embeds an
/// all-zero snapshot — which is exactly what it did.
fn metrics_json(delta: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                delta
                    .counters
                    .iter()
                    .map(|&(name, v)| (name.to_owned(), Json::from(v)))
                    .collect(),
            ),
        ),
        (
            "hists",
            Json::Obj(
                delta
                    .hists
                    .iter()
                    .map(|(name, buckets)| {
                        (
                            (*name).to_owned(),
                            Json::Arr(buckets.iter().map(|&b| Json::from(b)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// What a campaign run did, for callers and the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The allocated run id.
    pub id: String,
    /// Total items in the expanded campaign.
    pub items: usize,
    /// Items served from the result cache (no convert/simulate/count).
    pub hits: usize,
    /// Items handed to the executor.
    pub executed: usize,
    /// Executed items for which the executor returned no record.
    pub lost: usize,
    /// Stored records that are quarantined.
    pub quarantined: usize,
    /// Stored records with a forbidden target and a nonzero count
    /// (consistency violations).
    pub violations: usize,
}

/// Runs one campaign: cache partition → execute misses → cache clean
/// outcomes → persist the run.
///
/// # Errors
/// [`CampaignError`] on store or cache I/O failure.
pub fn run_campaign(
    store: &RunStore,
    cache: &ArtifactCache,
    spec: &CampaignSpec,
    items: &[CampaignItem],
    meta: &RunMeta,
    exec: impl FnOnce(&[CampaignItem]) -> Vec<Option<ExecOutcome>>,
) -> Result<RunSummary, CampaignError> {
    let t0 = Instant::now();
    let _span = perple_obs::trace::span("campaign");
    let metrics_before = perple_obs::metrics::snapshot();

    // Partition against the result cache, remembering each item's slot so
    // the stored run keeps the expansion order regardless of hit pattern.
    let mut records: Vec<Option<OutcomeRecord>> = vec![None; items.len()];
    let mut misses: Vec<(usize, CampaignItem)> = Vec::new();
    for (slot, item) in items.iter().enumerate() {
        match cache.load_result(item.fingerprint) {
            Some(hit) => records[slot] = Some(hit),
            None => misses.push((slot, item.clone())),
        }
    }
    let hits = items.len() - misses.len();

    // Execute the misses (if any) in one batch.
    let mut lost = 0usize;
    let mut stage_wall = StageWallMs::default();
    if !misses.is_empty() {
        let batch: Vec<CampaignItem> = misses.iter().map(|(_, i)| i.clone()).collect();
        let outcomes = exec(&batch);
        assert_eq!(
            outcomes.len(),
            batch.len(),
            "executor must return one slot per input item"
        );
        for ((slot, item), outcome) in misses.iter().zip(outcomes) {
            match outcome {
                Some(out) => {
                    if out.cacheable {
                        cache.store_result(item.fingerprint, &out.record)?;
                    }
                    stage_wall.add(out.wall);
                    records[*slot] = Some(out.record);
                }
                None => lost += 1,
            }
        }
    }

    let stored: Vec<OutcomeRecord> = records.into_iter().flatten().collect();
    let quarantined = stored.iter().filter(|r| r.quarantined).count();
    let violations = stored
        .iter()
        .filter(|r| r.forbidden && r.heuristic > 0)
        .count();

    let id = store.next_run_id(&spec.name);
    let mut fields = vec![
        ("schema", Json::from(1u64)),
        ("id", Json::from(id.as_str())),
        ("name", Json::from(spec.name.as_str())),
        ("created_unix_ms", Json::from(meta.created_unix_ms)),
        ("git", Json::from(meta.git.as_str())),
        ("spec", Json::from(spec.render())),
        (
            "counts",
            Json::obj(vec![
                ("items", Json::from(items.len())),
                ("hits", Json::from(hits)),
                ("executed", Json::from(misses.len())),
                ("lost", Json::from(lost)),
                ("quarantined", Json::from(quarantined)),
                ("violations", Json::from(violations)),
            ]),
        ),
    ];
    if let Some(lint) = &meta.lint {
        fields.push((
            "lint",
            Json::obj(vec![
                ("errors", Json::from(lint.errors)),
                ("warnings", Json::from(lint.warnings)),
                ("notes", Json::from(lint.notes)),
            ]),
        ));
    }
    fields.extend([
        ("wall_ms", Json::from(t0.elapsed().as_millis())),
        ("stage_wall_ms", stage_wall.to_json()),
        (
            "metrics",
            metrics_json(&perple_obs::metrics::snapshot().delta_from(&metrics_before)),
        ),
    ]);
    let manifest = Json::obj(fields);
    store.write_run(&id, &manifest, &stored)?;

    Ok(RunSummary {
        id,
        items: items.len(),
        hits,
        executed: misses.len(),
        lost,
        quarantined,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Hasher;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-eng-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn item(test: &str, seed: u64) -> CampaignItem {
        let mut h = Hasher::new();
        h.field("test", test).field_u64("seed", seed);
        CampaignItem {
            test: test.to_owned(),
            seed,
            fingerprint: h.finish(),
        }
    }

    fn outcome(it: &CampaignItem, heuristic: u64, cacheable: bool) -> ExecOutcome {
        ExecOutcome {
            record: OutcomeRecord {
                test: it.test.clone(),
                seed: it.seed,
                fingerprint: it.fingerprint.hex(),
                forbidden: it.test == "sb",
                heuristic,
                exhaustive: heuristic,
                degraded: false,
                iterations: 100,
                run_complete: true,
                faults: 0,
                digest: heuristic.wrapping_mul(31) ^ it.seed,
                quarantined: false,
                fault_kind: None,
            },
            cacheable,
            wall: StageWallMs {
                convert_ms: 1,
                run_ms: 2,
                count_ms: 3,
            },
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            created_unix_ms: 1,
            git: "test".to_owned(),
            lint: None,
        }
    }

    #[test]
    fn lint_summary_appears_in_the_manifest_only_when_present() {
        let root = tmp_root("lintmeta");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("lm");
        let items = vec![item("sb", 1)];
        let bare = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        assert!(
            store.load_manifest(&bare.id).unwrap().get("lint").is_none(),
            "no lint pass, no lint key"
        );

        let mut with_lint = meta();
        with_lint.lint = Some(LintSummary {
            errors: 0,
            warnings: 2,
            notes: 5,
        });
        let linted = run_campaign(&store, &cache, &spec, &items, &with_lint, |batch| {
            batch.iter().map(|i| Some(outcome(i, 1, true))).collect()
        })
        .unwrap();
        let m = store.load_manifest(&linted.id).unwrap();
        let lint = m.get("lint").expect("lint key present");
        assert_eq!(lint.get("warnings").and_then(Json::as_u64), Some(2));
        assert_eq!(lint.get("notes").and_then(Json::as_u64), Some(5));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn warm_rerun_executes_nothing() {
        let root = tmp_root("warm");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("warm");
        let items = vec![item("sb", 1), item("mp", 1), item("sb", 2)];
        let calls = AtomicUsize::new(0);

        let cold = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            calls.fetch_add(batch.len(), Ordering::SeqCst);
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        assert_eq!((cold.hits, cold.executed), (0, 3));
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        let warm = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            calls.fetch_add(batch.len(), Ordering::SeqCst);
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        assert_eq!(
            (warm.hits, warm.executed),
            (3, 0),
            "warm run must skip all work"
        );
        assert_eq!(
            calls.load(Ordering::SeqCst),
            3,
            "executor not called on warm run"
        );
        assert_eq!(
            store.load_items(&cold.id).unwrap(),
            store.load_items(&warm.id).unwrap(),
            "hit records equal the originals"
        );
        // Zero convert/run/count wall on the warm run: nothing executed.
        let m = store.load_manifest(&warm.id).unwrap();
        let sw = m.get("stage_wall_ms").unwrap();
        for stage in ["convert_ms", "run_ms", "count_ms"] {
            assert_eq!(sw.get(stage).and_then(Json::as_u64), Some(0), "{stage}");
        }
        let cold_sw = store.load_manifest(&cold.id).unwrap();
        assert_eq!(
            cold_sw
                .get("stage_wall_ms")
                .unwrap()
                .get("run_ms")
                .and_then(Json::as_u64),
            Some(6),
            "cold run sums executed stage walls"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn manifest_embeds_the_metrics_snapshot() {
        let root = tmp_root("metrics");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("m");
        let items = vec![item("sb", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 5, true))).collect()
        })
        .unwrap();
        let m = store.load_manifest(&summary.id).unwrap();
        let metrics = m.get("metrics").expect("manifest carries metrics");
        let counters = metrics.get("counters").expect("counters object");
        // Every metric of the closed set is present (zero when this test's
        // stub executor skipped the stage, but always queryable).
        for metric in perple_obs::metrics::Metric::ALL {
            assert!(
                counters.get(metric.name()).and_then(Json::as_u64).is_some(),
                "{}",
                metric.name()
            );
        }
        let hists = metrics.get("hists").expect("hists object");
        for hist in perple_obs::metrics::Hist::ALL {
            let buckets = hists.get(hist.name()).and_then(Json::as_arr).unwrap();
            assert_eq!(buckets.len(), perple_obs::metrics::HIST_BUCKETS);
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn uncacheable_outcomes_are_stored_but_rerun() {
        let root = tmp_root("uncache");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("u");
        let items = vec![item("sb", 1)];
        let first = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 2, false))).collect()
        })
        .unwrap();
        assert_eq!(first.hits, 0);
        assert_eq!(
            store.load_items(&first.id).unwrap().len(),
            1,
            "stored in the run"
        );
        let second = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch.iter().map(|i| Some(outcome(i, 2, true))).collect()
        })
        .unwrap();
        assert_eq!(
            second.executed, 1,
            "uncacheable outcome did not populate the cache"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn lost_items_are_counted_and_dropped() {
        let root = tmp_root("lost");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("l");
        let items = vec![item("sb", 1), item("mp", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch
                .iter()
                .map(|i| (i.test == "sb").then(|| outcome(i, 1, true)))
                .collect()
        })
        .unwrap();
        assert_eq!(summary.lost, 1);
        let stored = store.load_items(&summary.id).unwrap();
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].test, "sb");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn violations_and_quarantines_are_summarised() {
        let root = tmp_root("sum");
        let store = RunStore::open(&root).unwrap();
        let cache = ArtifactCache::open(&root).unwrap();
        let spec = CampaignSpec::named("s");
        let items = vec![item("sb", 1), item("mp", 1)];
        let summary = run_campaign(&store, &cache, &spec, &items, &meta(), |batch| {
            batch
                .iter()
                .map(|i| {
                    let mut out = outcome(i, 7, true);
                    if i.test == "mp" {
                        out.record.quarantined = true;
                        out.record.fault_kind = Some("panic".to_owned());
                        out.cacheable = false;
                    }
                    Some(out)
                })
                .collect()
        })
        .unwrap();
        assert_eq!(summary.violations, 1, "forbidden sb with nonzero count");
        assert_eq!(summary.quarantined, 1);
        let manifest = store.load_manifest(&summary.id).unwrap();
        let counts = manifest.get("counts").unwrap();
        assert_eq!(counts.get("violations").and_then(Json::as_u64), Some(1));
        assert_eq!(counts.get("quarantined").and_then(Json::as_u64), Some(1));
        let _ = fs::remove_dir_all(root);
    }
}
