//! The store IO shim: every byte the campaign store writes crosses a
//! numbered **boundary** here, and a [`CrashPlan`] can kill or fail the
//! process at any one of them.
//!
//! This is the storage-layer analog of the simulator's `FaultPlan`: where
//! that plan corrupts the *machine under test*, a `CrashPlan` corrupts the
//! *test harness's own durability story* — aborting at the k-th
//! write/rename/sync/mkdir boundary the way `SIGKILL` would, or failing a
//! boundary with a transient error the way a flaky filesystem would. The
//! crash-matrix suite iterates k over every boundary of a reference
//! campaign and proves that `fsck` + `resume` recover bit-identical item
//! records with zero re-execution of journaled work.
//!
//! Crash semantics are deliberately brutal: an `abort` boundary writes a
//! **torn prefix** of the intended bytes (half of them), then poisons the
//! shim — every later operation through the same [`StoreIo`] fails too, so
//! no cleanup path can accidentally "survive" the crash and tidy up what a
//! real dead process could not. Transient boundaries fail the first N
//! attempts of one operation; every operation retries with bounded backoff
//! before giving up, so a single spurious `EINTR`-class error never kills
//! a campaign.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use perple_obs::metrics::{self, Metric};

use crate::{CampaignError, StorageKind};

/// Retries after the first failed attempt of one operation.
const MAX_RETRIES: u32 = 3;
/// Backoff before retry i (milliseconds): bounded, roughly doubling.
const BACKOFF_MS: [u64; MAX_RETRIES as usize] = [1, 2, 4];

/// What an injection point does to the operation that crosses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Simulated process death: write a torn prefix, poison the shim,
    /// fail this and every subsequent operation.
    Abort,
    /// Fail the first `failures` attempts of the operation with a
    /// transient error; the bounded-backoff retry loop absorbs up to
    /// [`MAX_RETRIES`] of them.
    Transient {
        /// How many attempts fail before the operation succeeds.
        failures: u32,
    },
}

/// A set of injection points over the boundary counter: `(boundary index,
/// what happens there)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    points: Vec<(u64, CrashKind)>,
}

impl CrashPlan {
    /// The empty plan: no injections, byte-identical behaviour to a store
    /// without a shim.
    pub fn none() -> Self {
        Self::default()
    }

    /// Abort (simulated `SIGKILL`) at boundary `k`.
    pub fn abort_at(k: u64) -> Self {
        Self {
            points: vec![(k, CrashKind::Abort)],
        }
    }

    /// Fail `failures` attempts of the operation at boundary `k`.
    pub fn transient_at(k: u64, failures: u32) -> Self {
        Self {
            points: vec![(k, CrashKind::Transient { failures })],
        }
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn at(&self, boundary: u64) -> Option<CrashKind> {
        self.points
            .iter()
            .find(|(k, _)| *k == boundary)
            .map(|(_, kind)| *kind)
    }

    /// Parses the CLI grammar: comma-separated `abort@K` and
    /// `transient@K` / `transient@K:N` terms (`N` = failing attempts,
    /// default 1).
    ///
    /// # Errors
    /// A human-readable description of the malformed term.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = CrashPlan::none();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, at) = term
                .split_once('@')
                .ok_or_else(|| format!("crash term {term:?}: expected kind@boundary"))?;
            match kind.trim() {
                "abort" => {
                    let k = at
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("crash term {term:?}: bad boundary index"))?;
                    plan.points.push((k, CrashKind::Abort));
                }
                "transient" => {
                    let (k, n) = match at.split_once(':') {
                        Some((k, n)) => (
                            k.trim().parse::<u64>(),
                            n.trim()
                                .parse::<u32>()
                                .map_err(|_| format!("crash term {term:?}: bad failure count"))?,
                        ),
                        None => (at.trim().parse::<u64>(), 1),
                    };
                    let k = k.map_err(|_| format!("crash term {term:?}: bad boundary index"))?;
                    plan.points.push((k, CrashKind::Transient { failures: n }));
                }
                other => return Err(format!("crash term {term:?}: unknown kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

#[derive(Debug)]
struct IoState {
    plan: CrashPlan,
    boundary: AtomicU64,
    dead: AtomicBool,
}

/// The shared write shim of one store (the [`RunStore`], its journals, and
/// its [`ArtifactCache`] all clone the same handle, so one boundary
/// counter numbers every write of a campaign).
///
/// [`RunStore`]: crate::store::RunStore
/// [`ArtifactCache`]: crate::cache::ArtifactCache
#[derive(Debug, Clone)]
pub struct StoreIo {
    state: Arc<IoState>,
}

impl Default for StoreIo {
    fn default() -> Self {
        Self::unplanned()
    }
}

impl StoreIo {
    /// A shim with injections.
    pub fn new(plan: CrashPlan) -> Self {
        Self {
            state: Arc::new(IoState {
                plan,
                boundary: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// A shim that injects nothing (the production default).
    pub fn unplanned() -> Self {
        Self::new(CrashPlan::none())
    }

    /// Boundaries crossed so far — the `k` domain a crash matrix iterates.
    pub fn boundaries(&self) -> u64 {
        self.state.boundary.load(Ordering::SeqCst)
    }

    /// True once an abort point fired: the simulated process is dead and
    /// every further operation fails.
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    /// Crosses one boundary: checks the poison flag, numbers the
    /// operation, and looks up the plan.
    fn cross(&self, path: &Path) -> Result<Option<CrashKind>, CampaignError> {
        if self.is_dead() {
            return Err(self.died(path));
        }
        metrics::add(Metric::StoreIoBoundaries, 1);
        let k = self.state.boundary.fetch_add(1, Ordering::SeqCst);
        Ok(self.state.plan.at(k))
    }

    fn died(&self, path: &Path) -> CampaignError {
        self.state.dead.store(true, Ordering::SeqCst);
        CampaignError::storage(
            StorageKind::CrashInjected,
            format!("{}: injected crash", path.display()),
        )
    }

    /// The bounded-backoff retry loop of one operation: the first
    /// `injected` attempts fail with a synthetic transient error, then
    /// `attempt` runs for real; each failure (injected or real) costs one
    /// retry slot.
    fn retry<T>(
        &self,
        path: &Path,
        mut injected: u32,
        mut attempt: impl FnMut() -> std::io::Result<T>,
    ) -> Result<T, CampaignError> {
        let mut retries = 0u32;
        loop {
            let (result, was_injected) = if injected > 0 {
                injected -= 1;
                (
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected transient failure",
                    )),
                    true,
                )
            } else {
                (attempt(), false)
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) if retries < MAX_RETRIES => {
                    metrics::add(Metric::StoreTransientRetries, 1);
                    std::thread::sleep(Duration::from_millis(BACKOFF_MS[retries as usize]));
                    retries += 1;
                    let _ = e;
                }
                Err(e) => {
                    let kind = if was_injected {
                        StorageKind::Transient
                    } else {
                        StorageKind::Io
                    };
                    return Err(CampaignError::storage(
                        kind,
                        format!("{}: {e} (after {retries} retries)", path.display()),
                    ));
                }
            }
        }
    }

    /// One boundary-crossing operation: `attempt` is retried with bounded
    /// backoff (absorbing injected transients and real spurious errors),
    /// `torn` is what an abort leaves half-done on disk.
    fn op<T>(
        &self,
        path: &Path,
        attempt: impl FnMut() -> std::io::Result<T>,
        torn: impl FnOnce(),
    ) -> Result<T, CampaignError> {
        match self.cross(path)? {
            Some(CrashKind::Abort) => {
                torn();
                Err(self.died(path))
            }
            Some(CrashKind::Transient { failures }) => self.retry(path, failures, attempt),
            None => self.retry(path, 0, attempt),
        }
    }

    /// Atomic document write: temp file + rename, each its own boundary.
    /// An abort at the write boundary leaves a torn `.tmp`; an abort at
    /// the rename boundary leaves a complete `.tmp` that never landed.
    ///
    /// The temp name is unique per writer (pid + a process-wide counter),
    /// so two threads — or two processes — racing to write the *same*
    /// final path (e.g. concurrent campaigns caching one fingerprint)
    /// each stage their own complete bytes and the landed entry is always
    /// one writer's whole document, never an interleaving. The name still
    /// ends in `.tmp`, which is what `fsck` sweeps for stray temp files.
    pub fn write_atomic(&self, path: &Path, content: &str) -> Result<(), CampaignError> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        self.op(
            &tmp,
            || fs::write(&tmp, content),
            || {
                let _ = fs::write(&tmp, &content.as_bytes()[..content.len() / 2]);
            },
        )?;
        self.op(path, || fs::rename(&tmp, path), || {})
    }

    /// Appends raw bytes to an open file (one boundary). An abort writes
    /// half the bytes — a torn frame the journal replay must detect.
    pub fn append(
        &self,
        path: &Path,
        file: &mut fs::File,
        bytes: &[u8],
    ) -> Result<(), CampaignError> {
        match self.cross(path)? {
            Some(CrashKind::Abort) => {
                let _ = file.write_all(&bytes[..bytes.len() / 2]);
                let _ = file.flush();
                Err(self.died(path))
            }
            Some(CrashKind::Transient { failures }) => {
                self.retry(path, failures, || file.write_all(bytes))
            }
            None => self.retry(path, 0, || file.write_all(bytes)),
        }
    }

    /// Appends one line (with trailing newline) to a file by path,
    /// creating it if needed (one boundary). An abort writes half the
    /// line — the torn trailing `runs.jsonl` line `fsck` classifies.
    pub fn append_line(&self, path: &Path, line: &str) -> Result<(), CampaignError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.op(
            path,
            || {
                let mut f = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                f.write_all(framed.as_bytes())
            },
            || {
                if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
                    let _ = f.write_all(&framed.as_bytes()[..framed.len() / 2]);
                }
            },
        )
    }

    /// Syncs file contents to stable storage (one boundary). An abort
    /// dies *before* the sync — data written but not yet durable, exactly
    /// the window a real crash exposes.
    pub fn sync(&self, path: &Path, file: &fs::File) -> Result<(), CampaignError> {
        metrics::add(Metric::StoreFsyncs, 1);
        self.op(path, || file.sync_all(), || {})
    }

    /// Creates one directory as an atomic reservation (one boundary):
    /// `Ok(true)` if this call created it, `Ok(false)` if it already
    /// existed (the reservation lost the race). An abort dies before
    /// creating anything.
    pub fn create_dir(&self, path: &Path) -> Result<bool, CampaignError> {
        self.op(
            path,
            || match fs::create_dir(path) {
                Ok(()) => Ok(true),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(false),
                Err(e) => Err(e),
            },
            || {},
        )
    }

    /// Creates a directory chain (one boundary; idempotent).
    pub fn create_dir_all(&self, path: &Path) -> Result<(), CampaignError> {
        self.op(path, || fs::create_dir_all(path), || {})
    }

    /// Removes a file (one boundary). An abort dies with the file intact.
    pub fn remove_file(&self, path: &Path) -> Result<(), CampaignError> {
        self.op(path, || fs::remove_file(path), || {})
    }

    /// Truncates a file to `len` bytes (one boundary) — how torn journal
    /// tails and torn index lines are amputated.
    pub fn truncate(&self, path: &Path, len: u64) -> Result<(), CampaignError> {
        self.op(
            path,
            || fs::OpenOptions::new().write(true).open(path)?.set_len(len),
            || {},
        )
    }

    /// Renames a file (one boundary) — how corrupt cache entries move to
    /// quarantine. An abort dies with the source intact.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<(), CampaignError> {
        self.op(to, || fs::rename(from, to), || {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The single stranded `*.tmp` file in `dir` (temp names carry a
    /// unique pid+sequence infix, so tests locate them by extension).
    fn stranded_tmp(dir: &Path) -> PathBuf {
        let temps: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert_eq!(
            temps.len(),
            1,
            "expected exactly one stranded tmp: {temps:?}"
        );
        temps.into_iter().next().unwrap()
    }

    #[test]
    fn plan_grammar_round_trips_terms() {
        let plan = CrashPlan::parse("abort@5").unwrap();
        assert_eq!(plan.at(5), Some(CrashKind::Abort));
        assert_eq!(plan.at(4), None);
        let plan = CrashPlan::parse("transient@3, transient@7:2").unwrap();
        assert_eq!(plan.at(3), Some(CrashKind::Transient { failures: 1 }));
        assert_eq!(plan.at(7), Some(CrashKind::Transient { failures: 2 }));
        assert!(CrashPlan::parse("").unwrap().is_empty());
        for bad in ["abort", "abort@x", "transient@1:y", "explode@3"] {
            assert!(CrashPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn abort_tears_the_write_and_poisons_the_shim() {
        let dir = tmp("abort");
        let io = StoreIo::new(CrashPlan::abort_at(0));
        let path = dir.join("doc.json");
        let err = io.write_atomic(&path, "0123456789").unwrap_err();
        assert!(err.is_crash(), "{err}");
        assert!(!path.exists(), "rename never happened");
        let torn = fs::read(stranded_tmp(&dir)).unwrap();
        assert_eq!(torn, b"01234", "half the bytes landed");
        // The shim is dead: every further op fails without touching disk.
        assert!(io.is_dead());
        let err = io.write_atomic(&dir.join("other.json"), "x").unwrap_err();
        assert!(err.is_crash(), "{err}");
        assert!(!dir.join("other.json").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn abort_at_the_rename_boundary_strands_the_tmp() {
        let dir = tmp("rename");
        let io = StoreIo::new(CrashPlan::abort_at(1));
        let path = dir.join("doc.json");
        assert!(io.write_atomic(&path, "full content").is_err());
        assert!(!path.exists());
        assert_eq!(
            fs::read_to_string(stranded_tmp(&dir)).unwrap(),
            "full content",
            "write boundary completed; rename boundary crashed"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_failures_are_absorbed_by_retries() {
        let dir = tmp("transient");
        let io = StoreIo::new(CrashPlan::transient_at(0, MAX_RETRIES));
        let path = dir.join("doc.json");
        io.write_atomic(&path, "survived").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "survived");
        assert!(!io.is_dead());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn transient_beyond_the_retry_budget_is_a_storage_error() {
        let dir = tmp("exhaust");
        let io = StoreIo::new(CrashPlan::transient_at(0, MAX_RETRIES + 1));
        let err = io.write_atomic(&dir.join("doc.json"), "never").unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Storage {
                    kind: StorageKind::Transient,
                    ..
                }
            ),
            "{err}"
        );
        assert!(!io.is_dead(), "transient exhaustion is not a crash");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn create_dir_reports_the_race_loser() {
        let dir = tmp("reserve");
        let io = StoreIo::unplanned();
        let d = dir.join("run-0001");
        assert!(io.create_dir(&d).unwrap(), "first reservation wins");
        assert!(!io.create_dir(&d).unwrap(), "second reservation loses");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn boundaries_number_every_operation() {
        let dir = tmp("count");
        let io = StoreIo::unplanned();
        io.write_atomic(&dir.join("a.json"), "a").unwrap(); // write + rename
        io.append_line(&dir.join("idx.jsonl"), "{}").unwrap(); // append
        io.create_dir(&dir.join("d")).unwrap(); // mkdir
        assert_eq!(io.boundaries(), 4);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_writers_to_one_path_never_land_a_torn_document() {
        let dir = tmp("racewrite");
        let path = dir.join("entry.json");
        for round in 0..4 {
            std::thread::scope(|s| {
                for writer in 0..8u8 {
                    let path = path.clone();
                    s.spawn(move || {
                        let io = StoreIo::unplanned();
                        // Each writer's whole document is one repeated
                        // letter, so any interleaving is detectable.
                        let letter = (b'a' + writer) as char;
                        let content = letter.to_string().repeat(64 * 1024);
                        io.write_atomic(&path, &content).unwrap();
                    });
                }
            });
            let landed = fs::read_to_string(&path).unwrap();
            assert_eq!(landed.len(), 64 * 1024, "round {round}: torn length");
            let first = landed.chars().next().unwrap();
            assert!(
                landed.chars().all(|c| c == first),
                "round {round}: interleaved writers"
            );
        }
        // Unique temp names mean no .tmp strays survive a clean race.
        let strays = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(strays, 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_append_line_leaves_a_half_line() {
        let dir = tmp("tornline");
        let path = dir.join("runs.jsonl");
        let io = StoreIo::unplanned();
        io.append_line(&path, "{\"id\":\"a-0001\"}").unwrap();
        let io = StoreIo::new(CrashPlan::abort_at(0));
        assert!(io.append_line(&path, "{\"id\":\"a-0002\"}").is_err());
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"id\":\"a-0001\"}\n"), "{text:?}");
        assert!(!text.ends_with('\n'), "second line is torn: {text:?}");
        let _ = fs::remove_dir_all(dir);
    }
}
