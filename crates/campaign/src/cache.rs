//! The content-addressed artifact cache (`cas/` under the store root).
//!
//! Two namespaces, both keyed by [`Fingerprint`] and sharded on the first
//! two hex digits to keep directories small:
//!
//! ```text
//! cas/result/<2hex>/<32hex>.json   counted outcome records
//! cas/conv/<2hex>/<32hex>.json    conversion artifact bundles (text)
//! ```
//!
//! `result/` entries let a warm campaign re-run skip convert → simulate →
//! count entirely; `conv/` entries preserve the generated COUNT/COUNTH
//! artifacts for inspection. Writes are *write-if-absent* through a temp
//! file + rename: by construction equal fingerprints mean equal content,
//! so the first writer wins and concurrent writers are harmless. A
//! malformed or truncated entry reads as a **miss**, never an error — the
//! cache is an accelerator, not a source of truth.

use std::fs;
use std::path::{Path, PathBuf};

use perple_analysis::jsonout::{self, Json};

use crate::fingerprint::Fingerprint;
use crate::io::StoreIo;
use crate::store::OutcomeRecord;
use crate::CampaignError;

/// Handle on one cache root (`<store-root>/cas`).
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
    io: StoreIo,
}

impl ArtifactCache {
    /// Opens (creating if needed) the cache under a store root with a
    /// production (injection-free) IO shim.
    ///
    /// # Errors
    /// [`CampaignError::Io`] if the namespace directories cannot be created.
    pub fn open(store_root: impl AsRef<Path>) -> Result<Self, CampaignError> {
        Self::open_with(store_root, StoreIo::unplanned())
    }

    /// Opens the cache with writes routed through the given shim — pass
    /// the owning store's shim so one boundary counter numbers every
    /// write of a campaign.
    ///
    /// # Errors
    /// [`CampaignError::Io`] if the namespace directories cannot be created.
    pub fn open_with(store_root: impl AsRef<Path>, io: StoreIo) -> Result<Self, CampaignError> {
        let root = store_root.as_ref().join("cas");
        for ns in ["result", "conv"] {
            let dir = root.join(ns);
            fs::create_dir_all(&dir).map_err(|e| CampaignError::io(&dir, e))?;
        }
        Ok(Self { root, io })
    }

    fn entry_path(&self, namespace: &str, fp: Fingerprint) -> PathBuf {
        let hex = fp.hex();
        self.root
            .join(namespace)
            .join(&hex[..2])
            .join(format!("{hex}.json"))
    }

    /// Looks up a counted outcome record; any unreadable or malformed
    /// entry is a miss.
    pub fn load_result(&self, fp: Fingerprint) -> Option<OutcomeRecord> {
        let text = fs::read_to_string(self.entry_path("result", fp)).ok()?;
        let doc = jsonout::parse(&text).ok()?;
        let record = OutcomeRecord::from_json(&doc).ok()?;
        // Refuse hits whose stored fingerprint disagrees with the file
        // name — a moved or hand-edited entry must not impersonate a key.
        (record.fingerprint == fp.hex()).then_some(record)
    }

    /// Stores a counted outcome record under its fingerprint
    /// (write-if-absent).
    ///
    /// # Errors
    /// [`CampaignError::Io`] on filesystem trouble.
    pub fn store_result(
        &self,
        fp: Fingerprint,
        record: &OutcomeRecord,
    ) -> Result<(), CampaignError> {
        self.store_entry("result", fp, &record.to_json().render())
    }

    /// Looks up a conversion artifact bundle (rendered text form).
    pub fn load_conv(&self, fp: Fingerprint) -> Option<String> {
        let text = fs::read_to_string(self.entry_path("conv", fp)).ok()?;
        let doc = jsonout::parse(&text).ok()?;
        doc.get("artifact")
            .and_then(Json::as_str)
            .map(str::to_owned)
    }

    /// Stores a conversion artifact bundle under its source fingerprint
    /// (write-if-absent).
    ///
    /// # Errors
    /// [`CampaignError::Io`] on filesystem trouble.
    pub fn store_conv(&self, fp: Fingerprint, artifact: &str) -> Result<(), CampaignError> {
        let doc = Json::obj(vec![
            ("fingerprint", Json::from(fp.hex().as_str())),
            ("artifact", Json::from(artifact)),
        ]);
        self.store_entry("conv", fp, &doc.render())
    }

    fn store_entry(
        &self,
        namespace: &str,
        fp: Fingerprint,
        content: &str,
    ) -> Result<(), CampaignError> {
        let path = self.entry_path(namespace, fp);
        if path.exists() {
            return Ok(());
        }
        let dir = path.parent().expect("entry paths always have a shard dir");
        self.io.create_dir_all(dir)?;
        self.io.write_atomic(&path, content)
    }

    /// Every entry file of a namespace, for `fsck`'s checksum sweep.
    pub fn entry_paths(&self, namespace: &str) -> Vec<PathBuf> {
        let Ok(shards) = fs::read_dir(self.root.join(namespace)) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = shards
            .flatten()
            .filter(|s| s.path().is_dir())
            .filter_map(|shard| fs::read_dir(shard.path()).ok())
            .flat_map(|entries| entries.flatten().map(|e| e.path()))
            .collect();
        paths.sort();
        paths
    }

    /// Checks one entry file against the content-address contract (both
    /// namespaces embed a `fingerprint` field): `Some(reason)` if it must
    /// not be served — unreadable, unparseable, or its embedded
    /// fingerprint disagrees with its file name.
    pub fn verify_entry(path: &Path) -> Option<String> {
        let name = path.file_stem()?.to_string_lossy().into_owned();
        let Ok(text) = fs::read_to_string(path) else {
            return Some("unreadable".to_owned());
        };
        let Ok(doc) = jsonout::parse(&text) else {
            return Some("unparseable JSON".to_owned());
        };
        match doc.get("fingerprint").and_then(Json::as_str) {
            Some(fp) if fp == name => None,
            Some(fp) => Some(format!("embedded fingerprint {fp} != name {name}")),
            None => Some("no embedded fingerprint".to_owned()),
        }
    }

    /// Moves a corrupt entry to `cas/quarantine/` so it can never be
    /// served as a hit again (its bytes are preserved for diagnosis).
    ///
    /// # Errors
    /// [`CampaignError::Storage`] on IO failure.
    pub fn quarantine(&self, path: &Path) -> Result<PathBuf, CampaignError> {
        let dir = self.root.join("quarantine");
        self.io.create_dir_all(&dir)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_owned());
        let dest = dir.join(name);
        self.io.rename(path, &dest)?;
        perple_obs::metrics::add(perple_obs::metrics::Metric::StoreCacheQuarantines, 1);
        Ok(dest)
    }

    /// Entry counts per namespace, `(result, conv)` — for `campaign ls`.
    pub fn stats(&self) -> (usize, usize) {
        (self.count_entries("result"), self.count_entries("conv"))
    }

    fn count_entries(&self, namespace: &str) -> usize {
        let Ok(shards) = fs::read_dir(self.root.join(namespace)) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|shard| fs::read_dir(shard.path()).ok())
            .map(|entries| entries.flatten().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Hasher;

    fn tmp_cache(tag: &str) -> (PathBuf, ArtifactCache) {
        let dir =
            std::env::temp_dir().join(format!("perple-campaign-cas-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ArtifactCache::open(&dir).unwrap();
        (dir, cache)
    }

    fn fp(tag: &str) -> Fingerprint {
        let mut h = Hasher::new();
        h.field("tag", tag);
        h.finish()
    }

    fn record_for(fp: Fingerprint) -> OutcomeRecord {
        OutcomeRecord {
            test: "sb".to_owned(),
            seed: 1,
            fingerprint: fp.hex(),
            forbidden: true,
            heuristic: 3,
            exhaustive: 3,
            degraded: false,
            iterations: 500,
            run_complete: true,
            faults: 0,
            digest: 42,
            quarantined: false,
            fault_kind: None,
        }
    }

    #[test]
    fn result_entries_round_trip() {
        let (dir, cache) = tmp_cache("result");
        let key = fp("a");
        assert_eq!(cache.load_result(key), None, "cold cache misses");
        let record = record_for(key);
        cache.store_result(key, &record).unwrap();
        assert_eq!(cache.load_result(key), Some(record));
        assert_eq!(cache.load_result(fp("b")), None, "other keys still miss");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn conv_entries_round_trip() {
        let (dir, cache) = tmp_cache("conv");
        let key = fp("conv");
        let artifact = "==== thread t0 ====\nMOV [x],$1\n";
        cache.store_conv(key, artifact).unwrap();
        assert_eq!(cache.load_conv(key).as_deref(), Some(artifact));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_entries_read_as_misses() {
        let (dir, cache) = tmp_cache("malformed");
        let key = fp("junk");
        let path = cache.entry_path("result", key);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{truncated").unwrap();
        assert_eq!(cache.load_result(key), None);
        // And a valid record stored under the wrong name is also a miss.
        let other = fp("other");
        let path = cache.entry_path("result", other);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, record_for(key).to_json().render()).unwrap();
        assert_eq!(
            cache.load_result(other),
            None,
            "fingerprint mismatch is a miss"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn store_is_write_if_absent() {
        let (dir, cache) = tmp_cache("wia");
        let key = fp("once");
        cache.store_result(key, &record_for(key)).unwrap();
        let path = cache.entry_path("result", key);
        let before = fs::read(&path).unwrap();
        let mut altered = record_for(key);
        altered.heuristic = 999;
        cache.store_result(key, &altered).unwrap();
        assert_eq!(fs::read(&path).unwrap(), before, "first writer wins");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn verify_and_quarantine_handle_corrupt_entries() {
        let (dir, cache) = tmp_cache("fsck");
        let good = fp("good");
        cache.store_result(good, &record_for(good)).unwrap();
        let good_path = cache.entry_path("result", good);
        assert_eq!(ArtifactCache::verify_entry(&good_path), None);

        // A truncated entry and a wrong-name entry both fail verification.
        let junk = fp("junk");
        let junk_path = cache.entry_path("result", junk);
        fs::create_dir_all(junk_path.parent().unwrap()).unwrap();
        fs::write(&junk_path, "{truncated").unwrap();
        assert!(ArtifactCache::verify_entry(&junk_path).is_some());
        let moved = fp("moved");
        let moved_path = cache.entry_path("result", moved);
        fs::create_dir_all(moved_path.parent().unwrap()).unwrap();
        fs::write(&moved_path, record_for(good).to_json().render()).unwrap();
        assert!(ArtifactCache::verify_entry(&moved_path)
            .unwrap()
            .contains("!= name"));

        // Quarantine moves the entry out of serving position.
        let dest = cache.quarantine(&junk_path).unwrap();
        assert!(!junk_path.exists());
        assert!(dest.exists());
        assert!(dest.starts_with(cache.root.join("quarantine")));
        assert_eq!(cache.load_result(junk), None);

        // entry_paths sweeps what's left, sorted.
        let listed = cache.entry_paths("result");
        assert_eq!(listed.len(), 2, "{listed:?}");
        assert!(listed.contains(&good_path));
        assert!(listed.contains(&moved_path));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_count_both_namespaces() {
        let (dir, cache) = tmp_cache("stats");
        assert_eq!(cache.stats(), (0, 0));
        for tag in ["a", "b", "c"] {
            let key = fp(tag);
            cache.store_result(key, &record_for(key)).unwrap();
        }
        cache.store_conv(fp("conv"), "x").unwrap();
        assert_eq!(cache.stats(), (3, 1));
        let _ = fs::remove_dir_all(dir);
    }
}
