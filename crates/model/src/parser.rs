//! Parser for the litmus7 text format (x86 subset).
//!
//! The accepted grammar covers the instruction set used by the x86-TSO test
//! family:
//!
//! ```text
//! X86 sb
//! "store buffering"
//! { x=0; y=0; }
//!  P0          | P1          ;
//!  MOV [x],$1  | MOV [y],$1  ;
//!  MOV EAX,[y] | MOV EAX,[x] ;
//! exists (0:EAX=0 /\ 1:EAX=0)
//! ```
//!
//! Supported instructions: `MOV [loc],$v` (store), `MOV REG,[loc]` (load),
//! `MFENCE`, and the extension `XCHG [loc],$v -> REG` (locked exchange that
//! stores `v` and loads the previous value into `REG`). Conditions are
//! conjunctions of `t:REG=v` and `[loc]=v` atoms under `exists` or
//! `~exists`.
//!
//! [`parse_with_spans`] additionally returns a [`SourceMap`] recording the
//! byte-offset [`Span`] of every instruction, condition atom, and init
//! entry — the input to spanned diagnostics (lint rules, error messages).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! X86 sb
//! { x=0; y=0; }
//!  P0          | P1          ;
//!  MOV [x],$1  | MOV [y],$1  ;
//!  MOV EAX,[y] | MOV EAX,[x] ;
//! exists (0:EAX=0 /\ 1:EAX=0)
//! "#;
//! let test = perple_model::parser::parse(src)?;
//! assert_eq!(test.name(), "sb");
//! assert_eq!(test.thread_count(), 2);
//! # Ok::<(), perple_model::ModelError>(())
//! ```

use crate::cond::Quantifier;
use crate::error::ModelError;
use crate::span::{SourceMap, Span};
use crate::test::{LitmusTest, TestBuilder};

/// Parses a litmus test from its litmus7 text representation.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] (with a line number and, where a concrete
/// token is at fault, its byte span) on malformed input and propagates
/// structural errors from [`TestBuilder::build`].
pub fn parse(input: &str) -> Result<LitmusTest, ModelError> {
    parse_with_spans(input).map(|(test, _)| test)
}

/// Resolves byte spans of sub-slices against the original input.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    input: &'a str,
}

impl Ctx<'_> {
    /// Span of `sub`, which must be a slice of the original input.
    fn span(&self, line: usize, sub: &str) -> Span {
        let start = sub.as_ptr() as usize - self.input.as_ptr() as usize;
        Span::new(line, start, start + sub.len())
    }
}

/// Parses a litmus test and the [`SourceMap`] locating its parts in
/// `input`.
///
/// # Errors
/// As for [`parse`].
pub fn parse_with_spans(input: &str) -> Result<(LitmusTest, SourceMap), ModelError> {
    let ctx = Ctx { input };
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    // Header: "X86 <name>".
    let (lineno, header) = lines.next().ok_or_else(|| perr(0, "empty input"))?;
    let mut parts = header.split_whitespace();
    let arch = parts.next().unwrap_or_default();
    if !arch.eq_ignore_ascii_case("x86") {
        return Err(perr_span(
            lineno,
            ctx.span(lineno, arch),
            format!("expected architecture X86, found {arch:?}"),
        ));
    }
    let name = parts
        .next()
        .ok_or_else(|| perr(lineno, "missing test name after architecture"))?;
    let name_span = ctx.span(lineno, name);

    let mut builder = TestBuilder::new(name);

    // Optional doc string(s): quoted lines before the init block.
    let mut pending: Option<(usize, &str)> = None;
    for (n, l) in lines.by_ref() {
        if l.starts_with('"') {
            let doc = l.trim_matches('"').to_owned();
            builder.doc(doc);
        } else {
            pending = Some((n, l));
            break;
        }
    }

    // Init block: "{ x=0; y=0; }" — possibly spread over lines. Collected
    // as per-line segments so entry spans survive.
    let (n, l) = pending.ok_or_else(|| perr(lineno, "missing init block"))?;
    if !l.starts_with('{') {
        return Err(perr_span(
            n,
            ctx.span(n, l),
            "expected init block starting with '{'",
        ));
    }
    let mut segments: Vec<(usize, &str)> = Vec::new();
    let mut rest_after_init: Option<(usize, &str)> = None;
    let mut cur: (usize, &str) = (n, &l[1..]);
    loop {
        let (cn, cl) = cur;
        if let Some(close) = cl.find('}') {
            segments.push((cn, &cl[..close]));
            let tail = cl[close + 1..].trim();
            if !tail.is_empty() {
                rest_after_init = Some((cn, tail));
            }
            break;
        }
        segments.push((cn, cl));
        match lines.next() {
            Some((nn, nl)) => cur = (nn, nl),
            None => return Err(perr(cn, "unterminated init block")),
        }
    }
    let mut init_entries: Vec<(String, u32, Span)> = Vec::new();
    for &(sn, seg) in &segments {
        parse_init_segment(seg, sn, ctx, &mut init_entries)?;
    }

    // Program table rows.
    let mut rows: Vec<(usize, &str)> = Vec::new();
    let mut cond_line: Option<(usize, &str)> = None;
    fn feed<'a>(
        n: usize,
        l: &'a str,
        rows: &mut Vec<(usize, &'a str)>,
    ) -> Option<(usize, &'a str)> {
        let lower = l.to_ascii_lowercase();
        if lower.starts_with("exists")
            || lower.starts_with("~exists")
            || lower.starts_with("forall")
        {
            Some((n, l))
        } else {
            rows.push((n, l));
            None
        }
    }
    if let Some((rn, rl)) = rest_after_init {
        cond_line = feed(rn, rl, &mut rows);
    }
    if cond_line.is_none() {
        for (n, l) in lines {
            if let Some(c) = feed(n, l, &mut rows) {
                cond_line = Some(c);
                break;
            }
        }
    }
    if rows.is_empty() {
        return Err(perr(n, "missing program table"));
    }

    // Split rows into per-thread columns (cells stay input slices, so
    // their spans survive).
    fn split_row(l: &str) -> Vec<&str> {
        l.trim_end_matches(';').split('|').map(str::trim).collect()
    }
    let (hn, header_row) = rows[0];
    let headers = split_row(header_row);
    let nthreads = headers.len();
    for (i, h) in headers.iter().enumerate() {
        let expected = format!("P{i}");
        if !h.eq_ignore_ascii_case(&expected) {
            return Err(perr_span(
                hn,
                ctx.span(hn, h),
                format!("expected thread header {expected}, found {h:?}"),
            ));
        }
    }
    let mut columns: Vec<Vec<(usize, &str)>> = vec![Vec::new(); nthreads];
    for &(rn, row) in rows.iter().skip(1) {
        let cells = split_row(row);
        if cells.len() != nthreads {
            return Err(perr_span(
                rn,
                ctx.span(rn, row),
                format!("row has {} columns, expected {nthreads}", cells.len()),
            ));
        }
        for (t, cell) in cells.into_iter().enumerate() {
            if !cell.is_empty() {
                columns[t].push((rn, cell));
            }
        }
    }

    let mut instr_spans: Vec<Vec<Span>> = Vec::with_capacity(nthreads);
    for column in &columns {
        let mut tb = builder.thread();
        let mut spans = Vec::with_capacity(column.len());
        for &(rn, cell) in column {
            parse_instr(&mut tb, cell, rn, ctx)?;
            spans.push(ctx.span(rn, cell));
        }
        instr_spans.push(spans);
    }

    // Init overrides (after locations are interned by the program; unknown
    // init locations are interned here so `{ z=3; }` with an unused z still
    // builds, matching litmus7).
    for (loc, v, _) in &init_entries {
        if *v != 0 {
            builder.init(loc.clone(), *v);
        }
    }

    // Condition.
    let (cn, cond) = cond_line.ok_or_else(|| perr(n, "missing condition line"))?;
    let cond_span = ctx.span(cn, cond);
    let mut reg_spans = Vec::new();
    let mut mem_spans = Vec::new();
    parse_condition(&mut builder, cond, cn, ctx, &mut reg_spans, &mut mem_spans)?;

    let map = SourceMap {
        name: name_span,
        init_entries: init_entries
            .into_iter()
            .map(|(loc, _, span)| (loc, span))
            .collect(),
        instrs: instr_spans,
        cond: cond_span,
        // Condition::atoms order: register atoms first, then memory atoms
        // (the builder's resolution order).
        cond_atoms: reg_spans.into_iter().chain(mem_spans).collect(),
    };
    builder.build().map(|test| (test, map))
}

fn perr(line: usize, msg: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line,
        span: None,
        msg: msg.into(),
    }
}

fn perr_span(line: usize, span: Span, msg: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line,
        span: Some(span),
        msg: msg.into(),
    }
}

/// Parses one line's worth of init entries (`x=0; y=3;`) into
/// `(location, value, span)` triples.
fn parse_init_segment(
    seg: &str,
    line: usize,
    ctx: Ctx<'_>,
    out: &mut Vec<(String, u32, Span)>,
) -> Result<(), ModelError> {
    for entry in seg.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let espan = ctx.span(line, entry);
        let (loc, val) = entry
            .split_once('=')
            .ok_or_else(|| perr_span(line, espan, format!("malformed init entry {entry:?}")))?;
        let loc = loc
            .trim()
            .trim_start_matches('[')
            .trim_end_matches(']')
            .to_owned();
        if loc.contains(':') {
            return Err(perr_span(
                line,
                espan,
                "register initialization is not supported",
            ));
        }
        let val: u32 = val
            .trim()
            .parse()
            .map_err(|_| perr_span(line, espan, format!("malformed init value in {entry:?}")))?;
        out.push((loc, val, espan));
    }
    Ok(())
}

fn parse_instr(
    tb: &mut crate::test::ThreadBuilder<'_>,
    cell: &str,
    line: usize,
    ctx: Ctx<'_>,
) -> Result<(), ModelError> {
    let upper = cell.to_ascii_uppercase();
    if upper == "MFENCE" {
        tb.mfence();
        return Ok(());
    }
    if let Some(rest) = strip_mnemonic(&upper, cell, "MOV") {
        let (dst, src) = rest.split_once(',').ok_or_else(|| {
            perr_span(
                line,
                ctx.span(line, cell),
                format!("malformed MOV {cell:?}"),
            )
        })?;
        let dst = dst.trim();
        let src = src.trim();
        return if dst.starts_with('[') {
            let loc = brackets(dst, line, ctx)?;
            let value = immediate(src, line, ctx)?;
            tb.store(&loc, value);
            Ok(())
        } else if src.starts_with('[') {
            let loc = brackets(src, line, ctx)?;
            tb.load(dst, &loc);
            Ok(())
        } else {
            Err(perr_span(
                line,
                ctx.span(line, cell),
                format!("unsupported MOV form {cell:?}"),
            ))
        };
    }
    if let Some(rest) = strip_mnemonic(&upper, cell, "XCHG") {
        // XCHG [loc],$v -> REG
        let (mem_part, reg) = rest.split_once("->").ok_or_else(|| {
            perr_span(
                line,
                ctx.span(line, cell),
                format!("malformed XCHG (expected '->') {cell:?}"),
            )
        })?;
        let (dst, val) = mem_part.split_once(',').ok_or_else(|| {
            perr_span(
                line,
                ctx.span(line, cell),
                format!("malformed XCHG {cell:?}"),
            )
        })?;
        let loc = brackets(dst.trim(), line, ctx)?;
        let value = immediate(val.trim(), line, ctx)?;
        tb.xchg(reg.trim(), &loc, value);
        return Ok(());
    }
    Err(perr_span(
        line,
        ctx.span(line, cell),
        format!("unknown instruction {cell:?}"),
    ))
}

/// If `upper` starts with the mnemonic, returns the remainder of the
/// original-case `cell` after it.
fn strip_mnemonic<'a>(upper: &str, cell: &'a str, mnemonic: &str) -> Option<&'a str> {
    if upper.starts_with(mnemonic)
        && cell[mnemonic.len()..].starts_with(|c: char| c.is_whitespace())
    {
        Some(cell[mnemonic.len()..].trim_start())
    } else {
        None
    }
}

fn brackets(s: &str, line: usize, ctx: Ctx<'_>) -> Result<String, ModelError> {
    if s.starts_with('[') && s.ends_with(']') && s.len() > 2 {
        Ok(s[1..s.len() - 1].trim().to_owned())
    } else {
        Err(perr_span(
            line,
            ctx.span(line, s),
            format!("expected bracketed location, found {s:?}"),
        ))
    }
}

fn immediate(s: &str, line: usize, ctx: Ctx<'_>) -> Result<u32, ModelError> {
    let digits = s.strip_prefix('$').unwrap_or(s);
    digits.parse().map_err(|_| {
        perr_span(
            line,
            ctx.span(line, s),
            format!("expected immediate, found {s:?}"),
        )
    })
}

fn parse_condition(
    builder: &mut TestBuilder,
    cond: &str,
    line: usize,
    ctx: Ctx<'_>,
    reg_spans: &mut Vec<Span>,
    mem_spans: &mut Vec<Span>,
) -> Result<(), ModelError> {
    let cond = cond.trim();
    let (quant, rest) = if let Some(r) = cond.strip_prefix("~exists") {
        (Quantifier::NotExists, r)
    } else if let Some(r) = cond.strip_prefix("exists") {
        (Quantifier::Exists, r)
    } else {
        return Err(perr_span(
            line,
            ctx.span(line, cond),
            format!("unsupported condition quantifier in {cond:?}"),
        ));
    };
    builder.quantifier(quant);
    let body = rest.trim();
    let body = body
        .strip_prefix('(')
        .and_then(|b| b.strip_suffix(')'))
        .ok_or_else(|| {
            perr_span(
                line,
                ctx.span(line, cond),
                "condition body must be parenthesized",
            )
        })?;
    for atom in body.split("/\\") {
        let atom = atom.trim();
        if atom.is_empty() {
            continue;
        }
        let aspan = ctx.span(line, atom);
        let (lhs, rhs) = atom
            .split_once('=')
            .ok_or_else(|| perr_span(line, aspan, format!("malformed condition atom {atom:?}")))?;
        let lhs = lhs.trim();
        let value: u32 = rhs.trim().parse().map_err(|_| {
            perr_span(
                line,
                aspan,
                format!("malformed condition value in {atom:?}"),
            )
        })?;
        if lhs.starts_with('[') {
            let loc = brackets(lhs, line, ctx)?;
            builder.mem_cond(loc, value);
            mem_spans.push(aspan);
        } else {
            let (t, reg) = lhs.split_once(':').ok_or_else(|| {
                perr_span(line, aspan, format!("malformed register atom {atom:?}"))
            })?;
            let t = t.trim().trim_start_matches(['P', 'p']);
            let thread: usize = t.parse().map_err(|_| {
                perr_span(line, aspan, format!("malformed thread index in {atom:?}"))
            })?;
            builder.reg_cond(thread, reg.trim(), value);
            reg_spans.push(aspan);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LocId, RegId, ThreadId};
    use crate::instr::Instr;

    const SB: &str = r#"
X86 sb
"store buffering"
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EAX,[x] ;
exists (0:EAX=0 /\ 1:EAX=0)
"#;

    #[test]
    fn parses_sb() {
        let t = parse(SB).unwrap();
        assert_eq!(t.name(), "sb");
        assert_eq!(t.doc(), "store buffering");
        assert_eq!(t.thread_count(), 2);
        assert_eq!(
            t.thread(ThreadId(0)),
            &[
                Instr::Store {
                    loc: LocId(0),
                    value: 1
                },
                Instr::Load {
                    reg: RegId(0),
                    loc: LocId(1)
                }
            ]
        );
        assert_eq!(t.target().atoms().len(), 2);
        assert_eq!(t.target_outcome().unwrap().label(), "00");
    }

    #[test]
    fn spans_identify_instructions_and_atoms() {
        let (t, map) = parse_with_spans(SB).unwrap();
        // Every instruction has a span whose slice re-parses to itself.
        assert_eq!(map.instrs.len(), t.thread_count());
        for (tid, spans) in map.instrs.iter().enumerate() {
            assert_eq!(spans.len(), t.threads()[tid].len(), "thread {tid}");
            for s in spans {
                let text = s.slice(SB).unwrap();
                assert!(!text.is_empty());
                assert!(
                    text.starts_with("MOV"),
                    "instr span slices to {text:?} at {s}"
                );
            }
        }
        assert_eq!(map.instr(0, 0).unwrap().slice(SB), Some("MOV [x],$1"));
        assert_eq!(map.instr(1, 1).unwrap().slice(SB), Some("MOV EAX,[x]"));
        // Condition atoms, in Condition::atoms order.
        assert_eq!(map.cond_atoms.len(), t.target().atoms().len());
        assert_eq!(map.cond_atom(0).unwrap().slice(SB), Some("0:EAX=0"));
        assert_eq!(map.cond_atom(1).unwrap().slice(SB), Some("1:EAX=0"));
        assert_eq!(
            map.condition().slice(SB),
            Some("exists (0:EAX=0 /\\ 1:EAX=0)")
        );
        // Init entries and name.
        assert_eq!(map.init_entry("x").unwrap().slice(SB), Some("x=0"));
        assert_eq!(map.init_entry("y").unwrap().slice(SB), Some("y=0"));
        assert_eq!(map.name.slice(SB), Some("sb"));
        // Line numbers are one-based over the raw text (leading blank line).
        assert_eq!(map.name.line, 2);
        assert_eq!(map.instr(0, 0).unwrap().line, 6);
        assert_eq!(map.condition().line, 8);
    }

    #[test]
    fn mem_atoms_span_after_reg_atoms_in_atom_order() {
        let src = "X86 t\n{ x=0; }\n P0         | P1          ;\n MOV [x],$1 | MOV EAX,[x] ;\nexists ([x]=1 /\\ 1:EAX=1)";
        let (t, map) = parse_with_spans(src).unwrap();
        // atoms(): reg atoms first (1:EAX=1), then mem atoms ([x]=1).
        let atoms = t.target().atoms();
        assert!(matches!(atoms[0], crate::cond::CondAtom::RegEq { .. }));
        assert!(matches!(atoms[1], crate::cond::CondAtom::MemEq { .. }));
        assert_eq!(map.cond_atom(0).unwrap().slice(src), Some("1:EAX=1"));
        assert_eq!(map.cond_atom(1).unwrap().slice(src), Some("[x]=1"));
    }

    #[test]
    fn parse_errors_carry_token_spans() {
        let src = "X86 t\n{ x=0; }\n P0   ;\n FROB ;\nexists (0:EAX=0)";
        let err = parse(src).unwrap_err();
        let ModelError::Parse {
            line,
            span: Some(span),
            ..
        } = err
        else {
            panic!("expected a spanned parse error, got {err:?}");
        };
        assert_eq!(line, 4);
        assert_eq!(span.slice(src), Some("FROB"));
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn parses_mfence_and_three_threads() {
        let src = r#"
X86 podwr001
{ x=0; y=0; z=0; }
 P0          | P1          | P2          ;
 MOV [x],$1  | MOV [y],$1  | MOV [z],$1  ;
 MFENCE      |             |             ;
 MOV EAX,[y] | MOV EAX,[z] | MOV EAX,[x] ;
exists (0:EAX=0 /\ 1:EAX=0 /\ 2:EAX=0)
"#;
        let t = parse(src).unwrap();
        assert_eq!(t.thread_count(), 3);
        assert_eq!(t.thread(ThreadId(0)).len(), 3);
        assert_eq!(t.thread(ThreadId(1)).len(), 2); // blank cell skipped
        assert_eq!(t.thread(ThreadId(0))[1], Instr::Mfence);
    }

    #[test]
    fn parses_xchg_extension() {
        let src = r#"
X86 amd10ish
{ x=0; }
 P0                  | P1          ;
 XCHG [x],$1 -> EAX  | MOV EBX,[x] ;
exists (1:EBX=1 /\ 0:EAX=0)
"#;
        let t = parse(src).unwrap();
        assert_eq!(
            t.thread(ThreadId(0))[0],
            Instr::Xchg {
                reg: RegId(0),
                loc: LocId(0),
                value: 1
            }
        );
    }

    #[test]
    fn parses_not_exists_and_mem_atom() {
        let src = r#"
X86 co
{ x=0; }
 P0         | P1         ;
 MOV [x],$1 | MOV [x],$2 ;
~exists ([x]=1)
"#;
        let t = parse(src).unwrap();
        assert_eq!(t.target().quantifier(), Quantifier::NotExists);
        assert!(t.target().inspects_memory());
    }

    #[test]
    fn parses_nonzero_init() {
        let src = r#"
X86 iv
{ x=5; }
 P0          ;
 MOV EAX,[x] ;
exists (0:EAX=5)
"#;
        let t = parse(src).unwrap();
        assert_eq!(t.init(LocId(0)), 5);
    }

    #[test]
    fn rejects_wrong_arch() {
        let src = "PPC t\n{ }\n P0 ;\n MOV EAX,[x] ;\nexists (0:EAX=0)";
        assert!(matches!(parse(src), Err(ModelError::Parse { .. })));
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        let bad_rows = r#"
X86 t
{ x=0; }
 P0          | P1          ;
 MOV [x],$1  ;
exists (0:EAX=0)
"#;
        let err = parse(bad_rows).unwrap_err();
        assert!(err.to_string().contains("columns"), "{err}");

        let bad_thread_header = r#"
X86 t
{ x=0; }
 P1          ;
 MOV [x],$1  ;
exists (0:EAX=0)
"#;
        assert!(parse(bad_thread_header).is_err());
    }

    #[test]
    fn rejects_unknown_instruction_and_register_init() {
        let src = r#"
X86 t
{ x=0; }
 P0        ;
 NOP       ;
exists (0:EAX=0)
"#;
        assert!(parse(src)
            .unwrap_err()
            .to_string()
            .contains("unknown instruction"));

        let src2 = r#"
X86 t
{ 0:EAX=1; }
 P0          ;
 MOV EAX,[x] ;
exists (0:EAX=0)
"#;
        assert!(parse(src2)
            .unwrap_err()
            .to_string()
            .contains("register initialization"));
    }

    #[test]
    fn rejects_missing_condition() {
        let src = "X86 t\n{ x=0; }\n P0 ;\n MOV EAX,[x] ;\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn multiline_init_block() {
        let src = "X86 t\n{ x=0;\n y=0; }\n P0 | P1 ;\n MOV EAX,[x] | MOV EAX,[y] ;\nexists (0:EAX=0 /\\ 1:EAX=0)";
        let (t, map) = parse_with_spans(src).unwrap();
        assert_eq!(t.thread_count(), 2);
        // Entry spans point at their own lines.
        assert_eq!(map.init_entry("x").unwrap().line, 2);
        assert_eq!(map.init_entry("y").unwrap().line, 3);
        assert_eq!(map.init_entry("y").unwrap().slice(src), Some("y=0"));
    }

    #[test]
    fn condition_after_init_on_same_line_is_rejected_gracefully() {
        // Condition on the init line means no program table.
        let src = "X86 t\n{ x=0; } exists (0:EAX=0)\n";
        assert!(parse(src).is_err());
    }
}
