//! The non-convertible complement of the 88-test x86-TSO suite.
//!
//! These 54 tests have conditions that inspect **final shared memory**
//! (`[x] = v` atoms), which perpetual litmus tests cannot express: shared
//! locations are mutated continuously until the whole run ends (paper §V-C).
//! They are exactly the tests PerpLE's Converter must *reject* and which the
//! overall-impact experiment (§VII-G) keeps running under the litmus7
//! baseline.
//!
//! The families mirror the diy-generated coherence/write-serialization
//! shapes (`2+2w`, `co-2w`, `S`, `R`, ...). Within each family, variants
//! differ in fence (or locked-instruction) placement, as in the original
//! suite.

use crate::test::{LitmusTest, TestBuilder};

/// Fence-placement mask for two-site variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FenceMask {
    None,
    First,
    Second,
    Both,
}

const MASKS: [FenceMask; 4] = [
    FenceMask::None,
    FenceMask::First,
    FenceMask::Second,
    FenceMask::Both,
];

impl FenceMask {
    fn first(self) -> bool {
        matches!(self, FenceMask::First | FenceMask::Both)
    }
    fn second(self) -> bool {
        matches!(self, FenceMask::Second | FenceMask::Both)
    }
    fn suffix(self) -> &'static str {
        match self {
            FenceMask::None => "",
            FenceMask::First => "+mfence+po",
            FenceMask::Second => "+po+mfence",
            FenceMask::Both => "+mfences",
        }
    }
}

fn build(b: &TestBuilder) -> LitmusTest {
    b.build().expect("generated suite test must be well-formed")
}

/// `2+2w` family: two threads storing to two locations in opposite order;
/// the condition asks whether both first stores survive.
fn family_2p2w() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("2+2w{}", m.suffix()));
            b.doc("write serialization of two cross-ordered store pairs");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.store("y", 2);
            }
            {
                let mut t = b.thread();
                t.store("y", 1);
                if m.second() {
                    t.mfence();
                }
                t.store("x", 2);
            }
            b.mem_cond("x", 1).mem_cond("y", 1);
            build(&b)
        })
        .collect()
}

/// `co-2w` family: two writers to one location; variants replace plain
/// stores by locked exchanges.
fn family_co2w() -> Vec<LitmusTest> {
    let variants: [(&str, bool, bool); 4] = [
        ("co-2w", false, false),
        ("co-2w+xchg+po", true, false),
        ("co-2w+po+xchg", false, true),
        ("co-2w+xchgs", true, true),
    ];
    variants
        .iter()
        .map(|&(name, x0, x1)| {
            let mut b = TestBuilder::new(name);
            b.doc("final value of a location with two writers");
            {
                let mut t = b.thread();
                if x0 {
                    t.xchg("EAX", "x", 1);
                } else {
                    t.store("x", 1);
                }
            }
            {
                let mut t = b.thread();
                if x1 {
                    t.xchg("EAX", "x", 2);
                } else {
                    t.store("x", 2);
                }
            }
            b.mem_cond("x", 1);
            build(&b)
        })
        .collect()
}

/// `S` family: store/store vs load/store shape with a final-memory atom.
fn family_s() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("s{}", m.suffix()));
            b.doc("S shape: observed flag with surviving first store");
            {
                let mut t = b.thread();
                t.store("x", 2);
                if m.first() {
                    t.mfence();
                }
                t.store("y", 1);
            }
            {
                let mut t = b.thread();
                t.load("EAX", "y");
                if m.second() {
                    t.mfence();
                }
                t.store("x", 1);
            }
            b.reg_cond(1, "EAX", 1).mem_cond("x", 2);
            build(&b)
        })
        .collect()
}

/// `R` family: store/store vs store/load shape with a final-memory atom.
fn family_r() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("r{}", m.suffix()));
            b.doc("R shape: surviving second store with a stale read");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.store("y", 1);
            }
            {
                let mut t = b.thread();
                t.store("y", 2);
                if m.second() {
                    t.mfence();
                }
                t.load("EAX", "x");
            }
            b.reg_cond(1, "EAX", 0).mem_cond("y", 2);
            build(&b)
        })
        .collect()
}

/// `co-mp` family: one thread writes a location twice; a reader observes
/// both writes against the final value.
fn family_comp() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("co-mp{}", m.suffix()));
            b.doc("coherence of a twice-written location against its final value");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.store("x", 2);
            }
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if m.second() {
                    t.mfence();
                }
                t.load("EBX", "x");
            }
            b.reg_cond(1, "EAX", 2)
                .reg_cond(1, "EBX", 1)
                .mem_cond("x", 2);
            build(&b)
        })
        .collect()
}

/// `co-sb` family: the sb shape augmented with final-memory atoms.
fn family_cosb() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("co-sb{}", m.suffix()));
            b.doc("sb with final-memory observation");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.load("EAX", "y");
            }
            {
                let mut t = b.thread();
                t.store("y", 1);
                if m.second() {
                    t.mfence();
                }
                t.load("EAX", "x");
            }
            b.reg_cond(0, "EAX", 0)
                .reg_cond(1, "EAX", 0)
                .mem_cond("x", 1)
                .mem_cond("y", 1);
            build(&b)
        })
        .collect()
}

/// `3w` family: three writers to one location; variants ask for each
/// surviving value plus a fully locked variant.
fn family_3w() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    for final_v in 1..=3u32 {
        let mut b = TestBuilder::new(format!("3w+final{final_v}"));
        b.doc("final value among three independent writers");
        b.thread().store("x", 1);
        b.thread().store("x", 2);
        b.thread().store("x", 3);
        b.mem_cond("x", final_v);
        out.push(build(&b));
    }
    let mut b = TestBuilder::new("3w+xchgs");
    b.doc("final value among three locked writers");
    b.thread().xchg("EAX", "x", 1);
    b.thread().xchg("EAX", "x", 2);
    b.thread().xchg("EAX", "x", 3);
    b.mem_cond("x", 1);
    out.push(build(&b));
    out
}

/// `mp+final` family: message passing with a final-memory atom.
fn family_mpfinal() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("mp+final{}", m.suffix()));
            b.doc("message passing checked against final memory");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.store("y", 1);
            }
            {
                let mut t = b.thread();
                t.load("EAX", "y");
                if m.second() {
                    t.mfence();
                }
                t.load("EBX", "x");
            }
            b.reg_cond(1, "EAX", 1)
                .reg_cond(1, "EBX", 0)
                .mem_cond("y", 1);
            build(&b)
        })
        .collect()
}

/// `3+3w` family: a three-thread ring of cross-ordered store pairs.
fn family_w3chain() -> Vec<LitmusTest> {
    let variants: [(&str, [bool; 3]); 4] = [
        ("3+3w", [false, false, false]),
        ("3+3w+mfence+po+po", [true, false, false]),
        ("3+3w+mfence+mfence+po", [true, true, false]),
        ("3+3w+mfences", [true, true, true]),
    ];
    variants
        .iter()
        .map(|&(name, fences)| {
            let mut b = TestBuilder::new(name);
            b.doc("three-thread ring of cross-ordered store pairs");
            let ring = [("x", "y"), ("y", "z"), ("z", "x")];
            for (i, &(a, c)) in ring.iter().enumerate() {
                let mut t = b.thread();
                t.store(a, 1);
                if fences[i] {
                    t.mfence();
                }
                t.store(c, 2);
            }
            b.mem_cond("x", 1).mem_cond("y", 1).mem_cond("z", 1);
            build(&b)
        })
        .collect()
}

/// `co-lb` family: load-then-store threads over one location, observing each
/// other's stores, plus a final-memory atom.
fn family_colb() -> Vec<LitmusTest> {
    let finals = [1u32, 2];
    let mut out = Vec::new();
    for &f in &finals {
        for (suffix, fenced) in [("", false), ("+mfences", true)] {
            let mut b = TestBuilder::new(format!("co-lb+final{f}{suffix}"));
            b.doc("cross-observed load-store pairs over one location");
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if fenced {
                    t.mfence();
                }
                t.store("x", 1);
            }
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if fenced {
                    t.mfence();
                }
                t.store("x", 2);
            }
            b.reg_cond(0, "EAX", 2)
                .reg_cond(1, "EAX", 1)
                .mem_cond("x", f);
            out.push(build(&b));
        }
    }
    out
}

/// `co-rr` family: single writer, reader observing new-then-stale values,
/// against final memory.
fn family_corr() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("co-rr{}", m.suffix()));
            b.doc("stale re-read of a once-written location");
            {
                let mut t = b.thread();
                if m.first() {
                    t.mfence();
                }
                t.store("x", 1);
            }
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if m.second() {
                    t.mfence();
                }
                t.load("EBX", "x");
            }
            b.reg_cond(1, "EAX", 1)
                .reg_cond(1, "EBX", 0)
                .mem_cond("x", 1);
            build(&b)
        })
        .collect()
}

/// `sb+final` family: sb conditioned on one load plus final memory.
fn family_sbfinal() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("sb+final{}", m.suffix()));
            b.doc("one-sided sb observation with final memory");
            {
                let mut t = b.thread();
                t.store("x", 1);
                if m.first() {
                    t.mfence();
                }
                t.load("EAX", "y");
            }
            {
                let mut t = b.thread();
                t.store("y", 1);
                if m.second() {
                    t.mfence();
                }
                t.load("EAX", "x");
            }
            b.reg_cond(0, "EAX", 0).mem_cond("x", 1).mem_cond("y", 1);
            build(&b)
        })
        .collect()
}

/// `iriw+final` family: iriw with a final-memory atom and fence variants on
/// the readers.
fn family_iriwfinal() -> Vec<LitmusTest> {
    MASKS
        .iter()
        .map(|&m| {
            let mut b = TestBuilder::new(format!("iriw+final{}", m.suffix()));
            b.doc("iriw observed against final memory");
            b.thread().store("x", 1);
            b.thread().store("y", 1);
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if m.first() {
                    t.mfence();
                }
                t.load("EBX", "y");
            }
            {
                let mut t = b.thread();
                t.load("EAX", "y");
                if m.second() {
                    t.mfence();
                }
                t.load("EBX", "x");
            }
            b.reg_cond(2, "EAX", 1)
                .reg_cond(2, "EBX", 0)
                .reg_cond(3, "EAX", 1)
                .reg_cond(3, "EBX", 0)
                .mem_cond("x", 1);
            build(&b)
        })
        .collect()
}

/// `wrc+final` family: write-read causality against final memory.
fn family_wrcfinal() -> Vec<LitmusTest> {
    [("wrc+final", false), ("wrc+final+mfence", true)]
        .iter()
        .map(|&(name, fenced)| {
            let mut b = TestBuilder::new(name);
            b.doc("write-read causality observed against final memory");
            b.thread().store("x", 1);
            {
                let mut t = b.thread();
                t.load("EAX", "x");
                if fenced {
                    t.mfence();
                }
                t.store("y", 1);
            }
            b.thread().load("EAX", "y").load("EBX", "x");
            b.reg_cond(1, "EAX", 1)
                .reg_cond(2, "EAX", 1)
                .reg_cond(2, "EBX", 0)
                .mem_cond("y", 1);
            build(&b)
        })
        .collect()
}

/// All 54 non-convertible tests of the full suite.
pub fn non_convertible() -> Vec<LitmusTest> {
    let mut out = Vec::new();
    out.extend(family_2p2w());
    out.extend(family_co2w());
    out.extend(family_s());
    out.extend(family_r());
    out.extend(family_comp());
    out.extend(family_cosb());
    out.extend(family_3w());
    out.extend(family_mpfinal());
    out.extend(family_w3chain());
    out.extend(family_colb());
    out.extend(family_corr());
    out.extend(family_sbfinal());
    out.extend(family_iriwfinal());
    out.extend(family_wrcfinal());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_four_tests_all_non_convertible() {
        let tests = non_convertible();
        assert_eq!(tests.len(), 54);
        for t in &tests {
            assert!(
                t.target().inspects_memory(),
                "{} should be non-convertible",
                t.name()
            );
            assert!(t.target_outcome().is_none(), "{}", t.name());
        }
    }

    #[test]
    fn names_unique() {
        let tests = non_convertible();
        let mut names: Vec<&str> = tests.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn fence_variants_differ_structurally() {
        let f = family_2p2w();
        assert_eq!(f.len(), 4);
        assert_ne!(f[0].threads(), f[3].threads());
        assert_eq!(f[0].thread_count(), 2);
    }

    #[test]
    fn all_tests_build_and_print() {
        for t in non_convertible() {
            let text = crate::printer::print(&t);
            assert!(text.contains(t.name()), "{}", t.name());
        }
    }
}
