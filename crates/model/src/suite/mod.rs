//! The perpetual litmus suite (paper Table II) and the surrounding 88-test
//! x86-TSO suite.
//!
//! The 34 tests whose target outcome is register-only (and hence convertible
//! to perpetual form, paper §V-C) are reconstructed here to match every
//! property Table II reports: test name, thread count `T`, load-performing
//! thread count `T_L`, and whether the target outcome is allowed or
//! forbidden under x86-TSO. Where the paper does not give a test's
//! instruction stream (the `safe0xx`/`rfi0xx` families come from Sewell et
//! al.'s supplementary material), the programs are reconstructed to match
//! those reported properties; `perple-enumerate` verifies the
//! allowed/forbidden split mechanically (see DESIGN.md, substitutions).
//!
//! The remaining 54 tests of the full 88-test suite are **non-convertible**:
//! their conditions inspect final shared memory (coherence/write-serialization
//! families such as `co-2w`, `2+2w`, `S`, `R`), generated in the `extra` submodule.

mod allowed;
mod extra;
mod forbidden;

pub use allowed::*;
pub use extra::non_convertible;
pub use forbidden::*;

use crate::test::LitmusTest;

/// One row of Table II: name, `T`, `T_L`, and whether x86-TSO allows the
/// target outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableIiEntry {
    /// Test name as printed in the paper.
    pub name: &'static str,
    /// Total thread count `T`.
    pub threads: usize,
    /// Load-performing thread count `T_L`.
    pub load_threads: usize,
    /// True if x86-TSO allows the target outcome.
    pub allowed: bool,
}

/// Table II of the paper: the 34-test perpetual litmus suite for x86-TSO.
pub const TABLE_II: &[TableIiEntry] = &[
    // Target outcome allowed by x86-TSO.
    TableIiEntry {
        name: "amd3",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "iwp23b",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "iwp24",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "n1",
        threads: 3,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "podwr000",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "podwr001",
        threads: 3,
        load_threads: 3,
        allowed: true,
    },
    TableIiEntry {
        name: "rfi009",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "rfi013",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "rfi015",
        threads: 3,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "rfi017",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "rwc-unfenced",
        threads: 3,
        load_threads: 2,
        allowed: true,
    },
    TableIiEntry {
        name: "sb",
        threads: 2,
        load_threads: 2,
        allowed: true,
    },
    // Target outcome forbidden by x86-TSO.
    TableIiEntry {
        name: "amd10",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "amd5",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "amd5+staleld",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "co-iriw",
        threads: 4,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "iriw",
        threads: 4,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "lb",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "mp",
        threads: 2,
        load_threads: 1,
        allowed: false,
    },
    TableIiEntry {
        name: "mp+staleld",
        threads: 2,
        load_threads: 1,
        allowed: false,
    },
    TableIiEntry {
        name: "mp+fences",
        threads: 2,
        load_threads: 1,
        allowed: false,
    },
    TableIiEntry {
        name: "n4",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "n5",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "rwc-fenced",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe006",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe007",
        threads: 3,
        load_threads: 3,
        allowed: false,
    },
    TableIiEntry {
        name: "safe012",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe018",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe022",
        threads: 2,
        load_threads: 1,
        allowed: false,
    },
    TableIiEntry {
        name: "safe024",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe027",
        threads: 4,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe028",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "safe036",
        threads: 2,
        load_threads: 2,
        allowed: false,
    },
    TableIiEntry {
        name: "wrc",
        threads: 3,
        load_threads: 2,
        allowed: false,
    },
];

/// The 34 convertible tests of Table II, in table order.
pub fn convertible() -> Vec<LitmusTest> {
    vec![
        amd3(),
        iwp23b(),
        iwp24(),
        n1(),
        podwr000(),
        podwr001(),
        rfi009(),
        rfi013(),
        rfi015(),
        rfi017(),
        rwc_unfenced(),
        sb(),
        amd10(),
        amd5(),
        amd5_staleld(),
        co_iriw(),
        iriw(),
        lb(),
        mp(),
        mp_staleld(),
        mp_fences(),
        n4(),
        n5(),
        rwc_fenced(),
        safe006(),
        safe007(),
        safe012(),
        safe018(),
        safe022(),
        safe024(),
        safe027(),
        safe028(),
        safe036(),
        wrc(),
    ]
}

/// The convertible tests whose target outcome x86-TSO allows (the group the
/// paper's detection-rate metrics average over).
pub fn allowed_targets() -> Vec<LitmusTest> {
    let allowed: Vec<&str> = TABLE_II
        .iter()
        .filter(|e| e.allowed)
        .map(|e| e.name)
        .collect();
    convertible()
        .into_iter()
        .filter(|t| allowed.contains(&t.name()))
        .collect()
}

/// The full 88-test x86-TSO suite: 34 convertible plus 54 non-convertible
/// tests (§VII-G).
pub fn full() -> Vec<LitmusTest> {
    let mut tests = convertible();
    tests.extend(non_convertible());
    tests
}

/// Looks up a test of the full suite by name.
pub fn by_name(name: &str) -> Option<LitmusTest> {
    full().into_iter().find(|t| t.name() == name)
}

/// Writes the full suite as individual `.litmus` files (litmus7 format)
/// into `dir`, creating it if needed. Returns the number of files written.
/// `/` in test names (none currently) would be rejected by the filesystem;
/// `+` is kept as-is.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_corpus(dir: &std::path::Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let tests = full();
    for t in &tests {
        let path = dir.join(format!("{}.litmus", t.name()));
        std::fs::write(path, crate::printer::print(t))?;
    }
    Ok(tests.len())
}

/// Loads every `.litmus` file in `dir` (sorted by file name). Files that
/// fail to parse are returned as errors with their paths.
///
/// # Errors
/// Returns the first filesystem or parse error encountered.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<LitmusTest>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    paths.sort();
    let mut tests = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let test = crate::parser::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        tests.push(test);
    }
    Ok(tests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_34_entries_12_allowed() {
        assert_eq!(TABLE_II.len(), 34);
        assert_eq!(TABLE_II.iter().filter(|e| e.allowed).count(), 12);
    }

    #[test]
    fn convertible_matches_table_ii_names_in_order() {
        let tests = convertible();
        assert_eq!(tests.len(), TABLE_II.len());
        for (t, e) in tests.iter().zip(TABLE_II) {
            assert_eq!(t.name(), e.name);
        }
    }

    #[test]
    fn thread_counts_match_table_ii() {
        for (t, e) in convertible().iter().zip(TABLE_II) {
            assert_eq!(t.thread_count(), e.threads, "{}: T", e.name);
            assert_eq!(t.load_thread_count(), e.load_threads, "{}: T_L", e.name);
        }
    }

    #[test]
    fn convertible_tests_have_register_only_conditions() {
        for t in convertible() {
            assert!(
                !t.target().inspects_memory(),
                "{} must be convertible",
                t.name()
            );
            assert!(t.target_outcome().is_some(), "{}", t.name());
        }
    }

    #[test]
    fn convertible_tests_have_unique_store_values_per_location() {
        // Required by the arithmetic-sequence conversion: each stored value
        // maps to a unique instruction.
        for t in convertible() {
            for loc_idx in 0..t.location_count() {
                let loc = crate::LocId(loc_idx as u8);
                for v in t.distinct_store_values(loc) {
                    assert!(
                        t.unique_store_of(loc, v).is_some(),
                        "{}: duplicate store of {v} to {}",
                        t.name(),
                        t.location_name(loc)
                    );
                }
            }
        }
    }

    #[test]
    fn full_suite_counts_88() {
        let tests = full();
        assert_eq!(tests.len(), 88);
        let nonconv = tests
            .iter()
            .filter(|t| t.target().inspects_memory())
            .count();
        assert_eq!(nonconv, 54);
    }

    #[test]
    fn names_are_unique_across_full_suite() {
        let tests = full();
        let mut names: Vec<&str> = tests.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate test names");
    }

    #[test]
    fn by_name_finds_every_test() {
        for t in full() {
            let found = by_name(t.name()).unwrap();
            assert_eq!(found, t);
        }
        assert!(by_name("no-such-test").is_none());
    }

    #[test]
    fn allowed_targets_returns_the_12_allowed_tests() {
        let ts = allowed_targets();
        assert_eq!(ts.len(), 12);
        assert!(ts.iter().any(|t| t.name() == "sb"));
        assert!(ts.iter().all(|t| t.name() != "mp"));
    }

    #[test]
    fn corpus_roundtrips_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("perple-corpus-test-{}", std::process::id()));
        let written = write_corpus(&dir).unwrap();
        assert_eq!(written, 88);
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 88);
        // Same set of tests, independent of file ordering.
        let mut original = full();
        original.sort_by(|a, b| a.name().cmp(b.name()));
        let mut back = loaded;
        back.sort_by(|a, b| a.name().cmp(b.name()));
        assert_eq!(original, back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_corpus_reports_missing_dir_and_bad_files() {
        assert!(load_corpus(std::path::Path::new("/nonexistent-xyz")).is_err());
        let dir = std::env::temp_dir().join(format!("perple-corpus-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.litmus"), "not a litmus test").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.contains("broken.litmus"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_suite_test_roundtrips_through_text() {
        for t in full() {
            let text = crate::printer::print(&t);
            let back =
                crate::parser::parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", t.name()));
            assert_eq!(t, back, "{}", t.name());
        }
    }

    #[test]
    fn target_outcomes_of_allowed_tests_are_sc_inconsistent() {
        // Target outcomes are the distinguishing outcomes: they require store
        // buffering, so no completion of the condition may be SC-consistent.
        for t in allowed_targets() {
            let completions = t.outcomes_matching_condition();
            assert!(!completions.is_empty(), "{}", t.name());
            for o in completions {
                let sc = crate::hb::is_sc_consistent(&t, &o).unwrap();
                assert!(!sc, "{}: completion {o} is SC-consistent", t.name());
            }
        }
    }
}
