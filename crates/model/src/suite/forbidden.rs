//! Convertible tests whose target outcome is **forbidden** by x86-TSO
//! (lower group of Table II). Observing any of these targets on an x86
//! implementation — or in the TSO simulator — indicates a bug; the paper
//! uses them to show PerpLE produces no false positives.

use crate::test::{LitmusTest, TestBuilder};

fn build(b: &TestBuilder) -> LitmusTest {
    b.build().expect("suite test must be well-formed")
}

/// `lb` — load buffering (Figure 2 of the paper): both loads reading the
/// other thread's store needs load→store reordering, which TSO forbids.
pub fn lb() -> LitmusTest {
    let mut b = TestBuilder::new("lb");
    b.doc("load buffering: forbidden, TSO keeps load->store order");
    b.thread().load("EAX", "y").store("x", 1);
    b.thread().load("EAX", "x").store("y", 1);
    b.reg_cond(0, "EAX", 1).reg_cond(1, "EAX", 1);
    build(&b)
}

/// `mp` — message passing: TSO keeps stores in order and loads in order, so
/// observing the flag but not the data is forbidden.
pub fn mp() -> LitmusTest {
    let mut b = TestBuilder::new("mp");
    b.doc("message passing: flag observed without data is forbidden");
    b.thread().store("x", 1).store("y", 1);
    b.thread().load("EAX", "y").load("EBX", "x");
    b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `mp+fences` — message passing with both fences; forbidden a fortiori.
pub fn mp_fences() -> LitmusTest {
    let mut b = TestBuilder::new("mp+fences");
    b.doc("message passing with mfence on both sides");
    b.thread().store("x", 1).mfence().store("y", 1);
    b.thread().load("EAX", "y").mfence().load("EBX", "x");
    b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `mp+staleld` — message passing with a repeated data load: reading the
/// data and then its stale initial value violates coherence.
pub fn mp_staleld() -> LitmusTest {
    let mut b = TestBuilder::new("mp+staleld");
    b.doc("stale load after observing the data violates coherence");
    b.thread().store("x", 1).store("y", 1);
    b.thread()
        .load("EAX", "y")
        .load("EBX", "x")
        .load("ECX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 1)
        .reg_cond(1, "ECX", 0);
    build(&b)
}

/// `amd5` — sb with mfences (AMD manual example 5): the fences drain the
/// store buffers, so both loads reading 0 is forbidden.
pub fn amd5() -> LitmusTest {
    let mut b = TestBuilder::new("amd5");
    b.doc("fenced store buffering: mfence forbids the 0,0 outcome");
    b.thread().store("x", 1).mfence().load("EAX", "y");
    b.thread().store("y", 1).mfence().load("EAX", "x");
    b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
    build(&b)
}

/// `amd5+staleld` — fenced sb with a repeated cross load whose second read
/// goes stale; forbidden by coherence.
pub fn amd5_staleld() -> LitmusTest {
    let mut b = TestBuilder::new("amd5+staleld");
    b.doc("fenced sb with a stale second read of x");
    b.thread().store("x", 1).mfence().load("EAX", "y");
    b.thread()
        .store("y", 1)
        .mfence()
        .load("EAX", "x")
        .load("EBX", "x");
    b.reg_cond(0, "EAX", 0)
        .reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0);
    build(&b)
}

/// `amd10` — sb built from locked exchanges: XCHG drains the buffer, so the
/// 0,0 outcome is forbidden.
pub fn amd10() -> LitmusTest {
    let mut b = TestBuilder::new("amd10");
    b.doc("locked-exchange sb: XCHG acts as a fence");
    b.thread().xchg("EAX", "x", 1).load("EBX", "y");
    b.thread().xchg("EAX", "y", 1).load("EBX", "x");
    b.reg_cond(0, "EBX", 0).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `n4` — coherence test: one thread reading the other's value and then its
/// own older value contradicts every write serialization.
pub fn n4() -> LitmusTest {
    let mut b = TestBuilder::new("n4");
    b.doc("single-location coherence: 2 then 1 contradicts ws");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "x");
    b.thread().store("x", 2).load("EAX", "x");
    b.reg_cond(0, "EAX", 2)
        .reg_cond(0, "EBX", 1)
        .reg_cond(1, "EAX", 2);
    build(&b)
}

/// `n5` — single-location cross reads: both threads reading the *other*
/// thread's value requires contradictory write serializations.
pub fn n5() -> LitmusTest {
    let mut b = TestBuilder::new("n5");
    b.doc("both threads read the other's store: contradictory ws");
    b.thread().store("x", 1).load("EAX", "x");
    b.thread().store("x", 2).load("EAX", "x");
    b.reg_cond(0, "EAX", 2).reg_cond(1, "EAX", 1);
    build(&b)
}

/// `iriw` — independent reads of independent writes: the two readers
/// disagreeing on store order is forbidden by TSO's total store order.
pub fn iriw() -> LitmusTest {
    let mut b = TestBuilder::new("iriw");
    b.doc("readers disagree on the order of independent writes");
    b.thread().store("x", 1);
    b.thread().store("y", 1);
    b.thread().load("EAX", "x").load("EBX", "y");
    b.thread().load("EAX", "y").load("EBX", "x");
    b.reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0)
        .reg_cond(3, "EAX", 1)
        .reg_cond(3, "EBX", 0);
    build(&b)
}

/// `co-iriw` — coherence iriw: two readers disagreeing on the write
/// serialization of a single location.
pub fn co_iriw() -> LitmusTest {
    let mut b = TestBuilder::new("co-iriw");
    b.doc("readers disagree on the ws order of one location");
    b.thread().store("x", 1);
    b.thread().store("x", 2);
    b.thread().load("EAX", "x").load("EBX", "x");
    b.thread().load("EAX", "x").load("EBX", "x");
    b.reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 2)
        .reg_cond(3, "EAX", 2)
        .reg_cond(3, "EBX", 1);
    build(&b)
}

/// `wrc` — write-read causality: TSO's store atomicity forbids a third
/// thread missing a write whose effect it transitively observed.
pub fn wrc() -> LitmusTest {
    let mut b = TestBuilder::new("wrc");
    b.doc("write-read causality: transitive visibility is forbidden to fail");
    b.thread().store("x", 1);
    b.thread().load("EAX", "x").store("y", 1);
    b.thread().load("EAX", "y").load("EBX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0);
    build(&b)
}

/// `rwc-fenced` — read-write causality with a fence in the writer-reader
/// thread; the fence drains P2's buffer before its load, forbidding the
/// causality violation that `rwc-unfenced` allows.
pub fn rwc_fenced() -> LitmusTest {
    let mut b = TestBuilder::new("rwc-fenced");
    b.doc("read-write causality with mfence: forbidden");
    b.thread().store("x", 1);
    b.thread().load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).mfence().load("EAX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0)
        .reg_cond(2, "EAX", 0);
    build(&b)
}

/// `safe006` — fully fenced forwarding test (the "safe" companion of amd3):
/// fences force both stores visible before the cross loads.
pub fn safe006() -> LitmusTest {
    let mut b = TestBuilder::new("safe006");
    b.doc("fenced amd3: forwarding target becomes forbidden");
    b.thread()
        .store("x", 1)
        .mfence()
        .load("EAX", "x")
        .load("EBX", "y");
    b.thread()
        .store("y", 1)
        .mfence()
        .load("EAX", "y")
        .load("EBX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 0)
        .reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0);
    build(&b)
}

/// `safe007` — fenced three-thread PodWR cycle (safe companion of
/// podwr001).
pub fn safe007() -> LitmusTest {
    let mut b = TestBuilder::new("safe007");
    b.doc("fenced podwr001: all-zero target forbidden");
    b.thread().store("x", 1).mfence().load("EAX", "y");
    b.thread().store("y", 1).mfence().load("EAX", "z");
    b.thread().store("z", 1).mfence().load("EAX", "x");
    b.reg_cond(0, "EAX", 0)
        .reg_cond(1, "EAX", 0)
        .reg_cond(2, "EAX", 0);
    build(&b)
}

/// `safe012` — message passing observed by one reader with an auxiliary
/// second writer to the flag location.
pub fn safe012() -> LitmusTest {
    let mut b = TestBuilder::new("safe012");
    b.doc("mp core with an auxiliary writer thread (k_y = 2)");
    b.thread().store("x", 1).store("y", 1);
    b.thread().load("EAX", "y").load("EBX", "x");
    b.thread().store("y", 2).load("EAX", "x");
    b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `safe018` — fenced three-thread causality chain: x's store must be
/// visible once the chain through y and z is observed.
pub fn safe018() -> LitmusTest {
    let mut b = TestBuilder::new("safe018");
    b.doc("three-thread fenced causality chain");
    b.thread().store("x", 1).mfence().store("y", 1);
    b.thread().load("EAX", "y").mfence().store("z", 1);
    b.thread().load("EAX", "z").mfence().load("EBX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0);
    build(&b)
}

/// `safe022` — message passing with a fence between the producer's stores.
pub fn safe022() -> LitmusTest {
    let mut b = TestBuilder::new("safe022");
    b.doc("mp with producer-side fence only");
    b.thread().store("x", 1).mfence().store("y", 1);
    b.thread().load("EAX", "y").load("EBX", "x");
    b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `safe024` — write-read causality with a fence in the relaying thread.
pub fn safe024() -> LitmusTest {
    let mut b = TestBuilder::new("safe024");
    b.doc("wrc with a relay-side fence");
    b.thread().store("x", 1);
    b.thread().load("EAX", "x").mfence().store("y", 1);
    b.thread().load("EAX", "y").mfence().load("EBX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0);
    build(&b)
}

/// `safe027` — fenced iriw (safe companion of iriw).
pub fn safe027() -> LitmusTest {
    let mut b = TestBuilder::new("safe027");
    b.doc("iriw with fenced readers");
    b.thread().store("x", 1);
    b.thread().store("y", 1);
    b.thread().load("EAX", "x").mfence().load("EBX", "y");
    b.thread().load("EAX", "y").mfence().load("EBX", "x");
    b.reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0)
        .reg_cond(3, "EAX", 1)
        .reg_cond(3, "EBX", 0);
    build(&b)
}

/// `safe028` — fenced sb with an auxiliary store-only thread.
pub fn safe028() -> LitmusTest {
    let mut b = TestBuilder::new("safe028");
    b.doc("fenced sb plus an independent store-only thread");
    b.thread().store("x", 1).mfence().load("EAX", "y");
    b.thread().store("y", 1).mfence().load("EAX", "x");
    b.thread().store("z", 1);
    b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
    build(&b)
}

/// `safe036` — sb with locked exchanges on scratch locations acting as
/// fences (safe companion of amd10).
pub fn safe036() -> LitmusTest {
    let mut b = TestBuilder::new("safe036");
    b.doc("sb with XCHG-on-scratch fences");
    b.thread()
        .store("x", 1)
        .xchg("EAX", "s", 1)
        .load("EBX", "y");
    b.thread()
        .store("y", 1)
        .xchg("EAX", "t", 1)
        .load("EBX", "x");
    b.reg_cond(0, "EBX", 0).reg_cond(1, "EBX", 0);
    build(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::is_sc_consistent;

    fn all() -> Vec<LitmusTest> {
        vec![
            lb(),
            mp(),
            mp_fences(),
            mp_staleld(),
            amd5(),
            amd5_staleld(),
            amd10(),
            n4(),
            n5(),
            iriw(),
            co_iriw(),
            wrc(),
            rwc_fenced(),
            safe006(),
            safe007(),
            safe012(),
            safe018(),
            safe022(),
            safe024(),
            safe027(),
            safe028(),
            safe036(),
        ]
    }

    #[test]
    fn every_forbidden_test_builds() {
        for t in all() {
            assert!(t.target_outcome().is_some(), "{}", t.name());
            assert!(!t.doc().is_empty(), "{}", t.name());
        }
    }

    #[test]
    fn forbidden_targets_are_also_sc_inconsistent() {
        // TSO-forbidden implies SC-forbidden (SC ⊆ TSO), checked via the
        // acyclicity characterization on every completion of the condition.
        for t in all() {
            for o in t.outcomes_matching_condition() {
                assert!(
                    !is_sc_consistent(&t, &o).unwrap(),
                    "{}: {o} unexpectedly SC-consistent",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn coherence_tests_use_two_writers() {
        for t in [n4(), n5(), co_iriw()] {
            let x = t.location_id("x").unwrap();
            assert_eq!(t.distinct_store_values(x).len(), 2, "{}", t.name());
        }
    }
}
