//! Convertible tests whose target outcome is **allowed** by x86-TSO
//! (upper group of Table II). Each target outcome is observable only through
//! store buffering: it is TSO-reachable but SC-unreachable.

use crate::test::{LitmusTest, TestBuilder};

fn build(b: &TestBuilder) -> LitmusTest {
    b.build().expect("suite test must be well-formed")
}

/// `sb` — store buffering (Figure 2 of the paper). Both threads store then
/// load the other location; both loads reading 0 requires store buffers.
pub fn sb() -> LitmusTest {
    let mut b = TestBuilder::new("sb");
    b.doc("store buffering: both loads read 0 only with store buffers");
    b.thread().store("x", 1).load("EAX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
    build(&b)
}

/// `podwr000` — the two-thread program-order W→R cycle; structurally the sb
/// shape over locations `a`/`b` (diy cycle `PodWR Fre PodWR Fre`).
pub fn podwr000() -> LitmusTest {
    let mut b = TestBuilder::new("podwr000");
    b.doc("two-thread PodWR/Fre cycle (sb shape over a,b)");
    b.thread().store("a", 1).load("EAX", "b");
    b.thread().store("b", 1).load("EAX", "a");
    b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
    build(&b)
}

/// `podwr001` — the three-thread extension of sb (Figure 2 of the paper).
pub fn podwr001() -> LitmusTest {
    let mut b = TestBuilder::new("podwr001");
    b.doc("three-thread PodWR cycle: all three loads read 0");
    b.thread().store("x", 1).load("EAX", "y");
    b.thread().store("y", 1).load("EAX", "z");
    b.thread().store("z", 1).load("EAX", "x");
    b.reg_cond(0, "EAX", 0)
        .reg_cond(1, "EAX", 0)
        .reg_cond(2, "EAX", 0);
    build(&b)
}

/// `amd3` — intra-processor forwarding (AMD manual example): each thread
/// reads its own store early out of the store buffer while the cross-thread
/// load still sees 0.
pub fn amd3() -> LitmusTest {
    let mut b = TestBuilder::new("amd3");
    b.doc("store-buffer forwarding: own store visible early, other store late");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "y").load("EBX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 0)
        .reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0);
    build(&b)
}

/// `iwp23b` — one-sided forwarding variant of amd3 (Intel White Paper
/// example 2.3.b shape).
pub fn iwp23b() -> LitmusTest {
    let mut b = TestBuilder::new("iwp23b");
    b.doc("one-sided store-buffer forwarding");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 0)
        .reg_cond(1, "EAX", 0);
    build(&b)
}

/// `iwp24` — forwarding test conditioned only on the cross-thread loads
/// (Intel White Paper example 2.4 shape): the partial target is still
/// SC-unreachable under every completion.
pub fn iwp24() -> LitmusTest {
    let mut b = TestBuilder::new("iwp24");
    b.doc("forwarding test with partial condition on cross loads");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "y").load("EBX", "x");
    b.reg_cond(0, "EBX", 0).reg_cond(1, "EBX", 0);
    build(&b)
}

/// `n1` — three-thread forwarding test (x86-TSO paper shape): P0 forwards
/// its own store while P2 observes P1's store but not P0's.
pub fn n1() -> LitmusTest {
    let mut b = TestBuilder::new("n1");
    b.doc("three-thread forwarding: P0's store stays buffered past P2's reads");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1);
    b.thread().load("EAX", "y").load("EBX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 0)
        .reg_cond(2, "EAX", 1)
        .reg_cond(2, "EBX", 0);
    build(&b)
}

/// `rfi009` — read-from-internal with a repeated cross load: the second read
/// of `x` observes the drain of the other thread's buffer.
pub fn rfi009() -> LitmusTest {
    let mut b = TestBuilder::new("rfi009");
    b.doc("forwarding plus repeated cross load observing the drain");
    b.thread().store("x", 1).load("EAX", "x").load("EBX", "y");
    b.thread()
        .store("y", 1)
        .load("EAX", "y")
        .load("EBX", "x")
        .load("ECX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 0)
        .reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0)
        .reg_cond(1, "ECX", 1);
    build(&b)
}

/// `rfi013` — double read of the remote location: first read misses the
/// buffered remote store, second read sees it, while the local store is
/// still invisible remotely.
pub fn rfi013() -> LitmusTest {
    let mut b = TestBuilder::new("rfi013");
    b.doc("remote store drains between two reads while local store stays buffered");
    b.thread().store("x", 1).load("EAX", "y").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(0, "EAX", 0)
        .reg_cond(0, "EBX", 1)
        .reg_cond(1, "EAX", 0);
    build(&b)
}

/// `rfi015` — three-thread forwarding over a two-writer location: P1
/// forwards its own `x=2` while P2 sees neither store to `x`.
pub fn rfi015() -> LitmusTest {
    let mut b = TestBuilder::new("rfi015");
    b.doc("forwarding on a location with two writers (k_x = 2)");
    b.thread().store("x", 1);
    b.thread().store("x", 2).load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(1, "EAX", 2)
        .reg_cond(1, "EBX", 0)
        .reg_cond(2, "EAX", 0);
    build(&b)
}

/// `rfi017` — double forwarding reads before the cross load.
pub fn rfi017() -> LitmusTest {
    let mut b = TestBuilder::new("rfi017");
    b.doc("two forwarded reads of the own store, then the sb cross reads");
    b.thread()
        .store("x", 1)
        .load("EAX", "x")
        .load("EBX", "x")
        .load("ECX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(0, "EAX", 1)
        .reg_cond(0, "EBX", 1)
        .reg_cond(0, "ECX", 0)
        .reg_cond(1, "EAX", 0);
    build(&b)
}

/// `rwc-unfenced` — read-write causality without a fence: allowed on x86
/// because P2's store may sit in its buffer across its own load.
pub fn rwc_unfenced() -> LitmusTest {
    let mut b = TestBuilder::new("rwc-unfenced");
    b.doc("read-write causality, no fence: allowed under TSO");
    b.thread().store("x", 1);
    b.thread().load("EAX", "x").load("EBX", "y");
    b.thread().store("y", 1).load("EAX", "x");
    b.reg_cond(1, "EAX", 1)
        .reg_cond(1, "EBX", 0)
        .reg_cond(2, "EAX", 0);
    build(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_allowed_test_builds_with_declared_name() {
        let tests: Vec<LitmusTest> = vec![
            sb(),
            podwr000(),
            podwr001(),
            amd3(),
            iwp23b(),
            iwp24(),
            n1(),
            rfi009(),
            rfi013(),
            rfi015(),
            rfi017(),
            rwc_unfenced(),
        ];
        for t in &tests {
            assert!(!t.name().is_empty());
            assert!(!t.doc().is_empty(), "{} needs a doc string", t.name());
            assert!(t.target_outcome().is_some(), "{}", t.name());
        }
    }

    #[test]
    fn rfi015_has_two_writers_to_x() {
        let t = rfi015();
        let x = t.location_id("x").unwrap();
        assert_eq!(t.distinct_store_values(x).len(), 2);
    }

    #[test]
    fn sb_and_podwr000_are_isomorphic_but_distinct() {
        let a = sb();
        let b = podwr000();
        assert_ne!(a, b);
        assert_eq!(a.thread_count(), b.thread_count());
        assert_eq!(a.load_slots().len(), b.load_slots().len());
    }
}
