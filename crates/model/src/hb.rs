//! Happens-before graphs over litmus-test executions.
//!
//! Following Alglave's taxonomy (paper §II-B2), a happens-before graph has
//! memory operations as vertices and four edge kinds:
//!
//! * **po** — program order within a thread,
//! * **rf** — read-from: a load reads the value written by a store,
//! * **ws** — write serialization: per-location total order of stores,
//! * **fr** — from-read: a load read a value overwritten by a later store.
//!
//! Given a [`LitmusTest`] and a register-valuation [`Outcome`], [`derive()`]
//! reconstructs the possible happens-before graphs (one per feasible write
//! serialization). An outcome is SC-consistent iff at least one of those
//! graphs is acyclic — the classical acyclicity characterization of
//! sequential consistency, used here both to identify *target outcomes*
//! (outcomes impossible under SC) and to cross-validate the operational SC
//! enumerator of `perple-enumerate`.

use std::collections::BTreeMap;
use std::fmt;

use crate::cond::Outcome;
use crate::ids::{InstrRef, LocId, ThreadId};
use crate::test::LitmusTest;

/// Kind of a happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Program order.
    Po,
    /// Read-from.
    Rf,
    /// Write serialization.
    Ws,
    /// From-read.
    Fr,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Po => write!(f, "po"),
            EdgeKind::Rf => write!(f, "rf"),
            EdgeKind::Ws => write!(f, "ws"),
            EdgeKind::Fr => write!(f, "fr"),
        }
    }
}

/// A vertex of the happens-before graph: a real instruction or the implicit
/// initializing store of a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// The implicit store that set a location to its initial value.
    Init(LocId),
    /// A memory instruction of the test.
    Instr(InstrRef),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Init(l) => write!(f, "init({l})"),
            Node::Instr(i) => write!(f, "{i}"),
        }
    }
}

/// A directed happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub from: Node,
    /// Destination vertex.
    pub to: Node,
    /// Edge kind.
    pub kind: EdgeKind,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({})", self.from, self.to, self.kind)
    }
}

/// A happens-before graph for one execution (one write-serialization choice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbGraph {
    edges: Vec<Edge>,
}

impl HbGraph {
    /// All edges, in deterministic order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges of one kind.
    pub fn edges_of_kind(&self, kind: EdgeKind) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// True if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        // Collect nodes and adjacency.
        let mut nodes: Vec<Node> = Vec::new();
        for e in &self.edges {
            if !nodes.contains(&e.from) {
                nodes.push(e.from);
            }
            if !nodes.contains(&e.to) {
                nodes.push(e.to);
            }
        }
        let index = |n: Node| nodes.iter().position(|&m| m == n).expect("node indexed");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for e in &self.edges {
            adj[index(e.from)].push(index(e.to));
        }
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; nodes.len()];
        for start in 0..nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                if *next < adj[n].len() {
                    let m = adj[n][*next];
                    *next += 1;
                    match color[m] {
                        Color::Gray => return true,
                        Color::White => {
                            color[m] = Color::Gray;
                            stack.push((m, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[n] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }
}

/// Errors reconstructing a happens-before graph from an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbError {
    /// The outcome does not assign a value to a loaded register.
    MissingRegister {
        /// Thread of the unassigned register.
        thread: ThreadId,
        /// Register name index within the thread.
        reg: u8,
    },
    /// A register is loaded more than once: the outcome only determines the
    /// final load, so per-load read-from edges cannot be reconstructed.
    ReloadedRegister {
        /// Thread of the reloaded register.
        thread: ThreadId,
        /// Register name index within the thread.
        reg: u8,
    },
    /// A load observes a value no store (and no initialization) produces.
    NoWriter {
        /// Location loaded.
        loc: LocId,
        /// Unattributable value.
        value: u32,
    },
    /// Two stores write the same value to the same location, so read-from
    /// edges are ambiguous.
    AmbiguousWriter {
        /// Location with duplicate stored values.
        loc: LocId,
        /// The duplicated value.
        value: u32,
    },
}

impl fmt::Display for HbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbError::MissingRegister { thread, reg } => {
                write!(f, "outcome does not value register {}:r{}", thread.0, reg)
            }
            HbError::ReloadedRegister { thread, reg } => {
                write!(
                    f,
                    "register {}:r{} is loaded more than once; per-load edges are ambiguous",
                    thread.0, reg
                )
            }
            HbError::NoWriter { loc, value } => {
                write!(f, "no store writes value {value} to {loc}")
            }
            HbError::AmbiguousWriter { loc, value } => {
                write!(f, "multiple stores write value {value} to {loc}")
            }
        }
    }
}

impl std::error::Error for HbError {}

/// Derives every happens-before graph compatible with `outcome`: one graph
/// per feasible write serialization (per-location store permutations that
/// respect program order).
///
/// # Errors
///
/// Returns [`HbError`] if the outcome is incomplete or a load's value cannot
/// be attributed to a unique writer.
pub fn derive(test: &LitmusTest, outcome: &Outcome) -> Result<Vec<HbGraph>, HbError> {
    let rf = rf_writers(test, outcome)?;

    // Feasible ws orders per location: permutations of the store list that
    // respect per-thread program order (po to the same location implies ws
    // under both SC and TSO).
    let mut per_loc_orders: Vec<Vec<Vec<InstrRef>>> = Vec::new();
    for loc_idx in 0..test.location_count() {
        let loc = LocId(loc_idx as u8);
        let stores: Vec<InstrRef> = test.stores_to(loc).into_iter().map(|(r, _)| r).collect();
        per_loc_orders.push(po_respecting_permutations(&stores));
    }

    let mut graphs = Vec::new();
    let mut choice = vec![0usize; per_loc_orders.len()];
    loop {
        let ws_per_loc: Vec<&[InstrRef]> = per_loc_orders
            .iter()
            .zip(&choice)
            .map(|(orders, &c)| orders[c].as_slice())
            .collect();
        graphs.push(build_graph(test, &rf, &ws_per_loc));
        // odometer
        let mut pos = choice.len();
        loop {
            if pos == 0 {
                return Ok(graphs);
            }
            pos -= 1;
            choice[pos] += 1;
            if choice[pos] < per_loc_orders[pos].len() {
                break;
            }
            choice[pos] = 0;
        }
    }
}

/// True if the outcome is realizable under sequential consistency: some
/// write serialization yields an acyclic happens-before graph.
///
/// # Errors
///
/// Propagates [`HbError`] from [`derive()`].
pub fn is_sc_consistent(test: &LitmusTest, outcome: &Outcome) -> Result<bool, HbError> {
    Ok(derive(test, outcome)?.iter().any(|g| !g.has_cycle()))
}

/// For each load (canonical order), the node its value was read from.
fn rf_writers(test: &LitmusTest, outcome: &Outcome) -> Result<Vec<(InstrRef, Node)>, HbError> {
    let mut rf = Vec::new();
    let slots = test.load_slots();
    for slot in &slots {
        if slots
            .iter()
            .any(|s| s.thread == slot.thread && s.reg == slot.reg && s.slot != slot.slot)
        {
            return Err(HbError::ReloadedRegister {
                thread: slot.thread,
                reg: slot.reg.0,
            });
        }
    }
    for slot in test.load_slots() {
        let v = outcome
            .get(slot.thread, slot.reg)
            .ok_or(HbError::MissingRegister {
                thread: slot.thread,
                reg: slot.reg.0,
            })?;
        let load_ref = InstrRef {
            thread: slot.thread,
            index: slot.instr_index,
        };
        let writer = if v == test.init(slot.loc) {
            Node::Init(slot.loc)
        } else {
            let stores = test.stores_to(slot.loc);
            let mut matching = stores.iter().filter(|&&(_, sv)| sv == v);
            let first = matching.next().ok_or(HbError::NoWriter {
                loc: slot.loc,
                value: v,
            })?;
            if matching.next().is_some() {
                return Err(HbError::AmbiguousWriter {
                    loc: slot.loc,
                    value: v,
                });
            }
            Node::Instr(first.0)
        };
        rf.push((load_ref, writer));
    }
    Ok(rf)
}

/// All permutations of `stores` whose same-thread elements keep program
/// order. Returns one empty order when there are no stores.
fn po_respecting_permutations(stores: &[InstrRef]) -> Vec<Vec<InstrRef>> {
    fn rec(remaining: &mut Vec<InstrRef>, acc: &mut Vec<InstrRef>, out: &mut Vec<Vec<InstrRef>>) {
        if remaining.is_empty() {
            out.push(acc.clone());
            return;
        }
        for i in 0..remaining.len() {
            let cand = remaining[i];
            // cand may be placed next only if no remaining instr of the same
            // thread precedes it in program order.
            let blocked = remaining
                .iter()
                .any(|r| r.thread == cand.thread && r.index < cand.index);
            if blocked {
                continue;
            }
            let cand = remaining.remove(i);
            acc.push(cand);
            rec(remaining, acc, out);
            acc.pop();
            remaining.insert(i, cand);
        }
    }
    let mut out = Vec::new();
    rec(&mut stores.to_vec(), &mut Vec::new(), &mut out);
    out
}

fn build_graph(test: &LitmusTest, rf: &[(InstrRef, Node)], ws_per_loc: &[&[InstrRef]]) -> HbGraph {
    let mut edges = Vec::new();

    // po: consecutive memory operations per thread.
    for (t, instrs) in test.threads().iter().enumerate() {
        let mem_ops: Vec<InstrRef> = instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_memory_op())
            .map(|(i, _)| InstrRef::new(t as u8, i as u8))
            .collect();
        for pair in mem_ops.windows(2) {
            edges.push(Edge {
                from: Node::Instr(pair[0]),
                to: Node::Instr(pair[1]),
                kind: EdgeKind::Po,
            });
        }
    }

    // ws: Init -> first store -> ... in the chosen serialization.
    for (loc_idx, order) in ws_per_loc.iter().enumerate() {
        let loc = LocId(loc_idx as u8);
        let mut prev = Node::Init(loc);
        for &s in order.iter() {
            edges.push(Edge {
                from: prev,
                to: Node::Instr(s),
                kind: EdgeKind::Ws,
            });
            prev = Node::Instr(s);
        }
    }

    // rf and fr. For a load reading writer W at location loc: rf W -> load
    // (skipped for Init, which precedes everything anyway via ws), and
    // fr load -> S for every store S that is ws-after W.
    let ws_position = |loc: LocId, n: Node| -> Option<usize> {
        match n {
            Node::Init(_) => Some(0),
            Node::Instr(i) => ws_per_loc[loc.index()]
                .iter()
                .position(|&s| s == i)
                .map(|p| p + 1),
        }
    };
    // Map from load InstrRef to its location.
    let mut load_locs = BTreeMap::new();
    for slot in test.load_slots() {
        load_locs.insert(
            InstrRef {
                thread: slot.thread,
                index: slot.instr_index,
            },
            slot.loc,
        );
    }
    for &(load, writer) in rf {
        let loc = load_locs[&load];
        if let Node::Instr(_) = writer {
            edges.push(Edge {
                from: writer,
                to: Node::Instr(load),
                kind: EdgeKind::Rf,
            });
        }
        let wpos = ws_position(loc, writer).unwrap_or(0);
        for (i, &s) in ws_per_loc[loc.index()].iter().enumerate() {
            // Skip the self edge a locked RMW would produce: its load-part
            // reads the value its own store-part overwrites, but both parts
            // share one graph node, so the edge would be a spurious cycle.
            if i + 1 > wpos && s != load {
                edges.push(Edge {
                    from: Node::Instr(load),
                    to: Node::Instr(s),
                    kind: EdgeKind::Fr,
                });
            }
        }
    }

    edges.sort();
    edges.dedup();
    HbGraph { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Outcome;
    use crate::ids::RegId;
    use crate::test::TestBuilder;

    fn sb() -> LitmusTest {
        let mut b = TestBuilder::new("sb");
        b.thread().store("x", 1).load("EAX", "y");
        b.thread().store("y", 1).load("EAX", "x");
        b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
        b.build().unwrap()
    }

    fn outcome(vals: &[(u8, u8, u32)]) -> Outcome {
        vals.iter()
            .map(|&(t, r, v)| (ThreadId(t), RegId(r), v))
            .collect()
    }

    #[test]
    fn sb_target_outcome_is_sc_inconsistent() {
        // reg0=0 && reg1=0 is the canonical non-SC outcome of sb.
        let t = sb();
        let o = outcome(&[(0, 0, 0), (1, 0, 0)]);
        assert!(!is_sc_consistent(&t, &o).unwrap());
    }

    #[test]
    fn sb_other_outcomes_are_sc_consistent() {
        let t = sb();
        for vals in [
            [(0, 0, 0), (1, 0, 1)],
            [(0, 0, 1), (1, 0, 0)],
            [(0, 0, 1), (1, 0, 1)],
        ] {
            let o = outcome(&vals);
            assert!(is_sc_consistent(&t, &o).unwrap(), "{o}");
        }
    }

    #[test]
    fn sb_target_graph_matches_figure_6() {
        // Figure 6, outcome 0: po edges i00->i01 and i10->i11, fr edges
        // i01->i10 and i11->i00.
        let t = sb();
        let o = outcome(&[(0, 0, 0), (1, 0, 0)]);
        let graphs = derive(&t, &o).unwrap();
        assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        let fr: Vec<_> = g.edges_of_kind(EdgeKind::Fr).collect();
        assert_eq!(fr.len(), 2);
        assert!(fr.iter().any(|e| e.from == Node::Instr(InstrRef::new(0, 1))
            && e.to == Node::Instr(InstrRef::new(1, 0))));
        assert!(fr.iter().any(|e| e.from == Node::Instr(InstrRef::new(1, 1))
            && e.to == Node::Instr(InstrRef::new(0, 0))));
        assert_eq!(g.edges_of_kind(EdgeKind::Po).count(), 2);
        assert_eq!(g.edges_of_kind(EdgeKind::Rf).count(), 0);
        assert!(g.has_cycle());
    }

    #[test]
    fn rf_edges_present_when_value_observed() {
        let t = sb();
        let o = outcome(&[(0, 0, 1), (1, 0, 1)]);
        let g = &derive(&t, &o).unwrap()[0];
        assert_eq!(g.edges_of_kind(EdgeKind::Rf).count(), 2);
        assert!(!g.has_cycle());
    }

    #[test]
    fn missing_register_is_reported() {
        let t = sb();
        let o = outcome(&[(0, 0, 0)]);
        assert!(matches!(
            derive(&t, &o).unwrap_err(),
            HbError::MissingRegister { .. }
        ));
    }

    #[test]
    fn unattributable_value_is_reported() {
        let t = sb();
        let o = outcome(&[(0, 0, 9), (1, 0, 0)]);
        assert_eq!(
            derive(&t, &o).unwrap_err(),
            HbError::NoWriter {
                loc: t.location_id("y").unwrap(),
                value: 9
            }
        );
    }

    #[test]
    fn ambiguous_writer_is_reported() {
        let mut b = TestBuilder::new("amb");
        b.thread().store("x", 1);
        b.thread().store("x", 1);
        b.thread().load("EAX", "x");
        b.reg_cond(2, "EAX", 1);
        let t = b.build().unwrap();
        let o = outcome(&[(2, 0, 1)]);
        assert!(matches!(
            derive(&t, &o).unwrap_err(),
            HbError::AmbiguousWriter { .. }
        ));
    }

    #[test]
    fn two_writers_yield_two_ws_choices() {
        // Coherence shape: two stores to x from different threads.
        let mut b = TestBuilder::new("2w");
        b.thread().store("x", 1);
        b.thread().store("x", 2);
        b.thread().load("EAX", "x").load("EBX", "x");
        b.reg_cond(2, "EAX", 1).reg_cond(2, "EBX", 2);
        let t = b.build().unwrap();
        let o = outcome(&[(2, 0, 1), (2, 1, 2)]);
        let graphs = derive(&t, &o).unwrap();
        assert_eq!(graphs.len(), 2);
        // Reading 1 then 2 is SC-consistent (ws: 1 before 2).
        assert!(graphs.iter().any(|g| !g.has_cycle()));
        // Reading 2 then 1 is also SC-consistent, via the other write
        // serialization (2 before 1): independent writers are unordered.
        let o_rev = outcome(&[(2, 0, 2), (2, 1, 1)]);
        assert!(is_sc_consistent(&t, &o_rev).unwrap());
    }

    #[test]
    fn coherence_violation_with_pinned_ws_is_sc_inconsistent() {
        // n4 shape: P0 stores 1 then reads 2 then 1; P1 stores 2 and reads 2.
        // P0 reading its own older value after observing 2 contradicts every
        // write serialization.
        let mut b = TestBuilder::new("n4ish");
        b.thread().store("x", 1).load("EAX", "x").load("EBX", "x");
        b.thread().store("x", 2).load("EAX", "x");
        b.reg_cond(0, "EAX", 2)
            .reg_cond(0, "EBX", 1)
            .reg_cond(1, "EAX", 2);
        let t = b.build().unwrap();
        let o = outcome(&[(0, 0, 2), (0, 1, 1), (1, 0, 2)]);
        assert!(!is_sc_consistent(&t, &o).unwrap());
    }

    #[test]
    fn same_thread_stores_keep_program_order_in_ws() {
        let stores = vec![
            InstrRef::new(0, 0),
            InstrRef::new(0, 1),
            InstrRef::new(1, 0),
        ];
        let perms = po_respecting_permutations(&stores);
        // 3 positions for the P1 store among the ordered P0 pair.
        assert_eq!(perms.len(), 3);
        for p in &perms {
            let a = p.iter().position(|&r| r == InstrRef::new(0, 0)).unwrap();
            let b = p.iter().position(|&r| r == InstrRef::new(0, 1)).unwrap();
            assert!(a < b);
        }
    }

    #[test]
    fn mp_target_outcome_not_sc() {
        let mut b = TestBuilder::new("mp");
        b.thread().store("x", 1).store("y", 1);
        b.thread().load("EAX", "y").load("EBX", "x");
        b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
        let t = b.build().unwrap();
        let o = outcome(&[(1, 0, 1), (1, 1, 0)]);
        assert!(!is_sc_consistent(&t, &o).unwrap());
        let ok = outcome(&[(1, 0, 1), (1, 1, 1)]);
        assert!(is_sc_consistent(&t, &ok).unwrap());
    }

    #[test]
    fn edge_and_node_display() {
        let e = Edge {
            from: Node::Init(LocId(0)),
            to: Node::Instr(InstrRef::new(1, 0)),
            kind: EdgeKind::Ws,
        };
        assert_eq!(e.to_string(), "init(loc0) -> i10 (ws)");
        assert_eq!(EdgeKind::Rf.to_string(), "rf");
        assert_eq!(EdgeKind::Fr.to_string(), "fr");
        assert_eq!(EdgeKind::Po.to_string(), "po");
    }
}
