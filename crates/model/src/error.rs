//! Error type shared by model construction and parsing.

use crate::span::Span;
use std::fmt;

/// Errors produced while building or parsing a litmus test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The test has no threads.
    NoThreads,
    /// More threads than the model supports (255).
    TooManyThreads(usize),
    /// A thread exceeds the supported instruction count (255).
    ThreadTooLong {
        /// The offending thread.
        thread: usize,
        /// The thread's instruction count.
        len: usize,
    },
    /// A store of value zero: zero is reserved for the initial state.
    ZeroStore {
        /// Thread containing the offending store.
        thread: usize,
        /// Program-order index of the offending store.
        index: usize,
    },
    /// A condition references a register that no load defines.
    UnknownRegister {
        /// Thread named by the condition.
        thread: usize,
        /// Register name that could not be resolved.
        reg: String,
    },
    /// A condition references an unknown thread.
    UnknownThread(usize),
    /// A condition references an unknown location.
    UnknownLocation(String),
    /// The test condition is empty.
    EmptyCondition,
    /// Parse error with a line number and message.
    Parse {
        /// One-based line number where parsing failed.
        line: usize,
        /// Byte span of the offending token, when a concrete token is at
        /// fault (line-level failures carry `None`).
        span: Option<Span>,
        /// Human-readable description of the failure.
        msg: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoThreads => write!(f, "litmus test has no threads"),
            ModelError::TooManyThreads(n) => {
                write!(f, "litmus test has {n} threads, at most 255 supported")
            }
            ModelError::ThreadTooLong { thread, len } => {
                write!(
                    f,
                    "thread P{thread} has {len} instructions, at most 255 supported"
                )
            }
            ModelError::ZeroStore { thread, index } => {
                write!(
                    f,
                    "store of value 0 at P{thread} instruction {index}; zero is reserved for the initial state"
                )
            }
            ModelError::UnknownRegister { thread, reg } => {
                write!(f, "condition references unknown register {thread}:{reg}")
            }
            ModelError::UnknownThread(t) => {
                write!(f, "condition references unknown thread P{t}")
            }
            ModelError::UnknownLocation(l) => {
                write!(f, "condition references unknown location [{l}]")
            }
            ModelError::EmptyCondition => write!(f, "test condition is empty"),
            ModelError::Parse { line, span, msg } => {
                write!(f, "parse error at line {line}")?;
                if let Some(s) = span {
                    write!(f, " (bytes {}..{})", s.start, s.end)?;
                }
                write!(f, ": {msg}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let msgs = [
            ModelError::NoThreads.to_string(),
            ModelError::TooManyThreads(300).to_string(),
            ModelError::ZeroStore {
                thread: 0,
                index: 1,
            }
            .to_string(),
            ModelError::EmptyCondition.to_string(),
            ModelError::Parse {
                line: 3,
                span: None,
                msg: "bad token".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn parse_error_display_includes_span_bytes() {
        let e = ModelError::Parse {
            line: 4,
            span: Some(Span::new(4, 10, 14)),
            msg: "unknown instruction".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 4 (bytes 10..14): unknown instruction"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::NoThreads);
        assert_eq!(e.to_string(), "litmus test has no threads");
    }
}
