//! The litmus-test container type and its builder.

use std::collections::BTreeSet;
use std::fmt;

use crate::cond::{CondAtom, Condition, Outcome, Quantifier};
use crate::error::ModelError;
use crate::ids::{InstrRef, LocId, RegId, ThreadId};
use crate::instr::Instr;

/// A litmus test: named multi-threaded program over shared locations plus a
/// condition of interest (the *target outcome* of the paper when the
/// quantifier is `exists`).
///
/// Construct programmatically with [`TestBuilder`] or from text with
/// [`crate::parser::parse`].
///
/// ```
/// use perple_model::{TestBuilder, Quantifier};
///
/// let mut b = TestBuilder::new("sb");
/// b.thread().store("x", 1).load("EAX", "y");
/// b.thread().store("y", 1).load("EAX", "x");
/// b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
/// let test = b.build()?;
/// assert_eq!(test.load_thread_count(), 2);
/// # Ok::<(), perple_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LitmusTest {
    name: String,
    doc: String,
    locations: Vec<String>,
    init: Vec<u32>,
    reg_names: Vec<Vec<String>>,
    threads: Vec<Vec<Instr>>,
    condition: Condition,
}

/// One load instruction of a test, in canonical (thread, program-order)
/// order. `slot` is the per-thread load ordinal used to index `buf` arrays:
/// thread `t`'s `i`-th load of iteration `n` lands in `buf_t[r_t * n + i]`
/// (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoadSlot {
    /// Thread performing the load.
    pub thread: ThreadId,
    /// Program-order index of the load instruction within the thread.
    pub instr_index: u8,
    /// Destination register.
    pub reg: RegId,
    /// Source location.
    pub loc: LocId,
    /// Per-thread load ordinal (`i` in `buf_t[r_t * n + i]`).
    pub slot: usize,
}

impl LitmusTest {
    /// The test's name (e.g. `"sb"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Free-form documentation string from the test source.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// Number of threads `T`.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The instruction stream of one thread.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn thread(&self, t: ThreadId) -> &[Instr] {
        &self.threads[t.index()]
    }

    /// All thread instruction streams, indexed by thread.
    pub fn threads(&self) -> &[Vec<Instr>] {
        &self.threads
    }

    /// Names of the shared locations, indexed by [`LocId`].
    pub fn locations(&self) -> &[String] {
        &self.locations
    }

    /// Number of shared locations.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Symbolic name of a location.
    ///
    /// # Panics
    /// Panics if `loc` is out of range.
    pub fn location_name(&self, loc: LocId) -> &str {
        &self.locations[loc.index()]
    }

    /// Resolves a location name to its id.
    pub fn location_id(&self, name: &str) -> Option<LocId> {
        self.locations
            .iter()
            .position(|l| l == name)
            .map(|i| LocId(i as u8))
    }

    /// Initial value of a location (0 unless overridden).
    ///
    /// # Panics
    /// Panics if `loc` is out of range.
    pub fn init(&self, loc: LocId) -> u32 {
        self.init[loc.index()]
    }

    /// Initial values of all locations, indexed by [`LocId`].
    pub fn init_values(&self) -> &[u32] {
        &self.init
    }

    /// Name of a register of a thread.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn reg_name(&self, thread: ThreadId, reg: RegId) -> &str {
        &self.reg_names[thread.index()][reg.index()]
    }

    /// Resolves a register name within a thread.
    pub fn reg_id(&self, thread: ThreadId, name: &str) -> Option<RegId> {
        self.reg_names
            .get(thread.index())?
            .iter()
            .position(|r| r == name)
            .map(|i| RegId(i as u8))
    }

    /// The condition of interest; with an `exists` quantifier this is the
    /// paper's *target outcome*.
    pub fn target(&self) -> &Condition {
        &self.condition
    }

    /// The target outcome as a register valuation, if the condition is
    /// register-only (a prerequisite for conversion, paper §V-C).
    pub fn target_outcome(&self) -> Option<Outcome> {
        if self.condition.inspects_memory() {
            return None;
        }
        Some(self.condition.reg_atoms().collect())
    }

    /// All load instructions in canonical order (thread, then program order).
    pub fn load_slots(&self) -> Vec<LoadSlot> {
        let mut slots = Vec::new();
        for (t, instrs) in self.threads.iter().enumerate() {
            let mut ordinal = 0usize;
            for (i, instr) in instrs.iter().enumerate() {
                if let Some((reg, loc)) = instr.load_target() {
                    slots.push(LoadSlot {
                        thread: ThreadId(t as u8),
                        instr_index: i as u8,
                        reg,
                        loc,
                        slot: ordinal,
                    });
                    ordinal += 1;
                }
            }
        }
        slots
    }

    /// Threads that perform at least one load, in index order.
    pub fn load_threads(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, instrs)| instrs.iter().any(|i| i.load_target().is_some()))
            .map(|(t, _)| ThreadId(t as u8))
            .collect()
    }

    /// `T_L`: the number of load-performing threads.
    pub fn load_thread_count(&self) -> usize {
        self.load_threads().len()
    }

    /// `r_t` for every thread: loads performed per iteration.
    pub fn reads_per_thread(&self) -> Vec<usize> {
        self.threads
            .iter()
            .map(|instrs| instrs.iter().filter(|i| i.load_target().is_some()).count())
            .collect()
    }

    /// All store instructions targeting `loc`, with the values they store.
    pub fn stores_to(&self, loc: LocId) -> Vec<(InstrRef, u32)> {
        let mut out = Vec::new();
        for (t, instrs) in self.threads.iter().enumerate() {
            for (i, instr) in instrs.iter().enumerate() {
                if let Some((l, v)) = instr.store_target() {
                    if l == loc {
                        out.push((InstrRef::new(t as u8, i as u8), v));
                    }
                }
            }
        }
        out
    }

    /// Distinct positive values stored to `loc` across all threads. Its size
    /// is `k_mem` of the conversion paradigm (paper §III-B).
    pub fn distinct_store_values(&self, loc: LocId) -> BTreeSet<u32> {
        self.stores_to(loc).into_iter().map(|(_, v)| v).collect()
    }

    /// The store instruction writing value `v` to `loc`, if it is unique.
    pub fn unique_store_of(&self, loc: LocId, v: u32) -> Option<InstrRef> {
        let mut found = None;
        for (r, value) in self.stores_to(loc) {
            if value == v {
                if found.is_some() {
                    return None;
                }
                found = Some(r);
            }
        }
        found
    }

    /// Enumerates the full outcome space: every valuation assigning each load
    /// register either 0 (initial value) or one of the values stored to the
    /// loaded location. The sb test yields its four outcomes of §II-B1.
    ///
    /// The space is exponential in the number of loads; litmus tests have at
    /// most a handful.
    pub fn possible_outcomes(&self) -> Vec<Outcome> {
        let slots = self.load_slots();
        let per_slot: Vec<Vec<u32>> = slots
            .iter()
            .map(|s| {
                let mut vals = vec![self.init(s.loc)];
                for v in self.distinct_store_values(s.loc) {
                    if !vals.contains(&v) {
                        vals.push(v);
                    }
                }
                vals
            })
            .collect();
        let mut outcomes = Vec::new();
        let mut idx = vec![0usize; slots.len()];
        loop {
            let mut o = Outcome::new();
            for (s, slot) in slots.iter().enumerate() {
                o.set(slot.thread, slot.reg, per_slot[s][idx[s]]);
            }
            outcomes.push(o);
            // odometer increment
            let mut pos = slots.len();
            loop {
                if pos == 0 {
                    return outcomes;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < per_slot[pos].len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }

    /// Builds the register valuation described by the test condition,
    /// completing unspecified load registers with every possible value.
    /// Returns all full outcomes compatible with the condition.
    pub fn outcomes_matching_condition(&self) -> Vec<Outcome> {
        let target: Vec<(ThreadId, RegId, u32)> = self.condition.reg_atoms().collect();
        self.possible_outcomes()
            .into_iter()
            .filter(|o| target.iter().all(|&(t, r, v)| o.get(t, r) == Some(v)))
            .collect()
    }
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print(self))
    }
}

/// Incremental builder for [`LitmusTest`].
#[derive(Debug, Clone)]
pub struct TestBuilder {
    name: String,
    doc: String,
    locations: Vec<String>,
    init_overrides: Vec<(String, u32)>,
    reg_names: Vec<Vec<String>>,
    threads: Vec<Vec<Instr>>,
    quantifier: Quantifier,
    // (thread, reg name, value) and (loc name, value) conjuncts, resolved at build.
    reg_conds: Vec<(usize, String, u32)>,
    mem_conds: Vec<(String, u32)>,
}

impl TestBuilder {
    /// Starts building a test with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            doc: String::new(),
            locations: Vec::new(),
            init_overrides: Vec::new(),
            reg_names: Vec::new(),
            threads: Vec::new(),
            quantifier: Quantifier::Exists,
            reg_conds: Vec::new(),
            mem_conds: Vec::new(),
        }
    }

    /// Attaches a documentation string.
    pub fn doc(&mut self, doc: impl Into<String>) -> &mut Self {
        self.doc = doc.into();
        self
    }

    /// Overrides the initial value of a location (default 0).
    pub fn init(&mut self, loc: impl Into<String>, value: u32) -> &mut Self {
        self.init_overrides.push((loc.into(), value));
        self
    }

    /// Opens a new thread; instructions are added through the returned
    /// [`ThreadBuilder`].
    pub fn thread(&mut self) -> ThreadBuilder<'_> {
        self.threads.push(Vec::new());
        self.reg_names.push(Vec::new());
        let t = self.threads.len() - 1;
        ThreadBuilder {
            owner: self,
            thread: t,
        }
    }

    /// Sets the condition quantifier (default [`Quantifier::Exists`]).
    pub fn quantifier(&mut self, q: Quantifier) -> &mut Self {
        self.quantifier = q;
        self
    }

    /// Adds a `thread:reg = value` conjunct to the condition.
    pub fn reg_cond(&mut self, thread: usize, reg: impl Into<String>, value: u32) -> &mut Self {
        self.reg_conds.push((thread, reg.into(), value));
        self
    }

    /// Adds a `[loc] = value` conjunct to the condition. Such atoms make the
    /// test non-convertible (paper §V-C) but remain runnable by the baseline.
    pub fn mem_cond(&mut self, loc: impl Into<String>, value: u32) -> &mut Self {
        self.mem_conds.push((loc.into(), value));
        self
    }

    fn intern_loc(&mut self, name: &str) -> LocId {
        if let Some(i) = self.locations.iter().position(|l| l == name) {
            LocId(i as u8)
        } else {
            self.locations.push(name.to_owned());
            LocId((self.locations.len() - 1) as u8)
        }
    }

    fn intern_reg(&mut self, thread: usize, name: &str) -> RegId {
        let regs = &mut self.reg_names[thread];
        if let Some(i) = regs.iter().position(|r| r == name) {
            RegId(i as u8)
        } else {
            regs.push(name.to_owned());
            RegId((regs.len() - 1) as u8)
        }
    }

    /// Finalizes the test.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the test is structurally invalid: no
    /// threads, oversized threads, zero-valued stores, an empty condition, or
    /// condition atoms referencing unknown threads/registers/locations.
    pub fn build(&self) -> Result<LitmusTest, ModelError> {
        if self.threads.is_empty() {
            return Err(ModelError::NoThreads);
        }
        if self.threads.len() > 255 {
            return Err(ModelError::TooManyThreads(self.threads.len()));
        }
        for (t, instrs) in self.threads.iter().enumerate() {
            if instrs.len() > 255 {
                return Err(ModelError::ThreadTooLong {
                    thread: t,
                    len: instrs.len(),
                });
            }
            for (i, instr) in instrs.iter().enumerate() {
                if let Some((_, v)) = instr.store_target() {
                    if v == 0 {
                        return Err(ModelError::ZeroStore {
                            thread: t,
                            index: i,
                        });
                    }
                }
            }
        }
        if self.reg_conds.is_empty() && self.mem_conds.is_empty() {
            return Err(ModelError::EmptyCondition);
        }

        let mut init = vec![0u32; self.locations.len()];
        for (name, v) in &self.init_overrides {
            let id = self
                .locations
                .iter()
                .position(|l| l == name)
                .ok_or_else(|| ModelError::UnknownLocation(name.clone()))?;
            init[id] = *v;
        }

        let mut atoms = Vec::new();
        for (t, reg, v) in &self.reg_conds {
            if *t >= self.threads.len() {
                return Err(ModelError::UnknownThread(*t));
            }
            let rid = self.reg_names[*t]
                .iter()
                .position(|r| r == reg)
                .ok_or_else(|| ModelError::UnknownRegister {
                    thread: *t,
                    reg: reg.clone(),
                })?;
            atoms.push(CondAtom::RegEq {
                thread: ThreadId(*t as u8),
                reg: RegId(rid as u8),
                value: *v,
            });
        }
        for (loc, v) in &self.mem_conds {
            let id = self
                .locations
                .iter()
                .position(|l| l == loc)
                .ok_or_else(|| ModelError::UnknownLocation(loc.clone()))?;
            atoms.push(CondAtom::MemEq {
                loc: LocId(id as u8),
                value: *v,
            });
        }

        Ok(LitmusTest {
            name: self.name.clone(),
            doc: self.doc.clone(),
            locations: self.locations.clone(),
            init,
            reg_names: self.reg_names.clone(),
            threads: self.threads.clone(),
            condition: Condition::new(self.quantifier, atoms),
        })
    }
}

/// Adds instructions to one thread of a [`TestBuilder`].
#[derive(Debug)]
pub struct ThreadBuilder<'a> {
    owner: &'a mut TestBuilder,
    thread: usize,
}

impl ThreadBuilder<'_> {
    /// Appends `MOV [loc], $value`.
    pub fn store(&mut self, loc: &str, value: u32) -> &mut Self {
        let loc = self.owner.intern_loc(loc);
        self.owner.threads[self.thread].push(Instr::Store { loc, value });
        self
    }

    /// Appends `MOV reg, [loc]`.
    pub fn load(&mut self, reg: &str, loc: &str) -> &mut Self {
        let loc = self.owner.intern_loc(loc);
        let reg = self.owner.intern_reg(self.thread, reg);
        self.owner.threads[self.thread].push(Instr::Load { reg, loc });
        self
    }

    /// Appends `MFENCE`.
    pub fn mfence(&mut self) -> &mut Self {
        self.owner.threads[self.thread].push(Instr::Mfence);
        self
    }

    /// Appends `XCHG [loc], $value -> reg` (atomic store + load of the old
    /// value, locked).
    pub fn xchg(&mut self, reg: &str, loc: &str, value: u32) -> &mut Self {
        let loc = self.owner.intern_loc(loc);
        let reg = self.owner.intern_reg(self.thread, reg);
        self.owner.threads[self.thread].push(Instr::Xchg { reg, loc, value });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> LitmusTest {
        let mut b = TestBuilder::new("sb");
        b.thread().store("x", 1).load("EAX", "y");
        b.thread().store("y", 1).load("EAX", "x");
        b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_expected_structure() {
        let t = sb();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.location_count(), 2);
        assert_eq!(t.location_name(LocId(0)), "x");
        assert_eq!(t.location_id("y"), Some(LocId(1)));
        assert_eq!(t.location_id("z"), None);
        assert_eq!(t.init(LocId(0)), 0);
        assert_eq!(t.reg_name(ThreadId(0), RegId(0)), "EAX");
        assert_eq!(t.reg_id(ThreadId(1), "EAX"), Some(RegId(0)));
        assert_eq!(t.reg_id(ThreadId(1), "EBX"), None);
    }

    #[test]
    fn load_slots_and_thread_classification() {
        let t = sb();
        let slots = t.load_slots();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].thread, ThreadId(0));
        assert_eq!(slots[0].loc, t.location_id("y").unwrap());
        assert_eq!(slots[0].slot, 0);
        assert_eq!(t.load_threads(), vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(t.load_thread_count(), 2);
        assert_eq!(t.reads_per_thread(), vec![1, 1]);
    }

    #[test]
    fn store_analysis() {
        let t = sb();
        let x = t.location_id("x").unwrap();
        let stores = t.stores_to(x);
        assert_eq!(stores, vec![(InstrRef::new(0, 0), 1)]);
        assert_eq!(t.distinct_store_values(x).len(), 1);
        assert_eq!(t.unique_store_of(x, 1), Some(InstrRef::new(0, 0)));
        assert_eq!(t.unique_store_of(x, 2), None);
    }

    #[test]
    fn unique_store_detects_duplicates() {
        let mut b = TestBuilder::new("dup");
        b.thread().store("x", 1).load("EAX", "x");
        b.thread().store("x", 1);
        b.reg_cond(0, "EAX", 1);
        let t = b.build().unwrap();
        let x = t.location_id("x").unwrap();
        assert_eq!(t.unique_store_of(x, 1), None);
    }

    #[test]
    fn possible_outcomes_of_sb_are_four() {
        let t = sb();
        let outcomes = t.possible_outcomes();
        assert_eq!(outcomes.len(), 4);
        let labels: Vec<_> = outcomes.iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn target_outcome_extraction() {
        let t = sb();
        let target = t.target_outcome().unwrap();
        assert_eq!(target.label(), "00");
        let matching = t.outcomes_matching_condition();
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].label(), "00");
    }

    #[test]
    fn mem_condition_blocks_target_outcome() {
        let mut b = TestBuilder::new("co");
        b.thread().store("x", 1);
        b.thread().store("x", 2).load("EAX", "x");
        b.reg_cond(1, "EAX", 1).mem_cond("x", 1);
        let t = b.build().unwrap();
        assert!(t.target().inspects_memory());
        assert!(t.target_outcome().is_none());
    }

    #[test]
    fn build_rejects_invalid_tests() {
        assert_eq!(
            TestBuilder::new("e").build().unwrap_err(),
            ModelError::NoThreads
        );

        let mut b = TestBuilder::new("z");
        b.thread().store("x", 0);
        b.mem_cond("x", 0);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::ZeroStore {
                thread: 0,
                index: 0
            }
        );

        let mut b = TestBuilder::new("nc");
        b.thread().store("x", 1);
        assert_eq!(b.build().unwrap_err(), ModelError::EmptyCondition);

        let mut b = TestBuilder::new("ur");
        b.thread().store("x", 1);
        b.reg_cond(0, "EAX", 0);
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::UnknownRegister { .. }
        ));

        let mut b = TestBuilder::new("ut");
        b.thread().load("EAX", "x");
        b.reg_cond(3, "EAX", 0);
        assert_eq!(b.build().unwrap_err(), ModelError::UnknownThread(3));

        let mut b = TestBuilder::new("ul");
        b.thread().load("EAX", "x");
        b.reg_cond(0, "EAX", 0).mem_cond("q", 1);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownLocation("q".into())
        );
    }

    #[test]
    fn init_override() {
        let mut b = TestBuilder::new("iv");
        b.thread().load("EAX", "x");
        b.init("x", 7);
        b.reg_cond(0, "EAX", 7);
        let t = b.build().unwrap();
        assert_eq!(t.init(t.location_id("x").unwrap()), 7);
        assert_eq!(t.init_values(), &[7]);
    }

    #[test]
    fn init_override_unknown_location_errors() {
        let mut b = TestBuilder::new("iv");
        b.thread().load("EAX", "x");
        b.init("nope", 7);
        b.reg_cond(0, "EAX", 7);
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::UnknownLocation("nope".into())
        );
    }

    #[test]
    fn xchg_counts_as_load_and_store() {
        let mut b = TestBuilder::new("x");
        b.thread().xchg("EAX", "x", 1);
        b.thread().load("EBX", "x");
        b.reg_cond(1, "EBX", 1);
        let t = b.build().unwrap();
        assert_eq!(t.load_threads().len(), 2);
        assert_eq!(t.stores_to(t.location_id("x").unwrap()).len(), 1);
        assert_eq!(t.reads_per_thread(), vec![1, 1]);
    }
}
