//! Strongly-typed identifiers used throughout the model.

use std::fmt;

/// Identifier of a shared memory location within a [`crate::LitmusTest`].
///
/// Indexes the test's location table; display uses the symbolic name only
/// when formatted through the owning test (see
/// [`crate::LitmusTest::location_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u8);

impl LocId {
    /// Returns the raw index into the test's location table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// Identifier of a test thread (`P0`, `P1`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Returns the raw thread index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a per-thread register.
///
/// Register *names* (`EAX`, `EBX`, ...) are interned per thread by the owning
/// test; `RegId` is the index into that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u8);

impl RegId {
    /// Returns the raw index into the thread's register table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Reference to a specific instruction within a test: thread plus
/// program-order index, the `(i_tn)` notation of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrRef {
    /// Thread the instruction belongs to.
    pub thread: ThreadId,
    /// Zero-based program-order index within the thread.
    pub index: u8,
}

impl InstrRef {
    /// Creates an instruction reference from raw indices.
    pub fn new(thread: u8, index: u8) -> Self {
        Self {
            thread: ThreadId(thread),
            index,
        }
    }
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}{}", self.thread.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LocId(2).to_string(), "loc2");
        assert_eq!(ThreadId(1).to_string(), "P1");
        assert_eq!(RegId(0).to_string(), "r0");
        assert_eq!(InstrRef::new(0, 1).to_string(), "i01");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(LocId(0) < LocId(1));
        assert!(ThreadId(0) < ThreadId(2));
        assert!(InstrRef::new(0, 1) < InstrRef::new(1, 0));
    }

    #[test]
    fn index_accessors() {
        assert_eq!(LocId(3).index(), 3);
        assert_eq!(ThreadId(2).index(), 2);
        assert_eq!(RegId(1).index(), 1);
    }
}
