//! diy-style litmus-test generation from critical cycles.
//!
//! The diy suite (§VIII of the paper) synthesizes litmus tests from
//! *critical cycles*: sequences of relaxation edges whose cycle is, by
//! construction, unreachable under sequential consistency. A test's events
//! are laid out by walking the cycle — program-order edges extend the
//! current thread, external communication edges start a new one — and the
//! test's condition pins exactly the communication edges, so observing the
//! condition means the hardware realized the cycle.
//!
//! Edge vocabulary (the `diy` names):
//!
//! * `PodXY` — program order to a *different* location, from an X access to
//!   a Y access (X, Y ∈ {R, W});
//! * `Rfe` — external read-from: a load in the next thread reads this
//!   thread's store;
//! * `Fre` — external from-read: a load whose value is overwritten by the
//!   next thread's store;
//! * `Wse` — external write serialization: the next thread's store
//!   overwrites this thread's store (pins *final memory*, which makes the
//!   generated test non-convertible — exactly the class PerpLE's Converter
//!   rejects, §V-C).
//!
//! The classic tests are one-liners:
//!
//! ```
//! use perple_model::generate::{from_cycle, CycleEdge::*, Dir::*};
//!
//! let sb = from_cycle("gen-sb", &[Pod(W, R), Fre, Pod(W, R), Fre])?;
//! assert_eq!(sb.thread_count(), 2);
//! // The generated condition is the store-buffering target.
//! assert_eq!(sb.target().atoms().len(), 2);
//! # Ok::<(), perple_model::generate::GenError>(())
//! ```

use std::fmt;

use crate::cond::Quantifier;
use crate::test::{LitmusTest, TestBuilder};

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// A load.
    R,
    /// A store.
    W,
}

/// One edge of a critical cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleEdge {
    /// Program order to a different location, with explicit endpoint
    /// directions.
    Pod(Dir, Dir),
    /// External read-from (W → R, next thread).
    Rfe,
    /// External from-read (R → W, next thread).
    Fre,
    /// External write serialization (W → W, next thread).
    Wse,
}

impl CycleEdge {
    /// Direction required of the edge's source event.
    pub fn src_dir(self) -> Dir {
        match self {
            CycleEdge::Pod(s, _) => s,
            CycleEdge::Rfe | CycleEdge::Wse => Dir::W,
            CycleEdge::Fre => Dir::R,
        }
    }

    /// Direction required of the edge's destination event.
    pub fn dst_dir(self) -> Dir {
        match self {
            CycleEdge::Pod(_, d) => d,
            CycleEdge::Rfe => Dir::R,
            CycleEdge::Fre | CycleEdge::Wse => Dir::W,
        }
    }

    /// True if the edge crosses threads.
    pub fn is_external(self) -> bool {
        !matches!(self, CycleEdge::Pod(..))
    }
}

impl fmt::Display for CycleEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleEdge::Pod(s, d) => write!(f, "Pod{s:?}{d:?}"),
            CycleEdge::Rfe => write!(f, "Rfe"),
            CycleEdge::Fre => write!(f, "Fre"),
            CycleEdge::Wse => write!(f, "Wse"),
        }
    }
}

/// Errors rejecting a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The cycle has fewer than two edges.
    TooShort,
    /// Adjacent edges disagree on the direction of their shared event.
    DirectionMismatch {
        /// Index of the earlier edge.
        edge: usize,
    },
    /// The cycle never crosses threads (no external edge), so it describes
    /// a single-thread program, not a litmus test.
    NoExternalEdge,
    /// The final edge must be external: the walk starts a new thread at
    /// every external edge and must return to thread 0's first event.
    LastEdgeNotExternal,
    /// The cycle needs no program-order edge to be a *critical* cycle but
    /// must touch at least one location; this cycle has zero events.
    NoLocations,
    /// Exactly one program-order (location-changing) edge: a single
    /// location change can never return the walk to its starting location,
    /// so the cycle cannot be laid out.
    UnclosableLocations,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::TooShort => write!(f, "cycle needs at least two edges"),
            GenError::DirectionMismatch { edge } => {
                write!(
                    f,
                    "edges {edge} and {} disagree on the shared event's direction",
                    edge + 1
                )
            }
            GenError::NoExternalEdge => write!(f, "cycle never crosses threads"),
            GenError::LastEdgeNotExternal => {
                write!(f, "the final edge must be external to close the cycle")
            }
            GenError::NoLocations => write!(f, "cycle touches no location"),
            GenError::UnclosableLocations => {
                write!(f, "a single location-changing edge cannot close the cycle")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// One laid-out event of the walk.
#[derive(Debug, Clone, Copy)]
struct Event {
    thread: usize,
    loc: usize,
    dir: Dir,
    /// Store value (0 for loads until assigned).
    value: u32,
    /// Register ordinal within the thread (loads only).
    reg: usize,
}

/// Generates a litmus test from a critical cycle.
///
/// # Errors
///
/// Returns [`GenError`] for structurally invalid cycles (see its variants).
pub fn from_cycle(name: &str, cycle: &[CycleEdge]) -> Result<LitmusTest, GenError> {
    if cycle.len() < 2 {
        return Err(GenError::TooShort);
    }
    // Direction consistency around the cycle.
    for (i, e) in cycle.iter().enumerate() {
        let next = cycle[(i + 1) % cycle.len()];
        if e.dst_dir() != next.src_dir() {
            return Err(GenError::DirectionMismatch { edge: i });
        }
    }
    if !cycle.iter().any(|e| e.is_external()) {
        return Err(GenError::NoExternalEdge);
    }
    if !cycle.last().expect("non-empty").is_external() {
        return Err(GenError::LastEdgeNotExternal);
    }

    // Lay out events. Event i is the source of edge i. Locations change on
    // Pod edges and cycle through loc 0..P-1 so the final Pod returns to
    // loc 0; with no Pod edge everything shares loc 0.
    let pod_count = cycle.iter().filter(|e| !e.is_external()).count();
    if pod_count == 1 {
        return Err(GenError::UnclosableLocations);
    }
    let nlocs = pod_count.max(1);
    let mut events: Vec<Event> = Vec::with_capacity(cycle.len());
    let mut thread = 0usize;
    let mut loc = 0usize;
    let mut pods_seen = 0usize;
    let mut regs_per_thread = vec![0usize; cycle.len()];
    for e in cycle.iter() {
        let dir = e.src_dir();
        let reg = if dir == Dir::R {
            regs_per_thread[thread] += 1;
            regs_per_thread[thread] - 1
        } else {
            0
        };
        events.push(Event {
            thread,
            loc,
            dir,
            value: 0,
            reg,
        });
        if e.is_external() {
            thread += 1;
        } else {
            pods_seen += 1;
            loc = pods_seen % nlocs;
        }
    }
    if events.is_empty() {
        return Err(GenError::NoLocations);
    }
    let nthreads = thread; // last external edge wrapped to thread 0

    // Assign store values per location in event order (distinct values).
    let mut next_value = vec![0u32; nlocs];
    for ev in events.iter_mut() {
        if ev.dir == Dir::W {
            next_value[ev.loc] += 1;
            ev.value = next_value[ev.loc];
        }
    }

    // Emit the program.
    let mut b = TestBuilder::new(name);
    b.doc(format!(
        "generated from cycle {}",
        cycle
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    ));
    let loc_name = |l: usize| format!("v{l}");
    let reg_name = |r: usize| format!("R{r}");
    for t in 0..nthreads {
        let mut tb = b.thread();
        for ev in events.iter().filter(|ev| ev.thread == t) {
            match ev.dir {
                Dir::W => {
                    tb.store(&loc_name(ev.loc), ev.value);
                }
                Dir::R => {
                    tb.load(&reg_name(ev.reg), &loc_name(ev.loc));
                }
            }
        }
    }

    // Derive the condition from the communication edges. Per-location store
    // lists in event order approximate the ws chains the cycle implies.
    let stores_of = |l: usize| -> Vec<&Event> {
        events
            .iter()
            .filter(|e| e.dir == Dir::W && e.loc == l)
            .collect()
    };
    b.quantifier(Quantifier::Exists);
    for (i, e) in cycle.iter().enumerate() {
        let src = &events[i];
        let dst = &events[(i + 1) % events.len()];
        match e {
            CycleEdge::Rfe => {
                // dst (a load) reads src's value.
                b.reg_cond(dst.thread, reg_name(dst.reg), src.value);
            }
            CycleEdge::Fre => {
                // src (a load) reads the value ws-before dst's store.
                let stores = stores_of(src.loc);
                let pos = stores
                    .iter()
                    .position(|s| s.value == dst.value)
                    .expect("dst store present");
                let before = if pos == 0 { 0 } else { stores[pos - 1].value };
                b.reg_cond(src.thread, reg_name(src.reg), before);
            }
            CycleEdge::Wse => {
                // dst's store overwrites src's: the chain's last store is
                // the final value; pinning dst's value asserts this edge.
                b.mem_cond(loc_name(src.loc), dst.value);
            }
            CycleEdge::Pod(..) => {}
        }
    }

    b.build().map_err(|e| {
        // Structural validation above should prevent builder failures.
        unreachable!("generated cycle produced an invalid test: {e}")
    })
}

/// Enumerates every valid cycle of exactly `len` edges over the vocabulary
/// and generates the corresponding tests (deduplicated by rotation).
/// Cycle length 4 reproduces the classic two-thread family (sb, lb, mp,
/// s, r, 2+2w, ...).
pub fn generate_family(len: usize) -> Vec<LitmusTest> {
    let vocab = [
        CycleEdge::Pod(Dir::R, Dir::R),
        CycleEdge::Pod(Dir::R, Dir::W),
        CycleEdge::Pod(Dir::W, Dir::R),
        CycleEdge::Pod(Dir::W, Dir::W),
        CycleEdge::Rfe,
        CycleEdge::Fre,
        CycleEdge::Wse,
    ];
    let mut seen_rotations: std::collections::HashSet<Vec<CycleEdge>> =
        std::collections::HashSet::new();
    let mut tests = Vec::new();
    let mut cycle = vec![vocab[0]; len];

    fn rec(
        vocab: &[CycleEdge],
        cycle: &mut Vec<CycleEdge>,
        pos: usize,
        seen: &mut std::collections::HashSet<Vec<CycleEdge>>,
        tests: &mut Vec<LitmusTest>,
    ) {
        let len = cycle.len();
        if pos == len {
            // Canonical rotation for dedup.
            let canonical = (0..len)
                .map(|r| {
                    let mut rot = cycle[r..].to_vec();
                    rot.extend_from_slice(&cycle[..r]);
                    rot
                })
                .min_by_key(|c| format!("{c:?}"))
                .expect("non-empty cycle");
            if !seen.insert(canonical) {
                return;
            }
            let name = format!(
                "dyn-{}",
                cycle
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            );
            if let Ok(t) = from_cycle(&name, cycle) {
                tests.push(t);
            }
            return;
        }
        for &e in vocab {
            cycle[pos] = e;
            // Prune on direction mismatch with the previous edge.
            if pos > 0 && cycle[pos - 1].dst_dir() != e.src_dir() {
                continue;
            }
            rec(vocab, cycle, pos + 1, seen, tests);
        }
    }
    rec(&vocab, &mut cycle, 0, &mut seen_rotations, &mut tests);
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb;
    use CycleEdge::*;
    use Dir::*;

    #[test]
    fn sb_cycle_reproduces_store_buffering_shape() {
        let t = from_cycle("gen-sb", &[Pod(W, R), Fre, Pod(W, R), Fre]).unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.location_count(), 2);
        assert_eq!(t.load_thread_count(), 2);
        // Condition: both loads read 0.
        let target = t.target_outcome().unwrap();
        assert_eq!(target.label(), "00");
    }

    #[test]
    fn mp_cycle_reproduces_message_passing() {
        let t = from_cycle("gen-mp", &[Pod(W, W), Rfe, Pod(R, R), Fre]).unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.reads_per_thread(), vec![0, 2]);
        // Condition: flag read (1), data stale (0).
        let atoms = t.target().atoms().len();
        assert_eq!(atoms, 2);
    }

    #[test]
    fn lb_cycle_reproduces_load_buffering() {
        let t = from_cycle("gen-lb", &[Pod(R, W), Rfe, Pod(R, W), Rfe]).unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.target_outcome().unwrap().label(), "11");
    }

    #[test]
    fn wse_cycles_generate_non_convertible_tests() {
        // 2+2w: PodWW Wse PodWW Wse.
        let t = from_cycle("gen-2+2w", &[Pod(W, W), Wse, Pod(W, W), Wse]).unwrap();
        assert!(t.target().inspects_memory());
        assert_eq!(t.thread_count(), 2);
    }

    #[test]
    fn iriw_shape_from_six_edge_cycle() {
        let t = from_cycle("gen-iriw", &[Rfe, Pod(R, R), Fre, Rfe, Pod(R, R), Fre]).unwrap();
        assert_eq!(t.thread_count(), 4);
        assert_eq!(t.load_thread_count(), 2);
    }

    #[test]
    fn generated_conditions_are_sc_forbidden() {
        // The defining property of a critical cycle: no completion of the
        // generated condition is SC-consistent.
        for cycle in [
            vec![Pod(W, R), Fre, Pod(W, R), Fre],
            vec![Pod(R, W), Rfe, Pod(R, W), Rfe],
            vec![Pod(W, W), Rfe, Pod(R, R), Fre],
            vec![Rfe, Pod(R, R), Fre, Rfe, Pod(R, R), Fre],
            vec![Pod(W, W), Rfe, Pod(R, W), Rfe, Pod(R, R), Fre],
        ] {
            let t = from_cycle("gen", &cycle).unwrap();
            if t.target().inspects_memory() {
                continue; // hb check needs register-complete outcomes
            }
            for o in t.outcomes_matching_condition() {
                assert!(
                    !hb::is_sc_consistent(&t, &o).unwrap(),
                    "cycle {cycle:?}: completion {o} is SC-consistent"
                );
            }
        }
    }

    #[test]
    fn invalid_cycles_are_rejected() {
        assert_eq!(from_cycle("x", &[Rfe]).unwrap_err(), GenError::TooShort);
        // Rfe ends at R, Wse starts at W.
        assert_eq!(
            from_cycle("x", &[Rfe, Wse]).unwrap_err(),
            GenError::DirectionMismatch { edge: 0 }
        );
        assert_eq!(
            from_cycle("x", &[Pod(W, R), Pod(R, W)]).unwrap_err(),
            GenError::NoExternalEdge
        );
        assert_eq!(
            from_cycle("x", &[Fre, Pod(W, R)]).unwrap_err(),
            GenError::LastEdgeNotExternal
        );
    }

    #[test]
    fn family_of_length_four_contains_the_classics() {
        let family = generate_family(4);
        assert!(family.len() > 10, "only {} cycles generated", family.len());
        // All generated tests build, and the family contains convertible
        // and non-convertible members.
        let convertible = family
            .iter()
            .filter(|t| !t.target().inspects_memory())
            .count();
        assert!(convertible > 0);
        assert!(convertible < family.len());
        // Classic shapes are present: sb's double PodWR/Fre cycle.
        assert!(family.iter().any(|t| {
            t.thread_count() == 2
                && t.reads_per_thread() == vec![1, 1]
                && t.target_outcome().map(|o| o.label()) == Some("00".into())
        }));
    }

    #[test]
    fn family_members_have_unique_names() {
        let family = generate_family(4);
        let mut names: Vec<&str> = family.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn single_pod_cycles_are_rejected() {
        assert_eq!(
            from_cycle("x", &[Pod(R, W), Rfe, Fre, Rfe]).unwrap_err(),
            GenError::UnclosableLocations
        );
    }

    #[test]
    fn error_display() {
        for e in [
            GenError::TooShort,
            GenError::DirectionMismatch { edge: 0 },
            GenError::NoExternalEdge,
            GenError::LastEdgeNotExternal,
            GenError::NoLocations,
            GenError::UnclosableLocations,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
