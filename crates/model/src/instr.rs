//! Instruction set of the abstract x86 litmus machine.

use crate::ids::{LocId, RegId};

/// A single abstract x86 instruction of a litmus-test thread.
///
/// The instruction set mirrors what litmus7 tests for x86-TSO actually use:
/// plain stores and loads (`MOV`), the store-ordering fence (`MFENCE`), and a
/// locked read-modify-write (`XCHG`), which on x86 both drains the store
/// buffer and executes atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `MOV [loc], $value` — store an immediate to shared memory.
    Store {
        /// Destination shared-memory location.
        loc: LocId,
        /// Immediate value stored (must be positive; 0 is the initial state).
        value: u32,
    },
    /// `MOV reg, [loc]` — load from shared memory into a register.
    Load {
        /// Destination register.
        reg: RegId,
        /// Source shared-memory location.
        loc: LocId,
    },
    /// `MFENCE` — drains the store buffer before later memory operations.
    Mfence,
    /// `XCHG [loc], $value -> reg` — atomically store `value` and load the
    /// previous content of `loc` into `reg`. Implicitly locked on x86, so it
    /// also acts as a full fence.
    Xchg {
        /// Register receiving the previous value of `loc`.
        reg: RegId,
        /// Location exchanged.
        loc: LocId,
        /// Immediate value stored (must be positive).
        value: u32,
    },
}

impl Instr {
    /// Returns the location this instruction stores to, if any.
    pub fn store_target(&self) -> Option<(LocId, u32)> {
        match *self {
            Instr::Store { loc, value } | Instr::Xchg { loc, value, .. } => Some((loc, value)),
            _ => None,
        }
    }

    /// Returns the `(register, location)` pair this instruction loads, if any.
    pub fn load_target(&self) -> Option<(RegId, LocId)> {
        match *self {
            Instr::Load { reg, loc } | Instr::Xchg { reg, loc, .. } => Some((reg, loc)),
            _ => None,
        }
    }

    /// True if the instruction accesses shared memory.
    pub fn is_memory_op(&self) -> bool {
        !matches!(self, Instr::Mfence)
    }

    /// True if the instruction orders the store buffer (fence semantics).
    pub fn is_fence(&self) -> bool {
        matches!(self, Instr::Mfence | Instr::Xchg { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_target_of_store_and_xchg() {
        let s = Instr::Store {
            loc: LocId(0),
            value: 1,
        };
        let x = Instr::Xchg {
            reg: RegId(0),
            loc: LocId(1),
            value: 2,
        };
        assert_eq!(s.store_target(), Some((LocId(0), 1)));
        assert_eq!(x.store_target(), Some((LocId(1), 2)));
        assert_eq!(Instr::Mfence.store_target(), None);
        assert_eq!(
            Instr::Load {
                reg: RegId(0),
                loc: LocId(0)
            }
            .store_target(),
            None
        );
    }

    #[test]
    fn load_target_of_load_and_xchg() {
        let l = Instr::Load {
            reg: RegId(1),
            loc: LocId(0),
        };
        let x = Instr::Xchg {
            reg: RegId(0),
            loc: LocId(1),
            value: 2,
        };
        assert_eq!(l.load_target(), Some((RegId(1), LocId(0))));
        assert_eq!(x.load_target(), Some((RegId(0), LocId(1))));
        assert_eq!(Instr::Mfence.load_target(), None);
    }

    #[test]
    fn fence_and_memory_classification() {
        assert!(Instr::Mfence.is_fence());
        assert!(!Instr::Mfence.is_memory_op());
        let x = Instr::Xchg {
            reg: RegId(0),
            loc: LocId(0),
            value: 1,
        };
        assert!(x.is_fence());
        assert!(x.is_memory_op());
        let s = Instr::Store {
            loc: LocId(0),
            value: 1,
        };
        assert!(!s.is_fence());
        assert!(s.is_memory_op());
    }
}
