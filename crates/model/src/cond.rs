//! Test conditions and register-valuation outcomes.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{LocId, RegId, ThreadId};

/// Quantifier of a litmus condition, as written in the litmus7 format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `exists (...)` — the valuation is reachable in at least one run.
    Exists,
    /// `~exists (...)` — the valuation should never be observed.
    NotExists,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "exists"),
            Quantifier::NotExists => write!(f, "~exists"),
        }
    }
}

/// One conjunct of a litmus condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondAtom {
    /// `t:reg = value` — final register content.
    RegEq {
        /// Thread owning the register.
        thread: ThreadId,
        /// Register inspected.
        reg: RegId,
        /// Expected final value.
        value: u32,
    },
    /// `[loc] = value` — final shared-memory content. Conditions containing
    /// such atoms make a test **non-convertible** to a perpetual litmus test
    /// (paper §V-C).
    MemEq {
        /// Location inspected.
        loc: LocId,
        /// Expected final value.
        value: u32,
    },
}

/// Conjunction of [`CondAtom`]s under a [`Quantifier`]: the test's condition
/// of interest (its *target outcome* when `Exists`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Condition {
    quantifier: Quantifier,
    atoms: Vec<CondAtom>,
}

impl Condition {
    /// Creates a condition from its conjuncts.
    pub fn new(quantifier: Quantifier, atoms: Vec<CondAtom>) -> Self {
        Self { quantifier, atoms }
    }

    /// The condition's quantifier.
    pub fn quantifier(&self) -> Quantifier {
        self.quantifier
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[CondAtom] {
        &self.atoms
    }

    /// True if any conjunct inspects final shared memory, which makes the
    /// owning test non-convertible (paper §V-C).
    pub fn inspects_memory(&self) -> bool {
        self.atoms
            .iter()
            .any(|a| matches!(a, CondAtom::MemEq { .. }))
    }

    /// Returns the register conjuncts only.
    pub fn reg_atoms(&self) -> impl Iterator<Item = (ThreadId, RegId, u32)> + '_ {
        self.atoms.iter().filter_map(|a| match *a {
            CondAtom::RegEq { thread, reg, value } => Some((thread, reg, value)),
            CondAtom::MemEq { .. } => None,
        })
    }

    /// Evaluates the conjunction against a register valuation and a final
    /// memory valuation (`mem[loc.index()]`).
    pub fn matches(&self, outcome: &Outcome, mem: &[u32]) -> bool {
        self.atoms.iter().all(|a| match *a {
            CondAtom::RegEq { thread, reg, value } => outcome.get(thread, reg) == Some(value),
            CondAtom::MemEq { loc, value } => mem.get(loc.index()).copied() == Some(value),
        })
    }
}

/// A full valuation of the observed (loaded-into) registers at the end of one
/// litmus-test iteration.
///
/// Ordered map keyed by `(thread, register)` so that outcomes have a
/// canonical ordering and a stable [label](Outcome::label).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome(BTreeMap<(ThreadId, RegId), u32>);

impl Outcome {
    /// Creates an empty outcome.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the final value of a register.
    pub fn set(&mut self, thread: ThreadId, reg: RegId, value: u32) {
        self.0.insert((thread, reg), value);
    }

    /// Reads the recorded value of a register, if present.
    pub fn get(&self, thread: ThreadId, reg: RegId) -> Option<u32> {
        self.0.get(&(thread, reg)).copied()
    }

    /// Number of registers recorded.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no register is recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `((thread, reg), value)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, RegId, u32)> + '_ {
        self.0.iter().map(|(&(t, r), &v)| (t, r, v))
    }

    /// Compact digit label in canonical register order, e.g. `"00"` for the
    /// sb target outcome, matching the labels of Figure 13 of the paper.
    /// Values ≥ 10 are bracketed to stay unambiguous.
    pub fn label(&self) -> String {
        let mut s = String::with_capacity(self.0.len());
        for (_, v) in self.0.iter() {
            if *v < 10 {
                s.push(char::from_digit(*v, 10).expect("digit"));
            } else {
                s.push_str(&format!("[{v}]"));
            }
        }
        s
    }

    /// Builds an outcome from `(thread, reg, value)` triples.
    pub fn from_triples<I: IntoIterator<Item = (ThreadId, RegId, u32)>>(iter: I) -> Self {
        let mut o = Self::new();
        for (t, r, v) in iter {
            o.set(t, r, v);
        }
        o
    }
}

impl FromIterator<(ThreadId, RegId, u32)> for Outcome {
    fn from_iter<I: IntoIterator<Item = (ThreadId, RegId, u32)>>(iter: I) -> Self {
        Self::from_triples(iter)
    }
}

impl Extend<(ThreadId, RegId, u32)> for Outcome {
    fn extend<I: IntoIterator<Item = (ThreadId, RegId, u32)>>(&mut self, iter: I) {
        for (t, r, v) in iter {
            self.set(t, r, v);
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for ((t, r), v) in &self.0 {
            if !first {
                write!(f, " && ")?;
            }
            first = false;
            write!(f, "{}:{}={v}", t.0, r)?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u8) -> ThreadId {
        ThreadId(i)
    }
    fn r(i: u8) -> RegId {
        RegId(i)
    }

    #[test]
    fn outcome_ordering_is_canonical() {
        let mut o = Outcome::new();
        o.set(t(1), r(0), 1);
        o.set(t(0), r(0), 0);
        let keys: Vec<_> = o.iter().map(|(t, r, _)| (t, r)).collect();
        assert_eq!(keys, vec![(ThreadId(0), RegId(0)), (ThreadId(1), RegId(0))]);
        assert_eq!(o.label(), "01");
    }

    #[test]
    fn label_brackets_large_values() {
        let mut o = Outcome::new();
        o.set(t(0), r(0), 12);
        assert_eq!(o.label(), "[12]");
    }

    #[test]
    fn condition_matches_registers_and_memory() {
        let cond = Condition::new(
            Quantifier::Exists,
            vec![
                CondAtom::RegEq {
                    thread: t(0),
                    reg: r(0),
                    value: 0,
                },
                CondAtom::MemEq {
                    loc: LocId(0),
                    value: 2,
                },
            ],
        );
        let mut o = Outcome::new();
        o.set(t(0), r(0), 0);
        assert!(cond.matches(&o, &[2]));
        assert!(!cond.matches(&o, &[1]));
        o.set(t(0), r(0), 1);
        assert!(!cond.matches(&o, &[2]));
        assert!(cond.inspects_memory());
    }

    #[test]
    fn register_only_condition_does_not_inspect_memory() {
        let cond = Condition::new(
            Quantifier::Exists,
            vec![CondAtom::RegEq {
                thread: t(0),
                reg: r(0),
                value: 0,
            }],
        );
        assert!(!cond.inspects_memory());
        assert_eq!(cond.reg_atoms().count(), 1);
    }

    #[test]
    fn display_forms() {
        let mut o = Outcome::new();
        assert_eq!(o.to_string(), "(empty)");
        o.set(t(0), r(0), 1);
        o.set(t(1), r(1), 0);
        assert_eq!(o.to_string(), "0:r0=1 && 1:r1=0");
        assert_eq!(Quantifier::Exists.to_string(), "exists");
        assert_eq!(Quantifier::NotExists.to_string(), "~exists");
    }

    #[test]
    fn from_iterator_and_extend() {
        let o: Outcome = vec![(t(0), r(0), 1)].into_iter().collect();
        assert_eq!(o.get(t(0), r(0)), Some(1));
        let mut o2 = Outcome::new();
        o2.extend(vec![(t(1), r(0), 2)]);
        assert_eq!(o2.get(t(1), r(0)), Some(2));
        assert_eq!(o2.len(), 1);
        assert!(!o2.is_empty());
    }
}
