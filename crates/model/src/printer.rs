//! Printer producing the canonical litmus7 text form of a test.
//!
//! [`print()`] and [`crate::parser::parse`] round-trip: parsing the printed
//! form reproduces the original test.

use std::fmt::Write as _;

use crate::cond::{CondAtom, Quantifier};
use crate::ids::ThreadId;
use crate::instr::Instr;
use crate::test::LitmusTest;

/// Renders a test in litmus7 format.
///
/// ```
/// let sb = perple_model::suite::sb();
/// let text = perple_model::printer::print(&sb);
/// let reparsed = perple_model::parser::parse(&text)?;
/// assert_eq!(sb, reparsed);
/// # Ok::<(), perple_model::ModelError>(())
/// ```
pub fn print(test: &LitmusTest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "X86 {}", test.name());
    if !test.doc().is_empty() {
        let _ = writeln!(out, "\"{}\"", test.doc());
    }

    // Init block.
    let mut init = String::new();
    for (i, name) in test.locations().iter().enumerate() {
        let _ = write!(init, "{name}={}; ", test.init_values()[i]);
    }
    let _ = writeln!(out, "{{ {}}}", init);

    // Program table.
    let nthreads = test.thread_count();
    let mut columns: Vec<Vec<String>> = Vec::with_capacity(nthreads);
    for (t, instrs) in test.threads().iter().enumerate() {
        let mut col = vec![format!("P{t}")];
        for instr in instrs {
            col.push(render_instr(test, ThreadId(t as u8), instr));
        }
        columns.push(col);
    }
    let height = columns.iter().map(Vec::len).max().unwrap_or(0);
    for col in &mut columns {
        col.resize(height, String::new());
    }
    let widths: Vec<usize> = columns
        .iter()
        .map(|col| col.iter().map(String::len).max().unwrap_or(0))
        .collect();
    for row in 0..height {
        let mut line = String::new();
        for (t, col) in columns.iter().enumerate() {
            if t > 0 {
                line.push_str(" | ");
            }
            let _ = write!(line, " {:<width$}", col[row], width = widths[t]);
        }
        line.push_str(" ;");
        let _ = writeln!(out, "{line}");
    }

    // Condition.
    let quant = match test.target().quantifier() {
        Quantifier::Exists => "exists",
        Quantifier::NotExists => "~exists",
    };
    let atoms: Vec<String> = test
        .target()
        .atoms()
        .iter()
        .map(|a| match *a {
            CondAtom::RegEq { thread, reg, value } => {
                format!("{}:{}={}", thread.0, test.reg_name(thread, reg), value)
            }
            CondAtom::MemEq { loc, value } => {
                format!("[{}]={}", test.location_name(loc), value)
            }
        })
        .collect();
    let _ = writeln!(out, "{quant} ({})", atoms.join(" /\\ "));
    out
}

fn render_instr(test: &LitmusTest, thread: ThreadId, instr: &Instr) -> String {
    match *instr {
        Instr::Store { loc, value } => {
            format!("MOV [{}],${}", test.location_name(loc), value)
        }
        Instr::Load { reg, loc } => {
            format!(
                "MOV {},[{}]",
                test.reg_name(thread, reg),
                test.location_name(loc)
            )
        }
        Instr::Mfence => "MFENCE".to_owned(),
        Instr::Xchg { reg, loc, value } => format!(
            "XCHG [{}],${} -> {}",
            test.location_name(loc),
            value,
            test.reg_name(thread, reg)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::test::TestBuilder;

    fn roundtrip(t: &LitmusTest) {
        let text = print(t);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(t, &back, "round-trip mismatch for {}:\n{text}", t.name());
    }

    #[test]
    fn sb_roundtrip() {
        let mut b = TestBuilder::new("sb");
        b.doc("store buffering");
        b.thread().store("x", 1).load("EAX", "y");
        b.thread().store("y", 1).load("EAX", "x");
        b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn uneven_threads_roundtrip() {
        let mut b = TestBuilder::new("mp");
        b.thread().store("x", 1).store("y", 1);
        b.thread().load("EAX", "y").mfence().load("EBX", "x");
        b.reg_cond(1, "EAX", 1).reg_cond(1, "EBX", 0);
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn xchg_and_mem_cond_roundtrip() {
        let mut b = TestBuilder::new("xt");
        b.quantifier(Quantifier::NotExists);
        b.thread().xchg("EAX", "x", 1);
        b.thread().store("x", 2);
        b.reg_cond(0, "EAX", 2).mem_cond("x", 1);
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn nonzero_init_roundtrip() {
        let mut b = TestBuilder::new("iv");
        b.thread().load("EAX", "x");
        b.init("x", 3);
        b.reg_cond(0, "EAX", 3);
        roundtrip(&b.build().unwrap());
    }

    #[test]
    fn printed_form_contains_expected_tokens() {
        let mut b = TestBuilder::new("sb");
        b.thread().store("x", 1).load("EAX", "y");
        b.thread().store("y", 1).load("EAX", "x");
        b.reg_cond(0, "EAX", 0).reg_cond(1, "EAX", 0);
        let text = print(&b.build().unwrap());
        assert!(text.contains("X86 sb"));
        assert!(text.contains("MOV [x],$1"));
        assert!(text.contains("MOV EAX,[y]"));
        assert!(text.contains("exists (0:EAX=0 /\\ 1:EAX=0)"));
    }
}
