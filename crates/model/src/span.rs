//! Byte-offset source spans and the side table mapping parsed tests back
//! to their litmus7 text.
//!
//! Spans are deliberately kept *outside* [`crate::LitmusTest`]: tests
//! compare by structural equality (the printer/parser round-trip asserts
//! it), so source positions live in a [`SourceMap`] returned by
//! [`crate::parser::parse_with_spans`]. Builder-constructed tests have no
//! source of their own; render them with [`crate::printer::print`] and
//! re-parse to obtain a map over the canonical text.

use std::fmt;

/// A half-open byte range `start..end` into a litmus source text, plus the
/// one-based line it falls on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// One-based line number.
    pub line: usize,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, start: usize, end: usize) -> Self {
        Self { line, start, end }
    }

    /// True if the span covers no bytes (the default span is empty).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The spanned text, if the span lies within `src`.
    pub fn slice<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, bytes {}..{}", self.line, self.start, self.end)
    }
}

/// Source positions for one parsed test: where each instruction, condition
/// clause, and init entry sits in the input text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Span of the test name in the header line.
    pub name: Span,
    /// Init entries as written, `(location name, span)` in source order
    /// (including zero-valued entries the builder elides).
    pub init_entries: Vec<(String, Span)>,
    /// Per-thread instruction spans, parallel to
    /// [`crate::LitmusTest::threads`].
    pub instrs: Vec<Vec<Span>>,
    /// Span of the whole condition line.
    pub cond: Span,
    /// Condition-atom spans in [`crate::Condition::atoms`] order (register
    /// atoms in source order, then memory atoms in source order — the
    /// builder's resolution order).
    pub cond_atoms: Vec<Span>,
}

impl SourceMap {
    /// Span of one instruction, if the indices are in range.
    pub fn instr(&self, thread: usize, index: usize) -> Option<Span> {
        self.instrs.get(thread)?.get(index).copied()
    }

    /// Span of one condition atom (atom order of
    /// [`crate::Condition::atoms`]).
    pub fn cond_atom(&self, index: usize) -> Option<Span> {
        self.cond_atoms.get(index).copied()
    }

    /// Span of the whole condition line.
    pub fn condition(&self) -> Span {
        self.cond
    }

    /// Span of the init entry for `loc`, as written in the source.
    pub fn init_entry(&self, loc: &str) -> Option<Span> {
        self.init_entries
            .iter()
            .find(|(name, _)| name == loc)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(2, 4, 9);
        assert!(!s.is_empty());
        assert_eq!(s.slice("0123456789abc"), Some("45678"));
        assert_eq!(s.to_string(), "line 2, bytes 4..9");
        assert!(Span::default().is_empty());
        assert_eq!(Span::new(1, 50, 60).slice("short"), None);
    }

    #[test]
    fn source_map_accessors() {
        let map = SourceMap {
            name: Span::new(1, 4, 6),
            init_entries: vec![("x".to_owned(), Span::new(2, 2, 5))],
            instrs: vec![vec![Span::new(4, 1, 11)]],
            cond: Span::new(6, 0, 20),
            cond_atoms: vec![Span::new(6, 8, 15)],
        };
        assert_eq!(map.instr(0, 0), Some(Span::new(4, 1, 11)));
        assert_eq!(map.instr(0, 1), None);
        assert_eq!(map.instr(9, 0), None);
        assert_eq!(map.cond_atom(0), Some(Span::new(6, 8, 15)));
        assert_eq!(map.cond_atom(1), None);
        assert_eq!(map.condition(), Span::new(6, 0, 20));
        assert_eq!(map.init_entry("x"), Some(Span::new(2, 2, 5)));
        assert_eq!(map.init_entry("y"), None);
    }
}
