//! # perple-model
//!
//! Data model for litmus tests as used by the PerpLE memory-consistency
//! testing suite (Melissaris et al., MICRO 2020).
//!
//! This crate provides:
//!
//! * the litmus-test AST ([`LitmusTest`], [`Instr`], [`Condition`]) together
//!   with a [builder](TestBuilder) for programmatic construction,
//! * a parser and printer for the litmus7 text format ([`parser`],
//!   [`printer`]),
//! * register-valuation [`Outcome`]s and outcome-space enumeration,
//! * happens-before graph construction and analysis ([`hb`]) following
//!   Alglave's `po`/`rf`/`ws`/`fr` edge taxonomy,
//! * the **perpetual litmus suite** of Table II of the paper plus the
//!   surrounding 88-test x86-TSO suite ([`suite`]).
//!
//! # Example
//!
//! ```
//! use perple_model::suite;
//!
//! let sb = suite::sb();
//! assert_eq!(sb.name(), "sb");
//! assert_eq!(sb.thread_count(), 2);
//! assert_eq!(sb.load_thread_count(), 2);
//! // The target outcome of sb requires store buffering: both loads read 0.
//! assert_eq!(sb.target().atoms().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
mod error;
pub mod generate;
pub mod hb;
mod ids;
mod instr;
pub mod parser;
pub mod printer;
pub mod span;
pub mod suite;
mod test;

pub use cond::{CondAtom, Condition, Outcome, Quantifier};
pub use error::ModelError;
pub use ids::{InstrRef, LocId, RegId, ThreadId};
pub use instr::Instr;
pub use span::{SourceMap, Span};
pub use test::{LitmusTest, LoadSlot, TestBuilder, ThreadBuilder};
