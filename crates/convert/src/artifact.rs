//! Stable serialization of conversion artifacts for content-addressed
//! caching.
//!
//! The campaign layer stores what the Converter produced for a test — the
//! per-thread perpetual assembly, the `t<i>_reads` parameter file, and the
//! generated `COUNT`/`COUNTH` C sources — in its artifact cache, keyed by a
//! fingerprint of the litmus source. [`ArtifactBundle`] gathers those
//! textual artifacts in one deterministic struct: every field is a pure
//! function of the conversion, so bundling the same test twice yields
//! byte-identical content (the property content addressing relies on).

use crate::{codegen, Conversion};

/// Everything the Converter emits for one test, in stable textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactBundle {
    /// Perpetual test name (the litmus test's name plus `.perp`).
    pub name: String,
    /// Target outcome label shared by `p_out` and `p_out_h`.
    pub target_label: String,
    /// Per-thread x86 assembly of the perpetual program.
    pub thread_asm: Vec<String>,
    /// The `t<i>_reads` parameter file.
    pub params: String,
    /// Generated C source of the exhaustive counter (`COUNT`).
    pub count_c: String,
    /// Generated C source of the heuristic counter (`COUNTH`).
    pub counth_c: String,
}

impl ArtifactBundle {
    /// Bundles the textual artifacts of a conversion.
    pub fn from_conversion(conv: &Conversion) -> Self {
        Self {
            name: conv.perpetual.name().to_owned(),
            target_label: conv.target_exhaustive.label().to_owned(),
            thread_asm: codegen::emit_thread_asm(&conv.perpetual),
            params: codegen::emit_params(&conv.perpetual),
            count_c: codegen::emit_count_c(
                &conv.perpetual,
                std::slice::from_ref(&conv.target_exhaustive),
            ),
            counth_c: codegen::emit_counth_c(
                &conv.perpetual,
                std::slice::from_ref(&conv.target_heuristic),
            ),
        }
    }

    /// One flat text document containing every artifact, with `====`
    /// section markers (the same shapes `perple convert` prints). Pure
    /// function of the bundle — byte-identical across processes.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "==== test {} (target {}) ====\n",
            self.name, self.target_label
        ));
        for (t, asm) in self.thread_asm.iter().enumerate() {
            s.push_str(&format!("==== thread {t} ====\n{asm}"));
            if !asm.ends_with('\n') {
                s.push('\n');
            }
        }
        s.push_str(&format!("==== params ====\n{}", self.params));
        if !self.params.ends_with('\n') {
            s.push('\n');
        }
        s.push_str(&format!("==== COUNT.c ====\n{}", self.count_c));
        if !self.count_c.ends_with('\n') {
            s.push('\n');
        }
        s.push_str(&format!("==== COUNTH.c ====\n{}", self.counth_c));
        if !self.counth_c.ends_with('\n') {
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn bundling_is_deterministic() {
        let t = suite::sb();
        let a = ArtifactBundle::from_conversion(&Conversion::convert(&t).unwrap());
        let b = ArtifactBundle::from_conversion(&Conversion::convert(&t).unwrap());
        assert_eq!(a, b);
        assert_eq!(a.render_text(), b.render_text());
    }

    #[test]
    fn bundle_contains_every_artifact() {
        let t = suite::sb();
        let bundle = ArtifactBundle::from_conversion(&Conversion::convert(&t).unwrap());
        assert_eq!(bundle.name, "sb.perp");
        assert_eq!(bundle.thread_asm.len(), 2);
        let text = bundle.render_text();
        assert!(text.contains("==== thread 0 ===="));
        assert!(text.contains("t0_reads = 1"));
        assert!(text.contains("void COUNT("));
        assert!(text.contains("void COUNTH("));
    }
}
