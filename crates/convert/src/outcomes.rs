//! Perpetual outcomes: conversion steps 1–4 of §IV-A.
//!
//! An original outcome's register conditions become inequality conditions
//! over *frames* (tuples of one iteration index per load-performing thread):
//!
//! * `reg = v` with `v > 0` — the load read-from (rf) the unique store of
//!   `v`, so in perpetual form the loaded value must be a term of that
//!   store's sequence **at or after** the writer's frame iteration:
//!   `val ≡ a (mod k) && (val-a)/k >= idx_writer`.
//! * `reg = 0` — the load happened from-read-before (fr) every store to the
//!   location, so the loaded value must be **older** than each frame store:
//!   `val < k * idx_writer + a` for every storing instruction.
//!
//! Writers in load-performing threads use the frame's index directly;
//! writers in store-only threads (e.g. `mp`'s producer) have no frame slot
//! and are treated **existentially**: the frame matches if *some* iteration
//! of the store-only thread satisfies all its constraints, solved per frame
//! by interval intersection in O(1).

use std::collections::BTreeMap;

use perple_model::{LitmusTest, LoadSlot, Outcome, RegId, ThreadId};

use crate::kmap::KMap;
use crate::perpetual::PerpetualTest;
use crate::ConvertError;

/// Reference to an iteration index: a frame slot (load-performing thread)
/// or an existential variable (store-only thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxRef {
    /// Index of a load-performing thread within the frame tuple.
    Frame(usize),
    /// Index into the outcome's existential-variable list.
    Exist(usize),
}

/// Where a condition's loaded value lives: `buf[frame_pos][r_t * n + slot]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadRef {
    /// Frame position of the loading thread.
    pub frame_pos: usize,
    /// `r_t` of the loading thread.
    pub reads_per_iter: usize,
    /// Load ordinal within the iteration.
    pub slot: usize,
}

impl LoadRef {
    /// Reads the load's value for iteration `n` out of the thread's buffer.
    #[inline]
    pub fn value(&self, bufs: &[&[u64]], n: u64) -> u64 {
        bufs[self.frame_pos][self.reads_per_iter * n as usize + self.slot]
    }
}

/// One store's sequence parameters plus the index of the iteration it is
/// evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreTerm {
    /// Sequence stride.
    pub k: u64,
    /// Sequence offset.
    pub a: u64,
    /// Writer's iteration index.
    pub writer: IdxRef,
}

/// One converted condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerpCond {
    /// Read-from: `val ≡ a (mod k) && (val - a)/k >= idx(writer)`.
    Rf {
        /// The loaded value's location in the buffers.
        load: LoadRef,
        /// The store term read from.
        term: StoreTerm,
    },
    /// From-read: `val < k*idx + a` for every store to the location.
    Fr {
        /// The loaded value's location in the buffers.
        load: LoadRef,
        /// Every store instruction to the loaded location.
        terms: Vec<StoreTerm>,
    },
    /// Write serialization between two frame stores:
    /// `k_l*idx_l + a_l < k_r*idx_r + a_r`. Produced when a load reads past
    /// its own thread's program-order-earlier store (the own store must be
    /// ws-before the observed writer). `left` always references a
    /// load-performing (frame) thread.
    Ws {
        /// The ws-earlier store (own store of the reading thread).
        left: StoreTerm,
        /// The ws-later store (the observed writer).
        right: StoreTerm,
    },
}

impl PerpCond {
    /// The load the condition constrains (`None` for pure ws conditions).
    pub fn load(&self) -> Option<LoadRef> {
        match self {
            PerpCond::Rf { load, .. } | PerpCond::Fr { load, .. } => Some(*load),
            PerpCond::Ws { .. } => None,
        }
    }
}

/// A perpetual outcome: the conjunction of converted conditions, evaluable
/// on any frame (the `p_out` functions of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerpetualOutcome {
    label: String,
    conds: Vec<PerpCond>,
    exist_threads: Vec<ThreadId>,
    /// True if step 1's happens-before analysis already proves the outcome
    /// impossible (cyclic even within one thread): a load cannot read the
    /// initial value past an own earlier store (forwarding), nor read an
    /// own store that is program-order-later. Such outcomes evaluate to
    /// false on every frame.
    infeasible: bool,
}

impl PerpetualOutcome {
    /// Converts an original outcome (or partial condition) given as
    /// `(thread, reg, value)` atoms.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if an atom references a register no load
    /// writes, or a positive value no store produces.
    pub fn convert(
        test: &LitmusTest,
        perp: &PerpetualTest,
        kmap: &KMap,
        atoms: &[(ThreadId, RegId, u32)],
        label: String,
    ) -> Result<Self, ConvertError> {
        let slots = test.load_slots();
        let reads = test.reads_per_thread();
        let mut exist_threads: Vec<ThreadId> = Vec::new();
        let exist_of = |t: ThreadId, exist_threads: &mut Vec<ThreadId>| -> usize {
            if let Some(i) = exist_threads.iter().position(|&s| s == t) {
                i
            } else {
                exist_threads.push(t);
                exist_threads.len() - 1
            }
        };
        let mut conds = Vec::new();
        let mut infeasible = false;
        // Positive-valued reads, remembered for coherence (CoRR) edges:
        // (thread, load slot ordinal, location, writer instruction, load
        // ref, writer term).
        let mut corr_reads: Vec<(
            ThreadId,
            usize,
            perple_model::LocId,
            perple_model::InstrRef,
            LoadRef,
            StoreTerm,
        )> = Vec::new();
        for &(thread, reg, value) in atoms {
            let slot = last_load_of(&slots, thread, reg).ok_or(ConvertError::UnloadedRegister {
                thread: thread.index(),
                reg: reg.index(),
            })?;
            let load = LoadRef {
                frame_pos: perp
                    .frame_position(thread)
                    .expect("condition thread performs loads"),
                reads_per_iter: reads[thread.index()],
                slot: slot.slot,
            };
            let idx_for =
                |t: ThreadId, exist_threads: &mut Vec<ThreadId>| match perp.frame_position(t) {
                    Some(p) => IdxRef::Frame(p),
                    None => IdxRef::Exist(exist_of(t, exist_threads)),
                };
            if value > 0 {
                let asg = kmap.assignment(slot.loc, value).ok_or_else(|| {
                    ConvertError::NoWriterForValue {
                        loc: test.location_name(slot.loc).to_owned(),
                        value,
                    }
                })?;
                // Reading an own store that has not happened yet (po-later,
                // or the same locked instruction's own store) is impossible.
                if asg.thread == thread && asg.instr.index >= slot.instr_index {
                    infeasible = true;
                }
                let writer = idx_for(asg.thread, &mut exist_threads);
                let term = StoreTerm {
                    k: asg.k,
                    a: asg.a,
                    writer,
                };
                corr_reads.push((thread, slot.slot, slot.loc, asg.instr, load, term));
                conds.push(PerpCond::Rf { load, term });
                // Reading another instruction's value across an own store to
                // the same location implies write-serialization facts
                // (step 1's ws/fr edges): a program-order-earlier own store
                // is ws-before the observed writer; a program-order-later
                // own store overwrites the observed value (fr). Without
                // these, single-location tests like n5 would convert to
                // satisfiable conditions despite being TSO-forbidden.
                for (own_ref, own_val) in test.stores_to(slot.loc) {
                    if own_ref.thread != thread || own_ref == asg.instr {
                        continue;
                    }
                    let own = kmap
                        .assignment(slot.loc, own_val)
                        .expect("kmap covers every store");
                    let own_term = StoreTerm {
                        k: own.k,
                        a: own.a,
                        writer: IdxRef::Frame(load.frame_pos),
                    };
                    if own_ref.index < slot.instr_index {
                        conds.push(PerpCond::Ws {
                            left: own_term,
                            right: term,
                        });
                    } else {
                        conds.push(PerpCond::Fr {
                            load,
                            terms: vec![own_term],
                        });
                    }
                }
            } else {
                // Store forwarding makes the initial value unreadable once
                // an own earlier store targeted the same location.
                if test
                    .stores_to(slot.loc)
                    .iter()
                    .any(|(r, _)| r.thread == thread && r.index < slot.instr_index)
                {
                    infeasible = true;
                }
                let terms = kmap
                    .assignments_for(slot.loc)
                    .into_iter()
                    .map(|asg| StoreTerm {
                        k: asg.k,
                        a: asg.a,
                        writer: idx_for(asg.thread, &mut exist_threads),
                    })
                    .collect();
                conds.push(PerpCond::Fr { load, terms });
            }
        }
        // Coherence (CoRR) fr edges (paper §IV-A, step 1): two program-order
        // reads of the same location within one thread observe ws-ordered
        // stores, so the earlier read is fr-before the later read's writer.
        // Without these edges, write-serialization disagreements (co-iriw)
        // would convert to vacuously satisfiable conditions.
        for (i, a) in corr_reads.iter().enumerate() {
            for b in &corr_reads[i + 1..] {
                if a.0 != b.0 || a.2 != b.2 || a.3 == b.3 || a.1 == b.1 {
                    continue;
                }
                let (early, late) = if a.1 < b.1 { (a, b) } else { (b, a) };
                conds.push(PerpCond::Fr {
                    load: early.4,
                    terms: vec![late.5],
                });
            }
        }
        Ok(Self {
            label,
            conds,
            exist_threads,
            infeasible,
        })
    }

    /// Converts the test's own (target) condition.
    ///
    /// # Errors
    /// See [`PerpetualOutcome::convert`]; additionally fails on
    /// memory-inspecting conditions via the caller's conversion pipeline.
    pub fn convert_target(
        test: &LitmusTest,
        perp: &PerpetualTest,
        kmap: &KMap,
    ) -> Result<Self, ConvertError> {
        if test.target().inspects_memory() {
            return Err(ConvertError::MemoryCondition);
        }
        let atoms: Vec<_> = test.target().reg_atoms().collect();
        Self::convert(test, perp, kmap, &atoms, "target".to_owned())
    }

    /// Converts a complete register [`Outcome`].
    ///
    /// # Errors
    /// See [`PerpetualOutcome::convert`].
    pub fn convert_outcome(
        test: &LitmusTest,
        perp: &PerpetualTest,
        kmap: &KMap,
        outcome: &Outcome,
    ) -> Result<Self, ConvertError> {
        let atoms: Vec<_> = outcome.iter().collect();
        Self::convert(test, perp, kmap, &atoms, outcome.label())
    }

    /// Display label (original outcome label or `"target"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The converted conditions.
    pub fn conds(&self) -> &[PerpCond] {
        &self.conds
    }

    /// True if the outcome is impossible by construction (see the field
    /// documentation); `eval_frame` is then constantly false.
    pub fn is_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Store-only threads referenced existentially, in variable order.
    pub fn exist_threads(&self) -> &[ThreadId] {
        &self.exist_threads
    }

    /// Evaluates the outcome on one frame (`p_out` of the paper).
    ///
    /// `frame` holds one iteration index per load-performing thread (frame
    /// order); `bufs` the corresponding result buffers; `n_iters` the run
    /// length `N`, bounding existential writer iterations.
    pub fn eval_frame(&self, frame: &[u64], bufs: &[&[u64]], n_iters: u64) -> bool {
        debug_assert!(!frame.is_empty());
        if n_iters == 0 || self.infeasible {
            return false;
        }
        // Existential interval per variable: [lo, hi] over 0..N-1.
        let mut lo = vec![0u64; self.exist_threads.len()];
        let mut hi = vec![n_iters - 1; self.exist_threads.len()];

        for cond in &self.conds {
            if let PerpCond::Ws { left, right } = cond {
                let IdxRef::Frame(lp) = left.writer else {
                    unreachable!("ws left side is a frame store")
                };
                let lval = left.k * frame[lp] + left.a;
                match right.writer {
                    IdxRef::Frame(p) => {
                        if lval >= right.k * frame[p] + right.a {
                            return false;
                        }
                    }
                    IdxRef::Exist(e) => {
                        lo[e] = lo[e].max(fr_lower_bound(right.k, right.a, lval));
                    }
                }
                continue;
            }
            let load = cond.load().expect("rf/fr conditions carry a load");
            let val = load.value(bufs, frame[load.frame_pos]);
            match cond {
                PerpCond::Rf { term, .. } => {
                    let m = match KMap::decode(term.k, term.a, val) {
                        Some(m) => m,
                        None => return false,
                    };
                    match term.writer {
                        IdxRef::Frame(p) => {
                            if m < frame[p] {
                                return false;
                            }
                        }
                        IdxRef::Exist(e) => hi[e] = hi[e].min(m),
                    }
                }
                PerpCond::Fr { terms, .. } => {
                    for term in terms {
                        // val < k*idx + a  ⇔  idx > (val - a)/k.
                        let min_idx = fr_lower_bound(term.k, term.a, val);
                        match term.writer {
                            IdxRef::Frame(p) => {
                                if frame[p] < min_idx {
                                    return false;
                                }
                            }
                            IdxRef::Exist(e) => lo[e] = lo[e].max(min_idx),
                        }
                    }
                }
                PerpCond::Ws { .. } => unreachable!("handled above"),
            }
        }
        lo.iter().zip(&hi).all(|(l, h)| l <= h)
    }
}

/// Smallest `idx` with `val < k*idx + a` (the fr feasibility bound).
///
/// Public because the reads-from counter (`perple-analysis`) compiles fr
/// and ws conditions into threshold features using exactly this bound; the
/// two implementations must agree bit for bit.
#[inline]
pub fn fr_lower_bound(k: u64, a: u64, val: u64) -> u64 {
    if val < a {
        0
    } else {
        (val - a) / k + 1
    }
}

/// The last load of thread `t` targeting register `r` (its final value).
pub(crate) fn last_load_of(slots: &[LoadSlot], t: ThreadId, r: RegId) -> Option<LoadSlot> {
    slots.iter().rfind(|s| s.thread == t && s.reg == r).copied()
}

/// Converts every possible outcome of a test (outcome-variety analysis,
/// Figure 13), in canonical label order.
///
/// # Errors
/// Propagates conversion errors from [`PerpetualOutcome::convert_outcome`].
pub fn convert_all_outcomes(
    test: &LitmusTest,
    perp: &PerpetualTest,
    kmap: &KMap,
) -> Result<Vec<PerpetualOutcome>, ConvertError> {
    let mut out = Vec::new();
    let mut seen = BTreeMap::new();
    for o in test.possible_outcomes() {
        // Skip outcomes a locked RMW makes structurally impossible: a
        // register fed only by an XCHG cannot observe the XCHG's own value.
        if !xchg_feasible(test, &o) {
            continue;
        }
        // Clobbered registers (two loads, one register) make distinct slot
        // valuations collapse to one register outcome; keep the first.
        if seen.insert(o.label(), ()).is_some() {
            continue;
        }
        let po = PerpetualOutcome::convert_outcome(test, perp, kmap, &o)?;
        out.push(po);
    }
    debug_assert_eq!(seen.len(), out.len());
    Ok(out)
}

/// False if the outcome requires an XCHG to read its own stored value.
fn xchg_feasible(test: &LitmusTest, outcome: &Outcome) -> bool {
    for (t, instrs) in test.threads().iter().enumerate() {
        for instr in instrs {
            if let perple_model::Instr::Xchg { reg, value, .. } = instr {
                if outcome.get(ThreadId(t as u8), *reg) == Some(*value) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    struct Fixture {
        test: perple_model::LitmusTest,
        perp: PerpetualTest,
        kmap: KMap,
    }

    fn fixture(test: perple_model::LitmusTest) -> Fixture {
        let kmap = KMap::compute(&test).unwrap();
        let perp = PerpetualTest::convert(&test).unwrap();
        Fixture { test, perp, kmap }
    }

    fn sb_outcomes(f: &Fixture) -> Vec<PerpetualOutcome> {
        convert_all_outcomes(&f.test, &f.perp, &f.kmap).unwrap()
    }

    /// Figure 6 golden check: the four sb perpetual outcomes evaluated on
    /// hand-built buffers.
    #[test]
    fn sb_matches_figure_6() {
        let f = fixture(suite::sb());
        let outcomes = sb_outcomes(&f);
        assert_eq!(outcomes.len(), 4);
        let labels: Vec<&str> = outcomes.iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["00", "01", "10", "11"]);

        // Construct buffers for N=3 where iteration pairs realize known
        // relationships. buf0[n] is the y-value thread 0 loaded in its
        // iteration n; buf1[m] the x-value thread 1 loaded.
        // Frame (n=1, m=1) with buf0[1]=1, buf1[1]=1:
        //   p_out_0: buf0[1] <= 1 && buf1[1] <= 1  → true  (00)
        //   p_out_3: buf0[1] >= 2 && buf1[1] >= 2  → false (11)
        let b0: Vec<u64> = vec![0, 1, 3];
        let b1: Vec<u64> = vec![0, 1, 3];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let n = 3;
        assert!(outcomes[0].eval_frame(&[1, 1], &bufs, n)); // 00
        assert!(!outcomes[3].eval_frame(&[1, 1], &bufs, n)); // 11
                                                             // Frame (2, 2): buf0[2]=3 >= m+1=3 and buf1[2]=3 >= n+1=3 → 11.
        assert!(outcomes[3].eval_frame(&[2, 2], &bufs, n));
        assert!(!outcomes[0].eval_frame(&[2, 2], &bufs, n));
        // Frame (0, 0): both read 0 → 00.
        assert!(outcomes[0].eval_frame(&[0, 0], &bufs, n));
        // Asymmetric frame (2, 0): buf0[2]=3 >= 0+1 (rf from m=0's store or
        // later) and buf1[0]=0 <= 2 → outcome 10.
        assert!(outcomes[2].eval_frame(&[2, 0], &bufs, n));
        assert!(!outcomes[1].eval_frame(&[2, 0], &bufs, n));
    }

    #[test]
    fn target_conversion_of_sb_is_the_00_outcome() {
        let f = fixture(suite::sb());
        let target = PerpetualOutcome::convert_target(&f.test, &f.perp, &f.kmap).unwrap();
        assert_eq!(target.conds().len(), 2);
        assert!(target.exist_threads().is_empty());
        assert!(target
            .conds()
            .iter()
            .all(|c| matches!(c, PerpCond::Fr { .. })));
    }

    #[test]
    fn mp_uses_an_existential_writer_index() {
        // mp's producer performs no loads: both conditions reference its
        // iteration existentially, and both conditions must agree on it.
        let f = fixture(suite::mp());
        let target = PerpetualOutcome::convert_target(&f.test, &f.perp, &f.kmap).unwrap();
        assert_eq!(target.exist_threads(), &[ThreadId(0)]);
        assert_eq!(target.conds().len(), 2);

        // Thread 1 bufs: [EAX(y), EBX(x)] per iteration (r_t = 2).
        // Iteration 0: read y=5 (producer iteration 4) and x=3 (producer
        // iteration 2 < 4): the mp violation would need x-read < y-iter:
        // rf y: m <= 4; fr x: val(3) < m + 1 → m >= 3. Interval [3,4]
        // non-empty → target matches (store buffering of the producer
        // would be required on hardware; here we only test the algebra).
        let b1: Vec<u64> = vec![5, 3];
        let bufs: Vec<&[u64]> = vec![&b1];
        assert!(target.eval_frame(&[0], &bufs, 10));

        // Reading y=5 and x=5 means x is NOT older than the y-iteration:
        // fr x needs m >= 5 but rf y needs m <= 4 → empty interval.
        let b2: Vec<u64> = vec![5, 5];
        let bufs2: Vec<&[u64]> = vec![&b2];
        assert!(!target.eval_frame(&[0], &bufs2, 10));
    }

    #[test]
    fn existential_bounded_by_run_length() {
        let f = fixture(suite::mp());
        let target = PerpetualOutcome::convert_target(&f.test, &f.perp, &f.kmap).unwrap();
        // fr x demands producer iteration >= 7, but the run only has 5
        // iterations → infeasible.
        let b: Vec<u64> = vec![8, 7];
        let bufs: Vec<&[u64]> = vec![&b];
        assert!(!target.eval_frame(&[0], &bufs, 5));
        assert!(target.eval_frame(&[0], &bufs, 10));
    }

    #[test]
    fn rf_requires_matching_residue() {
        // n5: x has k=2; thread 0 stores 2n+1, thread 1 stores 2n+2.
        // Thread 0's condition EAX=2 means rf from thread 1's sequence:
        // even values only.
        // Single condition of n5: thread 0 reads 2 (thread 1's sequence,
        // even values).
        let f = fixture(suite::n5());
        let cond = PerpetualOutcome::convert(
            &f.test,
            &f.perp,
            &f.kmap,
            &[(ThreadId(0), perple_model::RegId(0), 2)],
            "partial".into(),
        )
        .unwrap();
        let b0: Vec<u64> = vec![0, 4]; // iteration 1 reads 4: even, thread 1's iter 1 ✓
        let b1: Vec<u64> = vec![0, 3];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        assert!(cond.eval_frame(&[1, 1], &bufs, 10));
        // Wrong residue: thread 0 loading an odd value cannot be rf from
        // thread 1.
        let b0bad: Vec<u64> = vec![0, 3];
        let bufsbad: Vec<&[u64]> = vec![&b0bad, &b1];
        assert!(!cond.eval_frame(&[1, 1], &bufsbad, 10));

        // The full n5 target is write-serialization-contradictory: no frame
        // and no buffer contents can satisfy it (the ws edges of step 1).
        let target = PerpetualOutcome::convert_target(&f.test, &f.perp, &f.kmap).unwrap();
        for n0 in 0..3u64 {
            for n1 in 0..3u64 {
                let c0: Vec<u64> = vec![2, 4, 6];
                let c1: Vec<u64> = vec![1, 3, 5];
                let cufs: Vec<&[u64]> = vec![&c0, &c1];
                assert!(
                    !target.eval_frame(&[n0, n1], &cufs, 3),
                    "n5 target matched frame ({n0},{n1})"
                );
            }
        }
    }

    #[test]
    fn rf_from_frame_writer_requires_at_or_after() {
        let f = fixture(suite::sb());
        let outcomes = sb_outcomes(&f);
        // Outcome "01": buf1[m] must be >= n+1 (rf at-or-after n).
        let b0: Vec<u64> = vec![0, 0];
        let b1: Vec<u64> = vec![1, 2];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        // frame (n=1, m=0): buf1[0]=1 < n+1=2 → rf violated.
        assert!(!outcomes[1].eval_frame(&[1, 0], &bufs, 2));
        // frame (n=0, m=1): buf1[1]=2 >= 1 ✓ and buf0[0]=0 <= 1 ✓.
        assert!(outcomes[1].eval_frame(&[0, 1], &bufs, 2));
    }

    #[test]
    fn condition_on_unloaded_register_errors() {
        let f = fixture(suite::sb());
        let err = PerpetualOutcome::convert(
            &f.test,
            &f.perp,
            &f.kmap,
            &[(ThreadId(0), RegId(5), 0)],
            "bad".into(),
        )
        .unwrap_err();
        assert!(matches!(err, ConvertError::UnloadedRegister { .. }));
    }

    #[test]
    fn unknown_value_errors() {
        let f = fixture(suite::sb());
        let err = PerpetualOutcome::convert(
            &f.test,
            &f.perp,
            &f.kmap,
            &[(ThreadId(0), RegId(0), 9)],
            "bad".into(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ConvertError::NoWriterForValue {
                loc: "y".into(),
                value: 9
            }
        );
    }

    #[test]
    fn convert_all_outcomes_skips_xchg_self_reads() {
        let f = fixture(suite::amd10());
        let outcomes = convert_all_outcomes(&f.test, &f.perp, &f.kmap).unwrap();
        // 4 registers with 2 values each = 16 raw outcomes; the two XCHG
        // registers can only read 0 → 4 remain.
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn whole_convertible_suite_converts_targets_and_outcome_spaces() {
        for t in suite::convertible() {
            let f = fixture(t);
            let target = PerpetualOutcome::convert_target(&f.test, &f.perp, &f.kmap)
                .unwrap_or_else(|e| panic!("{}: {e}", f.test.name()));
            assert!(!target.conds().is_empty(), "{}", f.test.name());
            let all = convert_all_outcomes(&f.test, &f.perp, &f.kmap)
                .unwrap_or_else(|e| panic!("{}: {e}", f.test.name()));
            assert!(!all.is_empty(), "{}", f.test.name());
        }
    }

    #[test]
    fn fr_lower_bound_math() {
        assert_eq!(fr_lower_bound(1, 1, 0), 0); // 0 < m+1 for all m>=0
        assert_eq!(fr_lower_bound(1, 1, 1), 1); // 1 < m+1 → m>=1
        assert_eq!(fr_lower_bound(1, 1, 5), 5);
        assert_eq!(fr_lower_bound(2, 1, 5), 3); // 5 < 2m+1 → m>=3
        assert_eq!(fr_lower_bound(2, 2, 5), 2); // 5 < 2m+2 → m>=2
    }
}
