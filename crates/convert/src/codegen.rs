//! Textual artifact emission: the files the paper's Converter writes.
//!
//! The PerpLE Converter emits (§V-A):
//!
//! 1. one **x86 assembly file per test thread** — the perpetual loop body
//!    with sequence arithmetic, set-up and clean-up;
//! 2. two **C files** with the exhaustive (`COUNT`) and heuristic
//!    (`COUNTH`) outcome counters, the generic Algorithms 1 and 2 with the
//!    `p_out`/`p_out_h` bodies inlined;
//! 3. a **parameters file** with `t<i>_reads` for the Harness's `buf`
//!    allocation.
//!
//! This reproduction executes through compiled Rust equivalents
//! (`perple-analysis`), but the textual artifacts are emitted faithfully so
//! the tool suite's outputs match the paper's description.

use std::fmt::Write as _;

use perple_model::ThreadId;

use crate::heuristic::{DeriveRule, HeuristicOutcome};
use crate::outcomes::{IdxRef, PerpCond, PerpetualOutcome};
use crate::perpetual::{PerpInstr, PerpetualTest};

/// Emits one x86-64 assembly file (Intel syntax) per thread of a perpetual
/// test.
///
/// Calling convention of the emitted routine `perp_thread_<t>`:
/// `rdi` = iteration count `N`, `rsi` = pointer to `buf_t` (may be null for
/// store-only threads), and the shared locations live at the global symbols
/// named after the test's locations. `r8` is the iteration index `n_t`.
pub fn emit_thread_asm(perp: &PerpetualTest) -> Vec<String> {
    perp.threads()
        .iter()
        .enumerate()
        .map(|(t, body)| {
            let mut s = String::new();
            let _ = writeln!(s, "; perpetual litmus thread {t} of {}", perp.name());
            let _ = writeln!(s, "; rdi = N, rsi = buf_{t}, r8 = n_{t}");
            let _ = writeln!(s, "global perp_thread_{t}");
            let _ = writeln!(s, "section .text");
            let _ = writeln!(s, "perp_thread_{t}:");
            let _ = writeln!(s, "    xor r8, r8            ; n_{t} = 0");
            let _ = writeln!(s, "    xor r9, r9            ; buf write cursor");
            let _ = writeln!(s, ".loop:");
            let _ = writeln!(s, "    cmp r8, rdi");
            let _ = writeln!(s, "    jge .done");
            let mut reg_cursor = 0usize;
            for instr in body {
                match *instr {
                    PerpInstr::Store { loc, k, a } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(s, "    ; [{name}] <- {k}*n+{a}");
                        let _ = writeln!(s, "    lea rax, [r8*{k} + {a}]");
                        let _ = writeln!(s, "    mov [rel {name}], rax");
                    }
                    PerpInstr::Load { reg, loc } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(s, "    ; reg{} <- [{name}]", reg.index());
                        let _ = writeln!(s, "    mov r1{}, [rel {name}]", reg.index());
                        reg_cursor = reg_cursor.max(reg.index() + 1);
                    }
                    PerpInstr::Mfence => {
                        let _ = writeln!(s, "    mfence");
                    }
                    PerpInstr::Xchg { reg, loc, k, a } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(s, "    ; xchg [{name}], {k}*n+{a} -> reg{}", reg.index());
                        let _ = writeln!(s, "    lea r1{}, [r8*{k} + {a}]", reg.index());
                        let _ = writeln!(s, "    xchg [rel {name}], r1{}", reg.index());
                        reg_cursor = reg_cursor.max(reg.index() + 1);
                    }
                }
            }
            if perp.reads_per_thread()[t] > 0 {
                let _ = writeln!(
                    s,
                    "    ; buf_{t}[{}*n+i] <- reg_i",
                    perp.reads_per_thread()[t]
                );
                for i in 0..perp.reads_per_thread()[t] {
                    let _ = writeln!(s, "    mov [rsi + r9*8 + {}], r1{}", i * 8, i);
                }
                let _ = writeln!(s, "    add r9, {}", perp.reads_per_thread()[t]);
            }
            let _ = reg_cursor;
            let _ = writeln!(s, "    inc r8");
            let _ = writeln!(s, "    jmp .loop");
            let _ = writeln!(s, ".done:");
            let _ = writeln!(s, "    ret");
            s
        })
        .collect()
}

/// Emits one AArch64 assembly file per thread of a perpetual test.
///
/// §V-A: "one could easily adapt the process to different ISAs by providing
/// the Converter with the instructions for loads, stores and fences in the
/// corresponding assembly language" — this is that adaptation. `MFENCE`
/// maps to `dmb ish`; the locked exchange maps to a load/store-exclusive
/// retry loop followed by `dmb ish` (the x86 `LOCK` semantics are a full
/// barrier). Calling convention mirrors the x86 emitter: `x0` = N, `x1` =
/// `buf_t`, `x9` = iteration index.
///
/// Note: a perpetual test emitted for AArch64 exercises that machine's own
/// (weaker) model; the x86-TSO outcome conversion stays valid because the
/// conditions only assume value uniqueness, not TSO.
pub fn emit_thread_asm_aarch64(perp: &PerpetualTest) -> Vec<String> {
    perp.threads()
        .iter()
        .enumerate()
        .map(|(t, body)| {
            let mut s = String::new();
            let _ = writeln!(
                s,
                "// perpetual litmus thread {t} of {} (aarch64)",
                perp.name()
            );
            let _ = writeln!(s, "// x0 = N, x1 = buf_{t}, x9 = n_{t}");
            let _ = writeln!(s, ".global perp_thread_{t}");
            let _ = writeln!(s, "perp_thread_{t}:");
            let _ = writeln!(s, "    mov x9, #0");
            let _ = writeln!(s, "    mov x10, #0            // buf cursor");
            let _ = writeln!(s, "1:  cmp x9, x0");
            let _ = writeln!(s, "    b.ge 9f");
            for instr in body {
                match *instr {
                    PerpInstr::Store { loc, k, a } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(s, "    // [{name}] <- {k}*n+{a}");
                        if k == 1 {
                            let _ = writeln!(s, "    add x2, x9, #{a}");
                        } else {
                            let _ = writeln!(s, "    mov x3, #{k}");
                            let _ = writeln!(s, "    mul x2, x9, x3");
                            let _ = writeln!(s, "    add x2, x2, #{a}");
                        }
                        let _ = writeln!(s, "    adrp x4, {name}");
                        let _ = writeln!(s, "    str x2, [x4, :lo12:{name}]");
                    }
                    PerpInstr::Load { reg, loc } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(s, "    // reg{} <- [{name}]", reg.index());
                        let _ = writeln!(s, "    adrp x4, {name}");
                        let _ = writeln!(s, "    ldr x1{}, [x4, :lo12:{name}]", reg.index());
                    }
                    PerpInstr::Mfence => {
                        let _ = writeln!(s, "    dmb ish");
                    }
                    PerpInstr::Xchg { reg, loc, k, a } => {
                        let name = &perp.locations()[loc.index()];
                        let _ = writeln!(
                            s,
                            "    // swap [{name}] <- {k}*n+{a}, old -> reg{}",
                            reg.index()
                        );
                        let _ = writeln!(s, "    mov x3, #{k}");
                        let _ = writeln!(s, "    mul x2, x9, x3");
                        let _ = writeln!(s, "    add x2, x2, #{a}");
                        let _ = writeln!(s, "    adrp x4, {name}");
                        let _ = writeln!(s, "    add x4, x4, :lo12:{name}");
                        let _ = writeln!(s, "2:  ldxr x1{}, [x4]", reg.index());
                        let _ = writeln!(s, "    stxr w5, x2, [x4]");
                        let _ = writeln!(s, "    cbnz w5, 2b");
                        let _ = writeln!(s, "    dmb ish");
                    }
                }
            }
            if perp.reads_per_thread()[t] > 0 {
                let _ = writeln!(
                    s,
                    "    // buf_{t}[{}*n+i] <- reg_i",
                    perp.reads_per_thread()[t]
                );
                for i in 0..perp.reads_per_thread()[t] {
                    let _ = writeln!(s, "    str x1{i}, [x1, x10, lsl #3]");
                    let _ = writeln!(s, "    add x10, x10, #1");
                }
            }
            let _ = writeln!(s, "    add x9, x9, #1");
            let _ = writeln!(s, "    b 1b");
            let _ = writeln!(s, "9:  ret");
            s
        })
        .collect()
}

/// Emits the parameter file with `t<i>_reads` values (§V-A).
pub fn emit_params(perp: &PerpetualTest) -> String {
    let mut s = String::new();
    for (t, r) in perp.reads_per_thread().iter().enumerate() {
        let _ = writeln!(s, "t{t}_reads = {r}");
    }
    s
}

fn idx_expr(idx: IdxRef, exist_names: &[String]) -> String {
    match idx {
        IdxRef::Frame(p) => format!("n{p}"),
        IdxRef::Exist(e) => exist_names[e].clone(),
    }
}

fn cond_expr(cond: &PerpCond, exist_names: &[String]) -> String {
    if let PerpCond::Ws { left, right } = cond {
        return format!(
            "({kl} * ({il}) + {al} < {kr} * ({ir}) + {ar})",
            kl = left.k,
            al = left.a,
            il = idx_expr(left.writer, exist_names),
            kr = right.k,
            ar = right.a,
            ir = idx_expr(right.writer, exist_names),
        );
    }
    let load = cond.load().expect("rf/fr conditions carry a load");
    let val = format!(
        "buf{}[{} * n{} + {}]",
        load.frame_pos, load.reads_per_iter, load.frame_pos, load.slot
    );
    match cond {
        PerpCond::Rf { term, .. } => {
            let idx = idx_expr(term.writer, exist_names);
            format!(
                "({val} >= {k} * ({idx}) + {a} && ({val} - {a}) % {k} == 0)",
                k = term.k,
                a = term.a
            )
        }
        PerpCond::Fr { terms, .. } => terms
            .iter()
            .map(|t| {
                format!(
                    "({val} < {k} * ({idx}) + {a})",
                    k = t.k,
                    a = t.a,
                    idx = idx_expr(t.writer, exist_names)
                )
            })
            .collect::<Vec<_>>()
            .join(" && "),
        PerpCond::Ws { .. } => unreachable!("handled above"),
    }
}

/// Emits the C source of the exhaustive outcome counter (`COUNT`,
/// Algorithm 1) for a set of perpetual outcomes of interest.
///
/// Existential writer indices (store-only threads) appear as an inner
/// feasibility search, written as a `for` scan for readability.
pub fn emit_count_c(perp: &PerpetualTest, outcomes: &[PerpetualOutcome]) -> String {
    let tl = perp.load_thread_count();
    let mut s = String::new();
    let _ = writeln!(s, "/* exhaustive outcome counter for {} */", perp.name());
    let _ = writeln!(s, "#include <stdint.h>");
    let bufs: Vec<String> = (0..tl).map(|i| format!("const uint64_t *buf{i}")).collect();
    let _ = writeln!(
        s,
        "void COUNT(uint64_t N, {}, uint64_t counts[{}]) {{",
        bufs.join(", "),
        outcomes.len()
    );
    for o in 0..outcomes.len() {
        let _ = writeln!(s, "    counts[{o}] = 0;");
    }
    for p in 0..tl {
        let indent = "    ".repeat(p + 1);
        let _ = writeln!(s, "{indent}for (uint64_t n{p} = 0; n{p} < N; n{p}++) {{");
    }
    let indent = "    ".repeat(tl + 1);
    for (o, outcome) in outcomes.iter().enumerate() {
        let exist_names: Vec<String> = outcome
            .exist_threads()
            .iter()
            .map(|t: &ThreadId| format!("m{}", t.0))
            .collect();
        let keyword = if o == 0 { "if" } else { "else if" };
        if exist_names.is_empty() {
            let body: Vec<String> = outcome
                .conds()
                .iter()
                .map(|c| cond_expr(c, &exist_names))
                .collect();
            let _ = writeln!(
                s,
                "{indent}{keyword} ({}) /* p_out_{o}: {} */",
                body.join(" && "),
                outcome.label()
            );
            let _ = writeln!(s, "{indent}    counts[{o}]++;");
        } else {
            // Existential feasibility scan.
            let _ = writeln!(
                s,
                "{indent}{keyword} (({{ int hit = 0; /* p_out_{o}: {} */",
                outcome.label()
            );
            for e in &exist_names {
                let _ = writeln!(
                    s,
                    "{indent}    for (uint64_t {e} = 0; {e} < N && !hit; {e}++)"
                );
            }
            let body: Vec<String> = outcome
                .conds()
                .iter()
                .map(|c| cond_expr(c, &exist_names))
                .collect();
            let _ = writeln!(s, "{indent}        if ({}) hit = 1;", body.join(" && "));
            let _ = writeln!(s, "{indent}    hit; }}))");
            let _ = writeln!(s, "{indent}    counts[{o}]++;");
        }
    }
    for p in (0..tl).rev() {
        let indent = "    ".repeat(p + 1);
        let _ = writeln!(s, "{indent}}}");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Emits the C source of the heuristic outcome counter (`COUNTH`,
/// Algorithm 2).
pub fn emit_counth_c(perp: &PerpetualTest, outcomes: &[HeuristicOutcome]) -> String {
    let tl = perp.load_thread_count();
    let mut s = String::new();
    let _ = writeln!(s, "/* heuristic outcome counter for {} */", perp.name());
    let _ = writeln!(s, "#include <stdint.h>");
    let bufs: Vec<String> = (0..tl).map(|i| format!("const uint64_t *buf{i}")).collect();
    let _ = writeln!(
        s,
        "void COUNTH(uint64_t N, {}, uint64_t counts[{}]) {{",
        bufs.join(", "),
        outcomes.len()
    );
    for o in 0..outcomes.len() {
        let _ = writeln!(s, "    counts[{o}] = 0;");
    }
    let _ = writeln!(s, "    for (uint64_t n0 = 0; n0 < N; n0++) {{");
    for (o, h) in outcomes.iter().enumerate() {
        let keyword = if o == 0 { "if" } else { "else if" };
        let _ = writeln!(
            s,
            "        {keyword} (p_out_h_{o}(n0, N{})) /* {} */",
            (0..tl).map(|i| format!(", buf{i}")).collect::<String>(),
            h.label()
        );
        let _ = writeln!(s, "            counts[{o}]++;");
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "}}");
    // Emit each p_out_h as its own function with the derivation plan.
    for (o, h) in outcomes.iter().enumerate() {
        let _ = writeln!(
            s,
            "static int p_out_h_{o}(uint64_t n0, uint64_t N{}) {{",
            (0..tl)
                .map(|i| format!(", const uint64_t *buf{i}"))
                .collect::<String>()
        );
        for d in h.plan() {
            let target = match d.target {
                IdxRef::Frame(p) => format!("n{p}"),
                IdxRef::Exist(e) => format!("m{e}"),
            };
            match d.rule {
                DeriveRule::FromRf { load, k, a } => {
                    let val = format!(
                        "buf{}[{} * n{} + {}]",
                        load.frame_pos, load.reads_per_iter, load.frame_pos, load.slot
                    );
                    let _ = writeln!(
                        s,
                        "    if ({val} < {a} || ({val} - {a}) % {k} != 0) return 0;"
                    );
                    let _ = writeln!(s, "    uint64_t {target} = ({val} - {a}) / {k};");
                }
                DeriveRule::FromFr { load, k, a } => {
                    let val = format!(
                        "buf{}[{} * n{} + {}]",
                        load.frame_pos, load.reads_per_iter, load.frame_pos, load.slot
                    );
                    let _ = writeln!(
                        s,
                        "    uint64_t {target} = {val} < {a} ? 0 : ({val} - {a}) / {k} + 1;"
                    );
                }
                DeriveRule::Lockstep => {
                    let _ = writeln!(s, "    uint64_t {target} = n0;");
                }
            }
            let _ = writeln!(s, "    if ({target} >= N) return 0;");
        }
        let exist_names: Vec<String> = (0..h.exist_count()).map(|e| format!("m{e}")).collect();
        for cond in heuristic_conds(h) {
            let _ = writeln!(s, "    if (!{}) return 0;", cond_expr(&cond, &exist_names));
        }
        let _ = writeln!(s, "    return 1;");
        let _ = writeln!(s, "}}");
    }
    s
}

fn heuristic_conds(h: &HeuristicOutcome) -> Vec<PerpCond> {
    // The conditions re-checked after derivation are the outcome's own.
    h.conds_for_codegen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmap::KMap;
    use crate::outcomes::convert_all_outcomes;
    use perple_model::suite;

    fn sb_parts() -> (PerpetualTest, Vec<PerpetualOutcome>) {
        let t = suite::sb();
        let kmap = KMap::compute(&t).unwrap();
        let perp = PerpetualTest::convert(&t).unwrap();
        let outcomes = convert_all_outcomes(&t, &perp, &kmap).unwrap();
        (perp, outcomes)
    }

    #[test]
    fn asm_contains_sequence_arithmetic() {
        let (perp, _) = sb_parts();
        let files = emit_thread_asm(&perp);
        assert_eq!(files.len(), 2);
        assert!(files[0].contains("lea rax, [r8*1 + 1]"));
        assert!(files[0].contains("mov [rel x], rax"));
        assert!(files[0].contains("mov r10, [rel y]"));
        assert!(files[0].contains("perp_thread_0"));
    }

    #[test]
    fn asm_of_fenced_test_contains_mfence() {
        let t = suite::amd5();
        let perp = PerpetualTest::convert(&t).unwrap();
        let files = emit_thread_asm(&perp);
        assert!(files[0].contains("mfence"));
        assert!(files[1].contains("mfence"));
    }

    #[test]
    fn aarch64_asm_contains_sequence_arithmetic_and_barriers() {
        let (perp, _) = sb_parts();
        let files = emit_thread_asm_aarch64(&perp);
        assert_eq!(files.len(), 2);
        assert!(files[0].contains("add x2, x9, #1"), "{}", files[0]);
        assert!(files[0].contains("str x2, [x4, :lo12:x]"));
        assert!(files[0].contains("ldr x10, [x4, :lo12:y]"));
        assert!(files[0].contains("ret"));
    }

    #[test]
    fn aarch64_fences_and_locked_ops_map_to_dmb_and_exclusives() {
        let amd5 = suite::amd5();
        let p5 = PerpetualTest::convert(&amd5).unwrap();
        let asm = emit_thread_asm_aarch64(&p5).join("\n");
        assert!(asm.contains("dmb ish"));

        let amd10 = suite::amd10();
        let p10 = PerpetualTest::convert(&amd10).unwrap();
        let asm = emit_thread_asm_aarch64(&p10).join("\n");
        assert!(asm.contains("ldxr"));
        assert!(asm.contains("stxr"));
        assert!(asm.contains("cbnz"));
    }

    #[test]
    fn aarch64_multi_writer_sequences_use_mul() {
        let n5 = suite::n5();
        let p = PerpetualTest::convert(&n5).unwrap();
        let asm = emit_thread_asm_aarch64(&p).join("\n");
        assert!(asm.contains("mov x3, #2"));
        assert!(asm.contains("mul x2, x9, x3"));
    }

    #[test]
    fn params_file_lists_reads() {
        let (perp, _) = sb_parts();
        let p = emit_params(&perp);
        assert_eq!(p, "t0_reads = 1\nt1_reads = 1\n");
    }

    #[test]
    fn count_c_has_nested_loops_and_else_if_chain() {
        let (perp, outcomes) = sb_parts();
        let c = emit_count_c(&perp, &outcomes);
        assert!(c.contains("void COUNT("));
        assert!(c.contains("for (uint64_t n0 = 0; n0 < N; n0++)"));
        assert!(c.contains("for (uint64_t n1 = 0; n1 < N; n1++)"));
        assert!(c.contains("else if"));
        assert!(c.contains("counts[3]++"));
        // The sb target condition (Figure 6 p_out_0): both fr inequalities.
        assert!(c.contains("buf0[1 * n0 + 0] < 1 * (n1) + 1"));
    }

    #[test]
    fn count_c_scans_existential_indices_for_mp() {
        let t = suite::mp();
        let kmap = KMap::compute(&t).unwrap();
        let perp = PerpetualTest::convert(&t).unwrap();
        let target = crate::outcomes::PerpetualOutcome::convert_target(&t, &perp, &kmap).unwrap();
        let c = emit_count_c(&perp, &[target]);
        assert!(c.contains("for (uint64_t m0 = 0; m0 < N && !hit; m0++)"));
    }

    #[test]
    fn counth_c_contains_derivations() {
        let (perp, outcomes) = sb_parts();
        let hs: Vec<HeuristicOutcome> = outcomes
            .iter()
            .map(|o| HeuristicOutcome::from_perpetual(o, 2))
            .collect();
        let c = emit_counth_c(&perp, &hs);
        assert!(c.contains("void COUNTH("));
        assert!(c.contains("p_out_h_0"));
        assert!(c.contains("p_out_h_3"));
        // Derivation of the partner index from the pivot's loaded value.
        assert!(c.contains("uint64_t n1 = "));
        assert!(c.contains("return 1;"));
    }
}
