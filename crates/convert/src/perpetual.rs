//! Perpetual litmus tests: the synchronization-free program form (§III-B,
//! Table I).

use perple_model::{Instr, LitmusTest, LocId, RegId, ThreadId};

use crate::kmap::KMap;
use crate::ConvertError;

/// One instruction of a perpetual litmus thread. The only change from the
/// original test (Table I of the paper) is that stored constants become
/// arithmetic-sequence terms `k * n_t + a`; loads and fences are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerpInstr {
    /// Store `k * n_t + a` to `loc`.
    Store {
        /// Destination location.
        loc: LocId,
        /// Sequence stride (`k_mem`).
        k: u64,
        /// Sequence offset.
        a: u64,
    },
    /// Load `loc` into `reg` (unchanged).
    Load {
        /// Destination register.
        reg: RegId,
        /// Source location.
        loc: LocId,
    },
    /// `MFENCE` (unchanged).
    Mfence,
    /// Locked exchange storing `k * n_t + a` (store part converted like a
    /// store, load part unchanged).
    Xchg {
        /// Register receiving the old value.
        reg: RegId,
        /// Exchanged location.
        loc: LocId,
        /// Sequence stride.
        k: u64,
        /// Sequence offset.
        a: u64,
    },
}

/// A converted, synchronization-free litmus test.
///
/// Threads synchronize once at launch, then run `N` iterations freely; each
/// load-performing thread `t` records its `r_t` loaded values per iteration
/// into `buf_t` (handled by the harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerpetualTest {
    name: String,
    threads: Vec<Vec<PerpInstr>>,
    locations: Vec<String>,
    k_per_loc: Vec<u64>,
    load_threads: Vec<ThreadId>,
    reads_per_thread: Vec<usize>,
}

impl PerpetualTest {
    /// Converts a litmus test to its perpetual counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::MemoryCondition`] for tests whose condition
    /// inspects final shared memory (non-convertible, §V-C) and propagates
    /// sequence-assignment errors from [`KMap::compute`].
    pub fn convert(test: &LitmusTest) -> Result<Self, ConvertError> {
        if test.target().inspects_memory() {
            return Err(ConvertError::MemoryCondition);
        }
        let kmap = KMap::compute(test)?;
        let threads = test
            .threads()
            .iter()
            .map(|instrs| {
                instrs
                    .iter()
                    .map(|instr| convert_instr(instr, &kmap))
                    .collect()
            })
            .collect();
        Ok(Self {
            name: format!("{}.perp", test.name()),
            threads,
            locations: test.locations().to_vec(),
            k_per_loc: (0..test.location_count())
                .map(|i| kmap.k(LocId(i as u8)))
                .collect(),
            load_threads: test.load_threads(),
            reads_per_thread: test.reads_per_thread(),
        })
    }

    /// Name of the perpetual test (`<original>.perp`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-thread converted instruction streams.
    pub fn threads(&self) -> &[Vec<PerpInstr>] {
        &self.threads
    }

    /// Number of threads `T`.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Location names (shared with the original test).
    pub fn locations(&self) -> &[String] {
        &self.locations
    }

    /// `k_mem` per location.
    pub fn k_per_loc(&self) -> &[u64] {
        &self.k_per_loc
    }

    /// The load-performing threads, in index order (frame order).
    pub fn load_threads(&self) -> &[ThreadId] {
        &self.load_threads
    }

    /// `T_L`.
    pub fn load_thread_count(&self) -> usize {
        self.load_threads.len()
    }

    /// `r_t` for every thread: loads (and hence `buf` slots) per iteration.
    /// This is the `t<i>_reads` parameter file the paper's Converter emits
    /// for the Harness.
    pub fn reads_per_thread(&self) -> &[usize] {
        &self.reads_per_thread
    }

    /// Frame position of a thread (its index among load-performing
    /// threads), if it performs loads.
    pub fn frame_position(&self, thread: ThreadId) -> Option<usize> {
        self.load_threads.iter().position(|&t| t == thread)
    }
}

fn convert_instr(instr: &Instr, kmap: &KMap) -> PerpInstr {
    match *instr {
        Instr::Store { loc, value } => {
            let a = kmap
                .assignment(loc, value)
                .expect("kmap covers every store");
            PerpInstr::Store {
                loc,
                k: a.k,
                a: a.a,
            }
        }
        Instr::Load { reg, loc } => PerpInstr::Load { reg, loc },
        Instr::Mfence => PerpInstr::Mfence,
        Instr::Xchg { reg, loc, value } => {
            let a = kmap
                .assignment(loc, value)
                .expect("kmap covers every store");
            PerpInstr::Xchg {
                reg,
                loc,
                k: a.k,
                a: a.a,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn sb_converts_to_figure_4() {
        // Figure 4: thread 0 stores n+1 to x, thread 1 stores m+1 to y.
        let sb = suite::sb();
        let p = PerpetualTest::convert(&sb).unwrap();
        assert_eq!(p.name(), "sb.perp");
        let x = sb.location_id("x").unwrap();
        let y = sb.location_id("y").unwrap();
        assert_eq!(
            p.threads()[0],
            vec![
                PerpInstr::Store { loc: x, k: 1, a: 1 },
                PerpInstr::Load {
                    reg: RegId(0),
                    loc: y
                },
            ]
        );
        assert_eq!(
            p.threads()[1],
            vec![
                PerpInstr::Store { loc: y, k: 1, a: 1 },
                PerpInstr::Load {
                    reg: RegId(0),
                    loc: x
                },
            ]
        );
        assert_eq!(p.reads_per_thread(), &[1, 1]);
        assert_eq!(p.load_thread_count(), 2);
    }

    #[test]
    fn fences_survive_conversion_unchanged() {
        let t = suite::amd5();
        let p = PerpetualTest::convert(&t).unwrap();
        assert!(p.threads()[0].contains(&PerpInstr::Mfence));
        assert!(p.threads()[1].contains(&PerpInstr::Mfence));
    }

    #[test]
    fn two_writer_location_uses_k_two() {
        let t = suite::n5();
        let p = PerpetualTest::convert(&t).unwrap();
        let x = t.location_id("x").unwrap();
        assert_eq!(p.k_per_loc()[x.index()], 2);
        // Thread 0 stores 2n+1, thread 1 stores 2n+2.
        assert!(matches!(
            p.threads()[0][0],
            PerpInstr::Store { k: 2, a: 1, .. }
        ));
        assert!(matches!(
            p.threads()[1][0],
            PerpInstr::Store { k: 2, a: 2, .. }
        ));
    }

    #[test]
    fn xchg_store_part_uses_sequence() {
        let t = suite::amd10();
        let p = PerpetualTest::convert(&t).unwrap();
        assert!(matches!(
            p.threads()[0][0],
            PerpInstr::Xchg { k: 1, a: 1, .. }
        ));
    }

    #[test]
    fn non_convertible_tests_are_rejected() {
        for t in suite::non_convertible() {
            assert_eq!(
                PerpetualTest::convert(&t).unwrap_err(),
                ConvertError::MemoryCondition,
                "{}",
                t.name()
            );
        }
    }

    #[test]
    fn whole_convertible_suite_converts() {
        for t in suite::convertible() {
            let p = PerpetualTest::convert(&t).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert_eq!(p.thread_count(), t.thread_count());
            assert_eq!(p.load_thread_count(), t.load_thread_count());
            // Frame positions are consistent with load-thread order.
            for (i, &lt) in p.load_threads().iter().enumerate() {
                assert_eq!(p.frame_position(lt), Some(i));
            }
            assert_eq!(p.frame_position(ThreadId(200)), None);
        }
    }
}
