//! Structural convertibility diagnosis: *every* reason a test falls outside
//! the paper's convertible class (§V-C), not just the first one the
//! conversion pipeline trips over.
//!
//! [`Conversion::convert`](crate::Conversion::convert) fails fast with a
//! single [`ConvertError`](crate::ConvertError); [`diagnose`] instead walks
//! the test's condition atoms, init state, and store set and reports each
//! obstruction with enough structure (atom index, instruction reference) for
//! a caller to attach source spans. The invariant — proven over the whole
//! 88-test suite — is that the diagnosis is empty exactly when the test is
//! convertible.

use std::fmt;

use perple_model::{CondAtom, InstrRef, LitmusTest, LocId, RegId, ThreadId};

/// One structural reason a test cannot be converted.
///
/// `atom` fields index [`perple_model::Condition::atoms`], so they line up
/// with [`perple_model::SourceMap::cond_atom`] spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertObstruction {
    /// A condition clause inspects final shared memory (§V-C): a perpetual
    /// run has no final state to inspect.
    MemoryClause {
        /// Index into `Condition::atoms`.
        atom: usize,
        /// Location name.
        loc: String,
        /// Expected final value.
        value: u32,
    },
    /// A location starts at a non-zero value; zero is the reserved
    /// pre-sequence state the iteration attribution relies on.
    NonZeroInit {
        /// Location name.
        loc: String,
        /// The offending initial value.
        value: u32,
    },
    /// Two store instructions write the same value to one location, making
    /// load attribution ambiguous.
    DuplicateStoreValue {
        /// Location name.
        loc: String,
        /// The duplicated value.
        value: u32,
        /// The first storing instruction in program order.
        first: InstrRef,
        /// A later instruction storing the same value.
        second: InstrRef,
    },
    /// A condition clause names a register no load writes.
    UnloadedRegister {
        /// Index into `Condition::atoms`.
        atom: usize,
        /// Thread index.
        thread: usize,
        /// Register name.
        reg: String,
    },
    /// A condition clause expects a positive value no store produces at the
    /// loaded location.
    NoWriterForValue {
        /// Index into `Condition::atoms`.
        atom: usize,
        /// Location name (of the register's last load).
        loc: String,
        /// The unattributable value.
        value: u32,
    },
}

impl ConvertObstruction {
    /// The `Condition::atoms` index this obstruction points at, if it
    /// concerns a condition clause.
    pub fn atom_index(&self) -> Option<usize> {
        match self {
            ConvertObstruction::MemoryClause { atom, .. }
            | ConvertObstruction::UnloadedRegister { atom, .. }
            | ConvertObstruction::NoWriterForValue { atom, .. } => Some(*atom),
            ConvertObstruction::NonZeroInit { .. }
            | ConvertObstruction::DuplicateStoreValue { .. } => None,
        }
    }

    /// The instruction this obstruction points at, if any.
    pub fn instr(&self) -> Option<InstrRef> {
        match self {
            ConvertObstruction::DuplicateStoreValue { second, .. } => Some(*second),
            _ => None,
        }
    }
}

impl fmt::Display for ConvertObstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertObstruction::MemoryClause { loc, value, .. } => write!(
                f,
                "clause [{loc}]={value} inspects final shared memory; a perpetual run has no final state"
            ),
            ConvertObstruction::NonZeroInit { loc, value } => write!(
                f,
                "location [{loc}] starts at {value}; zero is the reserved pre-sequence state"
            ),
            ConvertObstruction::DuplicateStoreValue {
                loc,
                value,
                first,
                second,
            } => write!(
                f,
                "value {value} is stored to [{loc}] by both P{}:{} and P{}:{}; load attribution would be ambiguous",
                first.thread.index(),
                first.index,
                second.thread.index(),
                second.index
            ),
            ConvertObstruction::UnloadedRegister { thread, reg, .. } => {
                write!(f, "clause names register {thread}:{reg} that no load writes")
            }
            ConvertObstruction::NoWriterForValue { loc, value, .. } => {
                write!(f, "no store writes value {value} to [{loc}]")
            }
        }
    }
}

/// The location a condition's register clause observes: the register's last
/// load in program order (matching the conversion's read-attribution rule).
fn observed_loc(test: &LitmusTest, thread: ThreadId, reg: RegId) -> Option<LocId> {
    test.load_slots()
        .into_iter()
        .rfind(|s| s.thread == thread && s.reg == reg)
        .map(|s| s.loc)
}

/// Reports every structural obstruction to converting `test`.
///
/// Empty iff [`crate::is_convertible`] holds.
pub fn diagnose(test: &LitmusTest) -> Vec<ConvertObstruction> {
    let mut out = Vec::new();

    // Init state: non-zero initial values break the zero-is-initial rule.
    for (loc_idx, &v) in test.init_values().iter().enumerate() {
        if v != 0 {
            out.push(ConvertObstruction::NonZeroInit {
                loc: test.location_name(LocId(loc_idx as u8)).to_owned(),
                value: v,
            });
        }
    }

    // Store set: any value written twice to one location is ambiguous.
    for loc_idx in 0..test.location_count() {
        let loc = LocId(loc_idx as u8);
        let stores = test.stores_to(loc);
        for (i, &(first, v)) in stores.iter().enumerate() {
            if let Some(&(second, _)) = stores[i + 1..].iter().find(|&&(_, w)| w == v) {
                // Report each duplicated value once, at its first recurrence.
                if stores[..i].iter().all(|&(_, w)| w != v) {
                    out.push(ConvertObstruction::DuplicateStoreValue {
                        loc: test.location_name(loc).to_owned(),
                        value: v,
                        first,
                        second,
                    });
                }
            }
        }
    }

    // Condition clauses, in Condition::atoms order.
    for (atom, a) in test.target().atoms().iter().enumerate() {
        match *a {
            CondAtom::MemEq { loc, value } => {
                out.push(ConvertObstruction::MemoryClause {
                    atom,
                    loc: test.location_name(loc).to_owned(),
                    value,
                });
            }
            CondAtom::RegEq { thread, reg, value } => {
                let Some(loc) = observed_loc(test, thread, reg) else {
                    out.push(ConvertObstruction::UnloadedRegister {
                        atom,
                        thread: thread.index(),
                        reg: test.reg_name(thread, reg).to_owned(),
                    });
                    continue;
                };
                // Value 0 is always attributable (the initial state); any
                // positive value needs a unique writer. Duplicated writers
                // are reported by the store-set pass above.
                if value != 0 && !test.stores_to(loc).iter().any(|&(_, v)| v == value) {
                    out.push(ConvertObstruction::NoWriterForValue {
                        atom,
                        loc: test.location_name(loc).to_owned(),
                        value,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_convertible;
    use perple_model::{suite, TestBuilder};

    #[test]
    fn diagnosis_empty_iff_convertible_across_full_suite() {
        for t in suite::full() {
            let obstructions = diagnose(&t);
            assert_eq!(
                obstructions.is_empty(),
                is_convertible(&t),
                "{}: diagnose() disagrees with is_convertible(): {obstructions:?}",
                t.name()
            );
        }
    }

    #[test]
    fn memory_clause_reports_atom_index() {
        let t = suite::by_name("2+2w").unwrap();
        let obs = diagnose(&t);
        assert!(!obs.is_empty());
        for o in &obs {
            let ConvertObstruction::MemoryClause { atom, .. } = o else {
                panic!("expected only memory-clause obstructions, got {o:?}");
            };
            assert!(*atom < t.target().atoms().len());
        }
    }

    #[test]
    fn nonzero_init_and_duplicate_store_are_reported_together() {
        let mut b = TestBuilder::new("multi");
        b.thread().store("x", 1);
        b.thread().store("x", 1).load("EAX", "x");
        b.init("y", 3);
        b.thread().load("EBX", "y");
        b.reg_cond(1, "EAX", 1);
        let t = b.build().unwrap();
        let obs = diagnose(&t);
        assert!(obs
            .iter()
            .any(|o| matches!(o, ConvertObstruction::NonZeroInit { loc, value: 3 } if loc == "y")));
        assert!(obs.iter().any(|o| matches!(
            o,
            ConvertObstruction::DuplicateStoreValue { loc, value: 1, .. } if loc == "x"
        )));
        assert_eq!(obs.len(), 2);
    }

    #[test]
    fn no_writer_for_value_points_at_the_clause() {
        let mut b = TestBuilder::new("nowriter");
        b.thread().store("x", 1);
        b.thread().load("EAX", "x");
        b.reg_cond(1, "EAX", 7);
        let t = b.build().unwrap();
        let obs = diagnose(&t);
        assert_eq!(obs.len(), 1);
        assert_eq!(
            obs[0],
            ConvertObstruction::NoWriterForValue {
                atom: 0,
                loc: "x".into(),
                value: 7,
            }
        );
        assert_eq!(obs[0].atom_index(), Some(0));
    }

    #[test]
    fn displays_are_informative() {
        let samples = [
            ConvertObstruction::MemoryClause {
                atom: 0,
                loc: "x".into(),
                value: 1,
            },
            ConvertObstruction::NonZeroInit {
                loc: "x".into(),
                value: 2,
            },
            ConvertObstruction::DuplicateStoreValue {
                loc: "x".into(),
                value: 1,
                first: InstrRef::new(0, 0),
                second: InstrRef::new(1, 0),
            },
            ConvertObstruction::UnloadedRegister {
                atom: 1,
                thread: 0,
                reg: "EAX".into(),
            },
            ConvertObstruction::NoWriterForValue {
                atom: 2,
                loc: "y".into(),
                value: 9,
            },
        ];
        for s in samples {
            let m = s.to_string();
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "{m}");
        }
    }
}
