//! Arithmetic-sequence assignment: the `k_mem * n_t + a` mapping of §III-B.
//!
//! For every location `mem`, `k_mem` is the number of distinct positive
//! values stored to `mem` across all threads. Each stored value is
//! normalized to an offset `a ∈ 1..=k_mem` (in increasing value order) so
//! that different store instructions to the same location produce disjoint
//! residue classes mod `k_mem` — which is what lets a loaded value be
//! attributed to a unique store instruction and iteration.

use std::collections::BTreeMap;

use perple_model::{InstrRef, LitmusTest, LocId, ThreadId};

use crate::ConvertError;

/// The sequence parameters of one store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqAssignment {
    /// The storing instruction.
    pub instr: InstrRef,
    /// The storing thread (redundant with `instr`, kept for convenience).
    pub thread: ThreadId,
    /// `k_mem` of the stored-to location.
    pub k: u64,
    /// Offset within the sequence (`1..=k`).
    pub a: u64,
    /// The original (unnormalized) stored value.
    pub original_value: u32,
}

/// Sequence assignments for an entire test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMap {
    /// `k_mem` per location, indexed by [`LocId`].
    k_per_loc: Vec<u64>,
    /// Assignment per `(loc, original value)`.
    by_value: BTreeMap<(LocId, u32), SeqAssignment>,
}

impl KMap {
    /// Computes the sequence assignment of a test.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::DuplicateStoreValue`] if two store
    /// instructions write the same value to the same location (the load
    /// attribution the conversion relies on would be ambiguous), and
    /// [`ConvertError::NonZeroInit`] if a location starts at a non-zero
    /// value (zero is the reserved pre-sequence state).
    pub fn compute(test: &LitmusTest) -> Result<Self, ConvertError> {
        let mut k_per_loc = vec![0u64; test.location_count()];
        let mut by_value = BTreeMap::new();
        for (loc_idx, k_slot) in k_per_loc.iter_mut().enumerate() {
            let loc = LocId(loc_idx as u8);
            if test.init(loc) != 0 {
                return Err(ConvertError::NonZeroInit {
                    loc: test.location_name(loc).to_owned(),
                });
            }
            let values = test.distinct_store_values(loc);
            let k = values.len() as u64;
            *k_slot = k;
            for (i, v) in values.iter().enumerate() {
                let instr = test.unique_store_of(loc, *v).ok_or_else(|| {
                    ConvertError::DuplicateStoreValue {
                        loc: test.location_name(loc).to_owned(),
                        value: *v,
                    }
                })?;
                by_value.insert(
                    (loc, *v),
                    SeqAssignment {
                        instr,
                        thread: instr.thread,
                        k,
                        a: i as u64 + 1,
                        original_value: *v,
                    },
                );
            }
        }
        Ok(Self {
            k_per_loc,
            by_value,
        })
    }

    /// `k_mem` for a location (0 if nothing stores to it).
    pub fn k(&self, loc: LocId) -> u64 {
        self.k_per_loc[loc.index()]
    }

    /// The assignment of the store writing `value` to `loc`, if any.
    pub fn assignment(&self, loc: LocId, value: u32) -> Option<&SeqAssignment> {
        self.by_value.get(&(loc, value))
    }

    /// All assignments targeting `loc`, in offset order.
    pub fn assignments_for(&self, loc: LocId) -> Vec<&SeqAssignment> {
        let mut v: Vec<&SeqAssignment> = self
            .by_value
            .iter()
            .filter(|((l, _), _)| *l == loc)
            .map(|(_, a)| a)
            .collect();
        v.sort_by_key(|a| a.a);
        v
    }

    /// The iteration index a loaded value decodes to within sequence
    /// `(k, a)`: `Some(m)` iff `val = k*m + a` for integral `m ≥ 0`.
    pub fn decode(k: u64, a: u64, val: u64) -> Option<u64> {
        if k == 0 || val < a {
            return None;
        }
        let d = val - a;
        if d.is_multiple_of(k) {
            Some(d / k)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::{suite, TestBuilder};

    #[test]
    fn sb_has_k_one_everywhere() {
        let sb = suite::sb();
        let km = KMap::compute(&sb).unwrap();
        for loc_idx in 0..sb.location_count() {
            assert_eq!(km.k(LocId(loc_idx as u8)), 1);
        }
        let x = sb.location_id("x").unwrap();
        let a = km.assignment(x, 1).unwrap();
        assert_eq!((a.k, a.a), (1, 1));
        assert_eq!(a.thread, ThreadId(0));
    }

    #[test]
    fn two_writer_location_gets_k_two_with_distinct_offsets() {
        let t = suite::n5();
        let km = KMap::compute(&t).unwrap();
        let x = t.location_id("x").unwrap();
        assert_eq!(km.k(x), 2);
        let a1 = km.assignment(x, 1).unwrap();
        let a2 = km.assignment(x, 2).unwrap();
        assert_eq!(a1.a, 1);
        assert_eq!(a2.a, 2);
        assert_ne!(a1.thread, a2.thread);
        let all = km.assignments_for(x);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].a, 1);
    }

    #[test]
    fn unstored_location_has_k_zero() {
        let mut b = TestBuilder::new("ro");
        b.thread().load("EAX", "x");
        b.reg_cond(0, "EAX", 0);
        let t = b.build().unwrap();
        let km = KMap::compute(&t).unwrap();
        assert_eq!(km.k(t.location_id("x").unwrap()), 0);
    }

    #[test]
    fn duplicate_store_values_are_rejected() {
        let mut b = TestBuilder::new("dup");
        b.thread().store("x", 1);
        b.thread().store("x", 1).load("EAX", "x");
        b.reg_cond(1, "EAX", 1);
        let t = b.build().unwrap();
        assert_eq!(
            KMap::compute(&t).unwrap_err(),
            ConvertError::DuplicateStoreValue {
                loc: "x".into(),
                value: 1
            }
        );
    }

    #[test]
    fn nonzero_init_is_rejected() {
        let mut b = TestBuilder::new("iv");
        b.thread().load("EAX", "x");
        b.init("x", 3);
        b.reg_cond(0, "EAX", 3);
        let t = b.build().unwrap();
        assert_eq!(
            KMap::compute(&t).unwrap_err(),
            ConvertError::NonZeroInit { loc: "x".into() }
        );
    }

    #[test]
    fn noncontiguous_values_normalize_to_dense_offsets() {
        // Stored values 3 and 7 must normalize to offsets 1 and 2 so their
        // residues mod k=2 differ.
        let mut b = TestBuilder::new("sparse");
        b.thread().store("x", 3).load("EAX", "x");
        b.thread().store("x", 7);
        b.reg_cond(0, "EAX", 3);
        let t = b.build().unwrap();
        let km = KMap::compute(&t).unwrap();
        let x = t.location_id("x").unwrap();
        assert_eq!(km.assignment(x, 3).unwrap().a, 1);
        assert_eq!(km.assignment(x, 7).unwrap().a, 2);
        assert_eq!(km.assignment(x, 5), None);
    }

    #[test]
    fn decode_inverts_the_sequence() {
        for m in [0u64, 1, 5, 1000] {
            for (k, a) in [(1u64, 1u64), (2, 1), (2, 2), (3, 2)] {
                let val = k * m + a;
                assert_eq!(KMap::decode(k, a, val), Some(m));
            }
        }
        assert_eq!(KMap::decode(2, 1, 0), None); // initial value
        assert_eq!(KMap::decode(2, 1, 2), None); // other residue
        assert_eq!(KMap::decode(2, 2, 1), None); // below offset
        assert_eq!(KMap::decode(0, 1, 1), None); // unstored location
    }

    #[test]
    fn whole_convertible_suite_computes_kmaps() {
        for t in suite::convertible() {
            let km = KMap::compute(&t).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            for slot in t.load_slots() {
                // Every loaded location that is stored to must have k >= 1.
                if !t.stores_to(slot.loc).is_empty() {
                    assert!(km.k(slot.loc) >= 1);
                }
            }
        }
    }
}
