//! # perple-convert
//!
//! The PerpLE **Converter** (paper §III–§V): turns litmus tests into
//! *perpetual* litmus tests and original outcomes into *perpetual outcomes*
//! with both exhaustive (`p_out`) and heuristic (`p_out_h`) condition forms.
//!
//! Pipeline (Figure 3 of the paper):
//!
//! 1. [`KMap`] assigns each store instruction its arithmetic sequence
//!    `k_mem * n_t + a` (§III-B, Table I).
//! 2. [`PerpetualTest`] rewrites the program: stores become sequence terms,
//!    loads and fences are unchanged, the per-iteration barrier is gone.
//! 3. [`PerpetualOutcome`] converts outcomes through happens-before
//!    reasoning into frame-evaluable inequality conditions (§IV-A, steps
//!    1–4; Figure 6).
//! 4. [`HeuristicOutcome`] eliminates all but one frame index by deriving
//!    partner iterations from loaded values (§IV-B, step 5; Figure 8).
//! 5. [`codegen`] emits the paper's textual artifacts: per-thread x86
//!    assembly, C sources of `COUNT`/`COUNTH`, and the `t<i>_reads`
//!    parameter file (§V-A).
//!
//! Tests whose conditions inspect final shared memory are rejected as
//! non-convertible (§V-C), exactly the 54-test complement of the suite.
//!
//! # Example
//!
//! ```
//! use perple_convert::Conversion;
//! use perple_model::suite;
//!
//! let sb = suite::sb();
//! let conv = Conversion::convert(&sb)?;
//! assert_eq!(conv.perpetual.load_thread_count(), 2);
//! assert!(conv.target_heuristic.fully_derived());
//!
//! // Non-convertible tests are rejected:
//! let co = suite::by_name("2+2w").unwrap();
//! assert!(Conversion::convert(&co).is_err());
//! # Ok::<(), perple_convert::ConvertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod codegen;
pub mod diagnose;
mod heuristic;
mod kmap;
mod outcomes;
mod perpetual;

pub use heuristic::{Derivation, DeriveRule, HeuristicOutcome};
pub use kmap::{KMap, SeqAssignment};
pub use outcomes::{
    convert_all_outcomes, fr_lower_bound, IdxRef, LoadRef, PerpCond, PerpetualOutcome, StoreTerm,
};
pub use perpetual::{PerpInstr, PerpetualTest};

use std::fmt;

use perple_model::LitmusTest;

/// Errors rejecting a test or outcome from conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The condition inspects final shared memory (§V-C).
    MemoryCondition,
    /// Two stores write the same value to one location; loads could not be
    /// attributed.
    DuplicateStoreValue {
        /// Location name.
        loc: String,
        /// Duplicated value.
        value: u32,
    },
    /// A location starts at a non-zero value; zero is the reserved
    /// pre-sequence state.
    NonZeroInit {
        /// Location name.
        loc: String,
    },
    /// A condition references a register no load writes.
    UnloadedRegister {
        /// Thread index.
        thread: usize,
        /// Register index.
        reg: usize,
    },
    /// A condition expects a value no store produces.
    NoWriterForValue {
        /// Location name.
        loc: String,
        /// The unattributable value.
        value: u32,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MemoryCondition => {
                write!(f, "condition inspects final shared memory; not convertible")
            }
            ConvertError::DuplicateStoreValue { loc, value } => {
                write!(
                    f,
                    "value {value} is stored to [{loc}] by multiple instructions"
                )
            }
            ConvertError::NonZeroInit { loc } => {
                write!(f, "location [{loc}] has a non-zero initial value")
            }
            ConvertError::UnloadedRegister { thread, reg } => {
                write!(
                    f,
                    "condition references register {thread}:r{reg} that no load writes"
                )
            }
            ConvertError::NoWriterForValue { loc, value } => {
                write!(f, "no store writes value {value} to [{loc}]")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

/// The complete output of converting one litmus test: the perpetual program
/// plus exhaustive and heuristic forms of the target outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conversion {
    /// The synchronization-free program.
    pub perpetual: PerpetualTest,
    /// Sequence assignments (needed to convert further outcomes).
    pub kmap: KMap,
    /// The target outcome in exhaustive (`p_out`) form.
    pub target_exhaustive: PerpetualOutcome,
    /// The target outcome in heuristic (`p_out_h`) form.
    pub target_heuristic: HeuristicOutcome,
}

impl Conversion {
    /// Runs the full conversion pipeline on a test.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] for non-convertible tests (§V-C) or
    /// structurally unattributable conditions.
    pub fn convert(test: &LitmusTest) -> Result<Self, ConvertError> {
        let _span = perple_obs::trace::span("convert");
        let kmap = KMap::compute(test)?;
        let perpetual = PerpetualTest::convert(test)?;
        let target_exhaustive = PerpetualOutcome::convert_target(test, &perpetual, &kmap)?;
        let target_heuristic =
            HeuristicOutcome::from_perpetual(&target_exhaustive, perpetual.load_thread_count());
        Ok(Self {
            perpetual,
            kmap,
            target_exhaustive,
            target_heuristic,
        })
    }

    /// Converts every possible outcome of the test (for outcome-variety
    /// analyses, Figure 13), in exhaustive and heuristic forms.
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn all_outcomes(
        &self,
        test: &LitmusTest,
    ) -> Result<Vec<(PerpetualOutcome, HeuristicOutcome)>, ConvertError> {
        let outs = convert_all_outcomes(test, &self.perpetual, &self.kmap)?;
        Ok(outs
            .into_iter()
            .map(|o| {
                let h = HeuristicOutcome::from_perpetual(&o, self.perpetual.load_thread_count());
                (o, h)
            })
            .collect())
    }
}

/// True if PerpLE can convert the test (register-only condition and
/// attributable store values) — the paper's convertibility notion (§V-C).
pub fn is_convertible(test: &LitmusTest) -> bool {
    Conversion::convert(test).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_model::suite;

    #[test]
    fn suite_split_34_convertible_54_not() {
        let (conv, nonconv): (Vec<_>, Vec<_>) = suite::full().into_iter().partition(is_convertible);
        assert_eq!(conv.len(), 34);
        assert_eq!(nonconv.len(), 54);
    }

    #[test]
    fn conversion_bundles_are_consistent() {
        for t in suite::convertible() {
            let c = Conversion::convert(&t).unwrap();
            assert_eq!(c.target_heuristic.label(), c.target_exhaustive.label());
            let all = c.all_outcomes(&t).unwrap();
            assert!(!all.is_empty());
            for (o, h) in &all {
                assert_eq!(o.label(), h.label());
            }
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let msgs = [
            ConvertError::MemoryCondition.to_string(),
            ConvertError::DuplicateStoreValue {
                loc: "x".into(),
                value: 1,
            }
            .to_string(),
            ConvertError::NonZeroInit { loc: "x".into() }.to_string(),
            ConvertError::UnloadedRegister { thread: 0, reg: 1 }.to_string(),
            ConvertError::NoWriterForValue {
                loc: "y".into(),
                value: 3,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn conversion_error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ConvertError::MemoryCondition);
        assert!(e.to_string().contains("not convertible"));
    }
}
