//! Heuristic outcome conditions: step 5 of §IV-B.
//!
//! The heuristic (`p_out_h`) eliminates all but one frame index. Because
//! stored values are unique sequence terms, a loaded value *identifies* the
//! partner thread's iteration: for an rf condition `val = k*m + a`, the
//! writer's iteration is `m = (val - a)/k`; for an fr condition
//! `val < k*m + a`, the tightest feasible writer iteration is
//! `m = ⌊(val - a)/k⌋ + 1` — the most-recent iteration from the reader's
//! point of view, the frame most likely to have interleaved.
//!
//! At conversion time a **resolution plan** is built: starting from the
//! pivot (the first load-performing thread), every other index is derived
//! from a condition whose loading thread is already resolved. Indices no
//! condition can reach fall back to lockstep (`m := n`). At counting time
//! the plan resolves one frame per pivot iteration in O(1), giving the
//! linear `COUNTH` of Algorithm 2.

use crate::kmap::KMap;
use crate::outcomes::{fr_lower_bound, IdxRef, LoadRef, PerpCond, PerpetualOutcome};

/// How one index is derived from already-resolved loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeriveRule {
    /// `m := (val - a)/k`, from an rf condition; fails (condition false) if
    /// the value is not a term of the sequence.
    FromRf {
        /// The load whose value identifies the iteration.
        load: LoadRef,
        /// Sequence stride.
        k: u64,
        /// Sequence offset.
        a: u64,
    },
    /// `m := ⌊(val - a)/k⌋ + 1` (clamped at 0), from an fr condition: the
    /// smallest iteration the condition admits.
    FromFr {
        /// The load whose value bounds the iteration.
        load: LoadRef,
        /// Sequence stride.
        k: u64,
        /// Sequence offset.
        a: u64,
    },
    /// No condition reaches this index from the pivot: assume lockstep with
    /// the pivot iteration.
    Lockstep,
}

/// One step of the resolution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Derivation {
    /// The index being assigned.
    pub target: IdxRef,
    /// How it is computed.
    pub rule: DeriveRule,
}

/// The heuristic form of a perpetual outcome (`p_out_h`), evaluable per
/// pivot iteration in constant time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeuristicOutcome {
    label: String,
    plan: Vec<Derivation>,
    conds: Vec<PerpCond>,
    frame_len: usize,
    exist_len: usize,
    pivot: usize,
    infeasible: bool,
}

impl HeuristicOutcome {
    /// Builds the heuristic form of a perpetual outcome for a test with
    /// `frame_len` load-performing threads.
    ///
    /// Every frame position is tried as the pivot; the first pivot whose
    /// resolution plan derives every other index from loaded values wins
    /// (n1-style tests resolve only from their final reader). If no pivot
    /// fully derives, the plan with the fewest lockstep fallbacks is kept.
    pub fn from_perpetual(outcome: &PerpetualOutcome, frame_len: usize) -> Self {
        let mut best: Option<Self> = None;
        for pivot in 0..frame_len {
            let cand = Self::with_pivot(outcome, frame_len, pivot);
            let lockstep = cand
                .plan
                .iter()
                .filter(|d| matches!(d.rule, DeriveRule::Lockstep))
                .count();
            if lockstep == 0 {
                return cand;
            }
            let better = match &best {
                None => true,
                Some(b) => {
                    lockstep
                        < b.plan
                            .iter()
                            .filter(|d| matches!(d.rule, DeriveRule::Lockstep))
                            .count()
                }
            };
            if better {
                best = Some(cand);
            }
        }
        best.expect("at least one load-performing thread")
    }

    /// Builds the heuristic with an explicitly chosen pivot, bypassing
    /// selection. Primarily for ablation studies; [`Self::from_perpetual`]
    /// picks the pivot automatically.
    ///
    /// # Panics
    /// Panics if `pivot >= frame_len`.
    pub fn from_perpetual_with_pivot(
        outcome: &PerpetualOutcome,
        frame_len: usize,
        pivot: usize,
    ) -> Self {
        assert!(pivot < frame_len, "pivot must be a frame position");
        Self::with_pivot(outcome, frame_len, pivot)
    }

    /// Builds the plan for one pivot choice.
    fn with_pivot(outcome: &PerpetualOutcome, frame_len: usize, pivot: usize) -> Self {
        let exist_len = outcome.exist_threads().len();
        let mut frame_resolved = vec![false; frame_len];
        let mut exist_resolved = vec![false; exist_len];
        frame_resolved[pivot] = true;

        let mut plan: Vec<Derivation> = Vec::new();
        // Iteratively pick derivations whose source load is resolved.
        loop {
            let mut progressed = false;
            for cond in outcome.conds() {
                // Ws conditions carry no load to derive from.
                let Some(load) = cond.load() else { continue };
                if !frame_resolved[load.frame_pos] {
                    continue;
                }
                let mut try_resolve =
                    |target: IdxRef, rule: DeriveRule, plan: &mut Vec<Derivation>| {
                        let slot = match target {
                            IdxRef::Frame(p) => &mut frame_resolved[p],
                            IdxRef::Exist(e) => &mut exist_resolved[e],
                        };
                        if !*slot {
                            *slot = true;
                            plan.push(Derivation { target, rule });
                            true
                        } else {
                            false
                        }
                    };
                match cond {
                    PerpCond::Rf { term, .. } => {
                        progressed |= try_resolve(
                            term.writer,
                            DeriveRule::FromRf {
                                load,
                                k: term.k,
                                a: term.a,
                            },
                            &mut plan,
                        );
                    }
                    PerpCond::Fr { terms, .. } => {
                        for term in terms {
                            progressed |= try_resolve(
                                term.writer,
                                DeriveRule::FromFr {
                                    load,
                                    k: term.k,
                                    a: term.a,
                                },
                                &mut plan,
                            );
                        }
                    }
                    PerpCond::Ws { .. } => unreachable!("filtered above"),
                }
            }
            if !progressed {
                break;
            }
        }
        // Unreachable indices: lockstep fallback.
        for (p, r) in frame_resolved.iter().enumerate() {
            if !*r {
                plan.push(Derivation {
                    target: IdxRef::Frame(p),
                    rule: DeriveRule::Lockstep,
                });
            }
        }
        for (e, r) in exist_resolved.iter().enumerate() {
            if !*r {
                plan.push(Derivation {
                    target: IdxRef::Exist(e),
                    rule: DeriveRule::Lockstep,
                });
            }
        }

        Self {
            label: outcome.label().to_owned(),
            plan,
            conds: outcome.conds().to_vec(),
            frame_len,
            exist_len,
            pivot,
            infeasible: outcome.is_infeasible(),
        }
    }

    /// The frame position the heuristic pivots on.
    pub fn pivot(&self) -> usize {
        self.pivot
    }

    /// Display label (matches the source perpetual outcome).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The resolution plan, in execution order.
    pub fn plan(&self) -> &[Derivation] {
        &self.plan
    }

    /// The underlying perpetual conditions re-checked after derivation
    /// (used by code generation).
    pub fn conds_for_codegen(&self) -> Vec<PerpCond> {
        self.conds.clone()
    }

    /// Number of existential variables.
    pub fn exist_count(&self) -> usize {
        self.exist_len
    }

    /// True if every non-pivot index is derived from loaded values (no
    /// lockstep fallback) — the case the paper's Figure 8 illustrates.
    pub fn fully_derived(&self) -> bool {
        !self
            .plan
            .iter()
            .any(|d| matches!(d.rule, DeriveRule::Lockstep))
    }

    /// Evaluates the heuristic condition at pivot iteration `n`
    /// (`p_out_h(n, buf_0, ..)` of the paper). `bufs` are the
    /// load-performing threads' buffers in frame order.
    pub fn eval(&self, n: u64, bufs: &[&[u64]], n_iters: u64) -> bool {
        if n_iters == 0 || self.infeasible {
            return false;
        }
        let mut frame = vec![u64::MAX; self.frame_len];
        let mut exist = vec![u64::MAX; self.exist_len];
        frame[self.pivot] = n;
        for d in &self.plan {
            let value = |load: &LoadRef, frame: &[u64]| -> Option<u64> {
                let fi = frame[load.frame_pos];
                if fi == u64::MAX || fi >= n_iters {
                    return None;
                }
                Some(load.value(bufs, fi))
            };
            let derived = match d.rule {
                DeriveRule::FromRf { load, k, a } => {
                    let Some(val) = value(&load, &frame) else {
                        return false;
                    };
                    match KMap::decode(k, a, val) {
                        Some(m) => m,
                        None => return false,
                    }
                }
                DeriveRule::FromFr { load, k, a } => {
                    let Some(val) = value(&load, &frame) else {
                        return false;
                    };
                    fr_lower_bound(k, a, val)
                }
                DeriveRule::Lockstep => n,
            };
            if derived >= n_iters {
                return false;
            }
            match d.target {
                IdxRef::Frame(p) => frame[p] = derived,
                IdxRef::Exist(e) => exist[e] = derived,
            }
        }
        // All indices resolved: check every condition directly.
        let idx = |r: IdxRef| match r {
            IdxRef::Frame(p) => frame[p],
            IdxRef::Exist(e) => exist[e],
        };
        for cond in &self.conds {
            if let PerpCond::Ws { left, right } = cond {
                let lval = left.k * idx(left.writer) + left.a;
                if lval >= right.k * idx(right.writer) + right.a {
                    return false;
                }
                continue;
            }
            let load = cond.load().expect("rf/fr conditions carry a load");
            let val = load.value(bufs, frame[load.frame_pos]);
            match cond {
                PerpCond::Rf { term, .. } => match KMap::decode(term.k, term.a, val) {
                    Some(m) if m >= idx(term.writer) => {}
                    _ => return false,
                },
                PerpCond::Fr { terms, .. } => {
                    for term in terms {
                        if val >= term.k * idx(term.writer) + term.a {
                            return false;
                        }
                    }
                }
                PerpCond::Ws { .. } => unreachable!("handled above"),
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcomes::convert_all_outcomes;
    use crate::perpetual::PerpetualTest;
    use perple_model::suite;

    fn sb_heuristics() -> Vec<HeuristicOutcome> {
        let t = suite::sb();
        let kmap = KMap::compute(&t).unwrap();
        let perp = PerpetualTest::convert(&t).unwrap();
        convert_all_outcomes(&t, &perp, &kmap)
            .unwrap()
            .iter()
            .map(|o| HeuristicOutcome::from_perpetual(o, perp.load_thread_count()))
            .collect()
    }

    /// Figure 8 golden check: the four sb heuristic conditions.
    #[test]
    fn sb_matches_figure_8() {
        let hs = sb_heuristics();
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert!(h.fully_derived(), "{}", h.label());
            assert_eq!(h.plan().len(), 1, "{}", h.label());
        }

        // p_out_h0: buf1[buf0[n]] <= n.
        // bufs: buf0[2] = 1 → m := 1; buf1[1] = 2 <= 2 → true at n=2.
        let b0: Vec<u64> = vec![0, 0, 1];
        let b1: Vec<u64> = vec![0, 2, 9];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        assert!(hs[0].eval(2, &bufs, 3));
        // At n=1: buf0[1]=0 → m := 0; buf1[0]=0 <= 1 → true.
        assert!(hs[0].eval(1, &bufs, 3));

        // p_out_h3: buf1[buf0[n]-1] >= n+1.
        // buf0[2]=1 → rf decode m = 0; buf1[0] = 0 >= 3? no.
        assert!(!hs[3].eval(2, &bufs, 3));
        let c0: Vec<u64> = vec![1, 0, 0];
        let c1: Vec<u64> = vec![1, 0, 0];
        let cufs: Vec<&[u64]> = vec![&c0, &c1];
        // n=0: buf0[0]=1 → m=0; buf1[0]=1 >= 1 → true (outcome 11).
        assert!(hs[3].eval(0, &cufs, 3));
    }

    #[test]
    fn heuristic_hits_are_a_subset_of_exhaustive_frames() {
        // Soundness: whenever p_out_h fires at n, the frame it derived must
        // satisfy the exhaustive p_out.
        let t = suite::sb();
        let kmap = KMap::compute(&t).unwrap();
        let perp = PerpetualTest::convert(&t).unwrap();
        let outcomes = convert_all_outcomes(&t, &perp, &kmap).unwrap();
        // Synthetic interleaved buffers.
        let n: u64 = 50;
        let b0: Vec<u64> = (0..n).map(|i| (i * 7) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 3 + 1) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        for o in &outcomes {
            let h = HeuristicOutcome::from_perpetual(o, 2);
            for i in 0..n {
                if h.eval(i, &bufs, n) {
                    // Reconstruct the derived frame: pivot i, partner from
                    // the plan.
                    let d = h.plan()[0];
                    let partner = match d.rule {
                        DeriveRule::FromRf { load, k, a } => {
                            KMap::decode(k, a, load.value(&bufs, i)).unwrap()
                        }
                        DeriveRule::FromFr { load, k, a } => {
                            fr_lower_bound(k, a, load.value(&bufs, i))
                        }
                        DeriveRule::Lockstep => i,
                    };
                    assert!(
                        o.eval_frame(&[i, partner], &bufs, n),
                        "{}: heuristic fired at {i} but frame ({i},{partner}) fails",
                        o.label()
                    );
                }
            }
        }
    }

    #[test]
    fn mp_target_heuristic_derives_the_existential() {
        let t = suite::mp();
        let kmap = KMap::compute(&t).unwrap();
        let perp = PerpetualTest::convert(&t).unwrap();
        let target = crate::outcomes::PerpetualOutcome::convert_target(&t, &perp, &kmap).unwrap();
        let h = HeuristicOutcome::from_perpetual(&target, 1);
        assert!(h.fully_derived());
        // buf1 per iteration: [EAX(y), EBX(x)].
        // n=0: y-read 5 → producer iteration 4; x-read 3 (iteration 2 < 4):
        // mp violation shape → true.
        let b: Vec<u64> = vec![5, 3];
        let bufs: Vec<&[u64]> = vec![&b];
        assert!(h.eval(0, &bufs, 10));
        // x-read equal to y-iteration value: no violation.
        let b2: Vec<u64> = vec![5, 5];
        let bufs2: Vec<&[u64]> = vec![&b2];
        assert!(!h.eval(0, &bufs2, 10));
    }

    #[test]
    fn derived_index_out_of_range_fails() {
        let hs = sb_heuristics();
        // buf0[0] = 40 would derive partner iteration 40 ≥ N=3 → false.
        let b0: Vec<u64> = vec![40, 0, 0];
        let b1: Vec<u64> = vec![0, 0, 0];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        assert!(!hs[0].eval(0, &bufs, 3));
    }

    #[test]
    fn whole_suite_builds_heuristics() {
        for t in suite::convertible() {
            let kmap = KMap::compute(&t).unwrap();
            let perp = PerpetualTest::convert(&t).unwrap();
            let target =
                crate::outcomes::PerpetualOutcome::convert_target(&t, &perp, &kmap).unwrap();
            let h = HeuristicOutcome::from_perpetual(&target, perp.load_thread_count());
            assert_eq!(h.label(), "target");
            // The plan must assign every non-pivot index exactly once.
            let mut targets: Vec<String> =
                h.plan().iter().map(|d| format!("{:?}", d.target)).collect();
            targets.sort();
            let before = targets.len();
            targets.dedup();
            assert_eq!(targets.len(), before, "{}: duplicate derivation", t.name());
        }
    }

    #[test]
    fn zero_iteration_run_never_matches() {
        let hs = sb_heuristics();
        let empty: Vec<u64> = vec![];
        let bufs: Vec<&[u64]> = vec![&empty, &empty];
        assert!(!hs[0].eval(0, &bufs, 0));
    }
}
