//! Table-driven classification of the non-convertible suite complement.
//!
//! Pins, per test, which [`ConvertError`] variant rejects it — and that the
//! complement is exactly the paper's 54 tests (§V-C). Every entry today is
//! `MemoryCondition`: all 54 carry a final-memory clause, which is the
//! paper's sole source of non-convertibility in this suite. The table keeps
//! the variant explicit anyway so a pipeline reordering (e.g. `KMap` errors
//! surfacing first) shows up as a reviewed diff, not a silent change.

use perple_convert::diagnose::{diagnose, ConvertObstruction};
use perple_convert::{Conversion, ConvertError};
use perple_model::suite;

/// Which variant a conversion error is, ignoring payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    MemoryCondition,
    DuplicateStoreValue,
    NonZeroInit,
    UnloadedRegister,
    NoWriterForValue,
}

fn variant_of(e: &ConvertError) -> Variant {
    match e {
        ConvertError::MemoryCondition => Variant::MemoryCondition,
        ConvertError::DuplicateStoreValue { .. } => Variant::DuplicateStoreValue,
        ConvertError::NonZeroInit { .. } => Variant::NonZeroInit,
        ConvertError::UnloadedRegister { .. } => Variant::UnloadedRegister,
        ConvertError::NoWriterForValue { .. } => Variant::NoWriterForValue,
    }
}

/// `(test name, expected rejection variant)` for every non-convertible
/// test, in name order.
const EXPECTED: &[(&str, Variant)] = &[
    ("2+2w", Variant::MemoryCondition),
    ("2+2w+mfence+po", Variant::MemoryCondition),
    ("2+2w+mfences", Variant::MemoryCondition),
    ("2+2w+po+mfence", Variant::MemoryCondition),
    ("3+3w", Variant::MemoryCondition),
    ("3+3w+mfence+mfence+po", Variant::MemoryCondition),
    ("3+3w+mfence+po+po", Variant::MemoryCondition),
    ("3+3w+mfences", Variant::MemoryCondition),
    ("3w+final1", Variant::MemoryCondition),
    ("3w+final2", Variant::MemoryCondition),
    ("3w+final3", Variant::MemoryCondition),
    ("3w+xchgs", Variant::MemoryCondition),
    ("co-2w", Variant::MemoryCondition),
    ("co-2w+po+xchg", Variant::MemoryCondition),
    ("co-2w+xchg+po", Variant::MemoryCondition),
    ("co-2w+xchgs", Variant::MemoryCondition),
    ("co-lb+final1", Variant::MemoryCondition),
    ("co-lb+final1+mfences", Variant::MemoryCondition),
    ("co-lb+final2", Variant::MemoryCondition),
    ("co-lb+final2+mfences", Variant::MemoryCondition),
    ("co-mp", Variant::MemoryCondition),
    ("co-mp+mfence+po", Variant::MemoryCondition),
    ("co-mp+mfences", Variant::MemoryCondition),
    ("co-mp+po+mfence", Variant::MemoryCondition),
    ("co-rr", Variant::MemoryCondition),
    ("co-rr+mfence+po", Variant::MemoryCondition),
    ("co-rr+mfences", Variant::MemoryCondition),
    ("co-rr+po+mfence", Variant::MemoryCondition),
    ("co-sb", Variant::MemoryCondition),
    ("co-sb+mfence+po", Variant::MemoryCondition),
    ("co-sb+mfences", Variant::MemoryCondition),
    ("co-sb+po+mfence", Variant::MemoryCondition),
    ("iriw+final", Variant::MemoryCondition),
    ("iriw+final+mfence+po", Variant::MemoryCondition),
    ("iriw+final+mfences", Variant::MemoryCondition),
    ("iriw+final+po+mfence", Variant::MemoryCondition),
    ("mp+final", Variant::MemoryCondition),
    ("mp+final+mfence+po", Variant::MemoryCondition),
    ("mp+final+mfences", Variant::MemoryCondition),
    ("mp+final+po+mfence", Variant::MemoryCondition),
    ("r", Variant::MemoryCondition),
    ("r+mfence+po", Variant::MemoryCondition),
    ("r+mfences", Variant::MemoryCondition),
    ("r+po+mfence", Variant::MemoryCondition),
    ("s", Variant::MemoryCondition),
    ("s+mfence+po", Variant::MemoryCondition),
    ("s+mfences", Variant::MemoryCondition),
    ("s+po+mfence", Variant::MemoryCondition),
    ("sb+final", Variant::MemoryCondition),
    ("sb+final+mfence+po", Variant::MemoryCondition),
    ("sb+final+mfences", Variant::MemoryCondition),
    ("sb+final+po+mfence", Variant::MemoryCondition),
    ("wrc+final", Variant::MemoryCondition),
    ("wrc+final+mfence", Variant::MemoryCondition),
];

#[test]
fn non_convertible_complement_is_exactly_the_54_expected_tests() {
    assert_eq!(EXPECTED.len(), 54);
    let mut rejected = Vec::new();
    for t in suite::full() {
        match Conversion::convert(&t) {
            Ok(_) => {
                assert!(
                    !EXPECTED.iter().any(|(n, _)| *n == t.name()),
                    "{}: listed as non-convertible but converts",
                    t.name()
                );
            }
            Err(e) => rejected.push((t.name().to_owned(), e)),
        }
    }
    rejected.sort_by(|(a, _), (b, _)| a.cmp(b));
    assert_eq!(rejected.len(), 54, "non-convertible complement size");
    for ((name, err), (want_name, want_variant)) in rejected.iter().zip(EXPECTED) {
        assert_eq!(name, want_name, "complement membership changed");
        assert_eq!(
            variant_of(err),
            *want_variant,
            "{name}: rejected by {err} instead of {want_variant:?}"
        );
    }
}

#[test]
fn rejection_variant_agrees_with_the_structural_diagnosis() {
    // Every MemoryCondition rejection must show up in diagnose() as at
    // least one MemoryClause obstruction pointing at a real atom.
    for (name, variant) in EXPECTED {
        let t = suite::by_name(name).unwrap_or_else(|| panic!("{name}: not in suite"));
        assert_eq!(*variant, Variant::MemoryCondition);
        let mem_clauses: Vec<_> = diagnose(&t)
            .into_iter()
            .filter(|o| matches!(o, ConvertObstruction::MemoryClause { .. }))
            .collect();
        assert!(!mem_clauses.is_empty(), "{name}: no MemoryClause diagnosis");
        for o in mem_clauses {
            let ConvertObstruction::MemoryClause { atom, .. } = o else {
                unreachable!()
            };
            assert!(atom < t.target().atoms().len(), "{name}: atom out of range");
        }
    }
}

#[test]
fn display_of_each_rejection_names_the_problem() {
    for (name, _) in EXPECTED {
        let t = suite::by_name(name).unwrap();
        let msg = Conversion::convert(&t).unwrap_err().to_string();
        assert!(
            msg.contains("not convertible"),
            "{name}: uninformative message {msg:?}"
        );
    }
}
