//! Minimal micro-benchmark runner (Criterion is unavailable offline).
//!
//! Each case runs a warm-up pass, then `samples` timed passes, and prints
//! `name  median  (min … max, mean, samples)` to stdout. [`Bench::run`]
//! returns the median so callers can compute derived figures (speedups)
//! without re-parsing their own output.

use std::time::{Duration, Instant};

/// A benchmark session: shared sample count plus aligned reporting.
#[derive(Debug, Clone)]
pub struct Bench {
    samples: usize,
}

impl Bench {
    /// Creates a session taking `samples` timed passes per case (at least 1).
    pub fn new(samples: usize) -> Self {
        Self {
            samples: samples.max(1),
        }
    }

    /// Times one case and prints its summary line. Returns the median wall
    /// time. The closure's result is passed through [`std::hint::black_box`]
    /// so the optimizer cannot elide the measured work.
    pub fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        std::hint::black_box(f()); // warm-up: page in code and data
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{name:<44} {:>12} (min {:>10}, max {:>10}, mean {:>10}, {} samples)",
            fmt(median),
            fmt(min),
            fmt(max),
            fmt(mean),
            self.samples,
        );
        median
    }
}

/// Human units with three significant-ish digits, like Criterion prints.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_ordered_between_extremes() {
        let b = Bench::new(5);
        let mut x = 0u64;
        let median = b.run("micro/self-test", || {
            for i in 0..1_000u64 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(median > Duration::ZERO);
    }

    #[test]
    fn sample_count_is_clamped_to_one() {
        let b = Bench::new(0);
        let m = b.run("micro/clamped", || 1 + 1);
        assert!(m >= Duration::ZERO);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt(Duration::from_micros(12)), "12.00µs");
        assert_eq!(fmt(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt(Duration::from_secs(12)), "12.00s");
    }
}
