//! # perple-bench
//!
//! Benchmark harness for the PerpLE reproduction: one binary per paper
//! table/figure (`table2`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `overall`) plus [`micro`] benchmarks for the counters (serial and
//! frame-sharded parallel), the simulator, conversion, and the baseline
//! synchronization modes.
//!
//! Every binary accepts `--iterations N`, `--seed S`, `--workers W`,
//! `--timeout-ms T`, `--retries R`, and `--inject PLAN` overrides, e.g.:
//!
//! ```text
//! cargo run --release -p perple-bench --bin fig9 -- --iterations 10000 --workers 8
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use perple::experiments::ExperimentConfig;
use perple::FaultPlan;

pub mod micro;

/// Parses `--iterations N`, `--seed S`, `--workers W`, `--timeout-ms T`,
/// `--retries R`, and `--inject PLAN` from the command line on top of the
/// given defaults. Unknown arguments are rejected with a usage message.
///
/// # Panics
/// Exits the process with a usage message on malformed arguments.
pub fn config_from_args(default_iterations: u64) -> ExperimentConfig {
    parse_args(std::env::args().skip(1), default_iterations).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!(
            "usage: <bin> [--iterations N] [--seed S] [--workers W] \
                 [--timeout-ms T] [--retries R] [--inject PLAN]"
        );
        std::process::exit(2);
    })
}

fn parse_args<I: Iterator<Item = String>>(
    mut args: I,
    default_iterations: u64,
) -> Result<ExperimentConfig, String> {
    let mut cfg = ExperimentConfig::default().with_iterations(default_iterations);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iterations" | "-n" => {
                let v = args.next().ok_or("missing value for --iterations")?;
                cfg.iterations = v
                    .parse()
                    .map_err(|_| format!("bad iteration count {v:?}"))?;
            }
            "--seed" | "-s" => {
                let v = args.next().ok_or("missing value for --seed")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--workers" | "-w" => {
                let v = args.next().ok_or("missing value for --workers")?;
                let w: usize = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if w == 0 {
                    return Err("--workers must be at least 1".into());
                }
                cfg = cfg.with_workers(w);
            }
            "--timeout-ms" => {
                let v = args.next().ok_or("missing value for --timeout-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad timeout {v:?}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                cfg.timeout_ms = Some(ms);
            }
            "--retries" => {
                let v = args.next().ok_or("missing value for --retries")?;
                cfg.retries = v.parse().map_err(|_| format!("bad retry count {v:?}"))?;
            }
            "--inject" => {
                let v = args.next().ok_or("missing value for --inject")?;
                cfg.fault_plan =
                    FaultPlan::parse(&v).map_err(|e| format!("bad --inject plan: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], n: u64) -> Result<ExperimentConfig, String> {
        parse_args(args.iter().map(|s| s.to_string()), n)
    }

    #[test]
    fn defaults_apply() {
        let cfg = parse(&[], 500).unwrap();
        assert_eq!(cfg.iterations, 500);
    }

    #[test]
    fn overrides_apply() {
        let cfg = parse(&["--iterations", "123", "--seed", "7"], 500).unwrap();
        assert_eq!(cfg.iterations, 123);
        assert_eq!(cfg.seed, 7);
        let cfg = parse(&["-n", "9"], 500).unwrap();
        assert_eq!(cfg.iterations, 9);
    }

    #[test]
    fn workers_flag_sets_both_pool_widths() {
        let cfg = parse(&["--workers", "6"], 100).unwrap();
        assert_eq!(cfg.parallelism.suite_workers, 6);
        assert_eq!(cfg.parallelism.counter_workers, 6);
        assert!(parse(&["--workers", "0"], 100).is_err());
        assert!(parse(&["-w", "zero"], 100).is_err());
    }

    #[test]
    fn resilience_flags_apply() {
        let cfg = parse(
            &[
                "--timeout-ms",
                "250",
                "--retries",
                "2",
                "--inject",
                "drop@t0:0..100:p0.5",
            ],
            100,
        )
        .unwrap();
        assert_eq!(cfg.timeout_ms, Some(250));
        assert_eq!(cfg.retries, 2);
        assert!(!cfg.fault_plan.is_empty());
        assert!(parse(&["--timeout-ms", "0"], 1).is_err());
        assert!(parse(&["--inject", "bogus"], 1).is_err());
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--iterations"], 1).is_err());
        assert!(parse(&["--iterations", "x"], 1).is_err());
        assert!(parse(&["--wat"], 1).is_err());
        assert!(parse(&["--seed", "-1"], 1).is_err());
    }
}
