//! Regenerates Figure 11: relative detection-rate improvement across
//! iteration counts. The paper sweeps 100..100M; the default here sweeps
//! 100..1M to stay laptop-friendly (pass --iterations to raise the top).

fn main() {
    let cfg = perple_bench::config_from_args(1_000_000);
    let mut counts = vec![100u64, 1_000, 10_000, 100_000];
    let mut top = 1_000_000u64;
    while top <= cfg.iterations {
        counts.push(top);
        top *= 10;
    }
    counts.retain(|&c| c <= cfg.iterations.max(100_000));
    let points = perple::experiments::fig11::fig11(&counts, &cfg);
    print!("{}", perple::experiments::fig11::render(&points));
}
