//! Runs the design-choice ablations: heuristic pivot selection, drain
//! latency, scheduler noise.

fn main() {
    let cfg = perple_bench::config_from_args(10_000);
    let pivots = perple::experiments::ablation::pivot_ablation(&cfg);
    let drains = perple::experiments::ablation::drain_sweep(&cfg);
    let scheds = perple::experiments::ablation::scheduler_sweep(&cfg);
    print!(
        "{}",
        perple::experiments::ablation::render(&pivots, &drains, &scheds, &cfg)
    );
}
