//! Generates the critical-cycle family of a given length (default 4, the
//! classic two-thread tests) and prints each test with its SC/TSO
//! classification and convertibility — the diy-style generation workflow
//! PerpLE's Converter extends (§VIII).
//!
//! With `--run N`, additionally executes every convertible generated test
//! for `N` perpetual iterations and validates observations against the
//! classification: TSO-forbidden targets must stay silent, TSO-allowed
//! targets should appear. A self-validating generation campaign.

use perple::{
    classify, Conversion, CountRequest, Counter, HeuristicCounter, PerpleRunner, SimConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut len = 4usize;
    let mut run_iters: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--run" => {
                run_iters = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or(2_000));
            }
            other => {
                if let Ok(l) = other.parse() {
                    len = l;
                } else {
                    eprintln!("usage: generate [cycle-len] [--run N]");
                    std::process::exit(2);
                }
            }
        }
    }

    let family = perple_model::generate::generate_family(len);
    println!("{} tests from cycles of length {len}\n", family.len());
    let mut targets = 0;
    let mut violations = 0;
    for test in &family {
        let c = classify(test);
        let conv = Conversion::convert(test).ok();
        if c.is_target() {
            targets += 1;
        }
        let mut note = String::new();
        if let (Some(n), Some(conv)) = (run_iters, conv.as_ref()) {
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x6E2));
            let run = runner.run(&conv.perpetual, n);
            let bufs = run.bufs();
            let hits = HeuristicCounter::single(&conv.target_heuristic)
                .count(&CountRequest::new(&bufs, n))
                .counts[0];
            note = format!(" hits={hits}");
            if !c.tso_allowed && hits > 0 {
                violations += 1;
                note.push_str(" FALSE-POSITIVE");
            }
        }
        println!(
            "{:<44} T={} sc={:<5} tso={:<5} convertible={}{note}",
            test.name(),
            test.thread_count(),
            c.sc_allowed,
            c.tso_allowed,
            conv.is_some(),
        );
    }
    println!("\n{targets} TSO-only (store-buffering-revealing) targets");
    if run_iters.is_some() {
        println!("{violations} false positives across the campaign");
        if violations > 0 {
            std::process::exit(1);
        }
    }
}
