//! Regenerates Figure 9: target-outcome occurrences across tools.
//! Default 10k iterations as in the paper; override with --iterations.

fn main() {
    let cfg = perple_bench::config_from_args(10_000);
    let rows = perple::experiments::fig9::fig9(&cfg);
    print!("{}", perple::experiments::fig9::render(&rows, &cfg));
    let violations = perple::experiments::fig9::shape_violations(&rows);
    if violations.is_empty() {
        println!("shape check: OK (no false positives; all allowed targets exposed)");
    } else {
        println!("shape check: VIOLATIONS {violations:?}");
        std::process::exit(1);
    }
}
