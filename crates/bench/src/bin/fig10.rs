//! Regenerates Figure 10: runtime speedups over litmus7 user mode.

fn main() {
    let cfg = perple_bench::config_from_args(10_000);
    let rows = perple::experiments::fig10::fig10(&cfg);
    print!("{}", perple::experiments::fig10::render(&rows, &cfg));
}
