//! Regenerates Figure 12: thread-skew PDF of the perpetual sb test
//! (default 100k iterations, as in the paper).

fn main() {
    let cfg = perple_bench::config_from_args(100_000);
    let data = perple::experiments::fig12::fig12(&cfg);
    print!("{}", perple::experiments::fig12::render(&data));
}
