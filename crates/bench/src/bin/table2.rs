//! Regenerates Table II: suite classification under SC and x86-TSO.

fn main() {
    let rows = perple::experiments::table2::table2();
    print!("{}", perple::experiments::table2::render(&rows));
}
