//! Regenerates the §VII-G overall-impact numbers on the 88-test suite
//! (default 10k iterations, as in the paper).

fn main() {
    let cfg = perple_bench::config_from_args(10_000);
    let impact = perple::experiments::overall::overall(&cfg);
    print!("{}", perple::experiments::overall::render(&impact, &cfg));
}
