//! Bug hunt: run the suite against a machine that claims x86-TSO but
//! drains store buffers out of order (PSO-like fault injection).

fn main() {
    let cfg = perple_bench::config_from_args(10_000);
    let reports = perple::experiments::bugfinder::bugfinder(&cfg);
    print!("{}", perple::experiments::bugfinder::render(&reports, &cfg));
    let wrong = reports.iter().filter(|r| !r.perple_correct()).count();
    if wrong > 0 {
        println!("{wrong} incorrect verdicts");
        std::process::exit(1);
    }
}
