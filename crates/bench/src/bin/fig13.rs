//! Regenerates Figure 13: outcome variety for sb, lb and podwr001
//! (default 1k iterations, as in the paper).

fn main() {
    let cfg = perple_bench::config_from_args(1_000);
    let entries = perple::experiments::fig13::fig13(&cfg);
    print!("{}", perple::experiments::fig13::render(&entries, &cfg));
}
