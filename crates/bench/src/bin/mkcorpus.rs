fn main() {
    let n = perple_model::suite::write_corpus(std::path::Path::new("corpus")).unwrap();
    println!("{n} files written to corpus/");
}
