//! Micro-benchmarks of the outcome counters: the heuristic's linear
//! scaling, the exhaustive counter's `N^{T_L}` blow-up (Figure 10's
//! counting component), and the rf closure counter that removes it.
//!
//! The rf counter made the old iteration counts trivial, so the default
//! sizes are 10× what the exhaustive-only version of this bench used; the
//! exhaustive cases keep their historical sizes (they are the slow ones).

use perple::{
    Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter, PerpleRunner,
    RfCounter, SimConfig,
};
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(10);
    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("sb converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xBE));

    for &n in &[10_000u64, 40_000, 160_000] {
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        bench.run(&format!("counters/sb/heuristic/{n}"), || {
            HeuristicCounter::single(&conv.target_heuristic).count(std::hint::black_box(&req))
        });
        bench.run(&format!("counters/sb/rf/{n}"), || {
            RfCounter::single(&conv.target_exhaustive).count(std::hint::black_box(&req))
        });
        // The exhaustive counter is quadratic for sb; keep N modest.
        if n <= 10_000 {
            bench.run(&format!("counters/sb/exhaustive/{n}"), || {
                ExhaustiveCounter::single(&conv.target_exhaustive).count(std::hint::black_box(&req))
            });
        }
    }

    // T_L = 3: the cubic case the paper calls "a dramatic slowdown". The rf
    // counter runs it at 10× the N the exhaustive scan could afford.
    let test3 = suite::podwr001();
    let conv3 = Conversion::convert(&test3).expect("podwr001 converts");
    for &n in &[200u64, 2_000] {
        let run = runner.run(&conv3.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        bench.run(&format!("counters/podwr001/heuristic/{n}"), || {
            HeuristicCounter::single(&conv3.target_heuristic).count(std::hint::black_box(&req))
        });
        bench.run(&format!("counters/podwr001/rf/{n}"), || {
            RfCounter::single(&conv3.target_exhaustive).count(std::hint::black_box(&req))
        });
        if n <= 200 {
            bench.run(&format!("counters/podwr001/exhaustive/{n}"), || {
                ExhaustiveCounter::single(&conv3.target_exhaustive)
                    .count(std::hint::black_box(&req))
            });
        }
    }
}
