//! Criterion benchmarks of the outcome counters: the heuristic's linear
//! scaling vs the exhaustive counter's `N^{T_L}` blow-up (Figure 10's
//! counting component).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use perple::{count_exhaustive, count_heuristic, Conversion, PerpleRunner, SimConfig};
use perple_model::suite;

fn bench_counters(c: &mut Criterion) {
    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("sb converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xBE));

    let mut group = c.benchmark_group("counters/sb");
    for &n in &[1_000u64, 4_000, 16_000] {
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        group.bench_with_input(BenchmarkId::new("heuristic", n), &n, |b, &n| {
            b.iter(|| {
                count_heuristic(
                    std::slice::from_ref(&conv.target_heuristic),
                    std::hint::black_box(&bufs),
                    n,
                )
            })
        });
        // The exhaustive counter is quadratic for sb; keep N modest.
        if n <= 4_000 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, &n| {
                b.iter(|| {
                    count_exhaustive(
                        std::slice::from_ref(&conv.target_exhaustive),
                        std::hint::black_box(&bufs),
                        n,
                        None,
                    )
                })
            });
        }
    }
    group.finish();

    // T_L = 3: the cubic case the paper calls "a dramatic slowdown".
    let test3 = suite::podwr001();
    let conv3 = Conversion::convert(&test3).expect("podwr001 converts");
    let mut group = c.benchmark_group("counters/podwr001");
    let n = 200u64;
    let run = runner.run(&conv3.perpetual, n);
    let bufs = run.bufs();
    group.bench_function("heuristic/200", |b| {
        b.iter(|| {
            count_heuristic(
                std::slice::from_ref(&conv3.target_heuristic),
                std::hint::black_box(&bufs),
                n,
            )
        })
    });
    group.bench_function("exhaustive/200", |b| {
        b.iter(|| {
            count_exhaustive(
                std::slice::from_ref(&conv3.target_exhaustive),
                std::hint::black_box(&bufs),
                n,
                None,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_counters
}
criterion_main!(benches);
