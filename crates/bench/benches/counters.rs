//! Micro-benchmarks of the outcome counters: the heuristic's linear
//! scaling vs the exhaustive counter's `N^{T_L}` blow-up (Figure 10's
//! counting component).

use perple::{
    Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter, PerpleRunner, SimConfig,
};
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(10);
    let test = suite::sb();
    let conv = Conversion::convert(&test).expect("sb converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xBE));

    for &n in &[1_000u64, 4_000, 16_000] {
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        bench.run(&format!("counters/sb/heuristic/{n}"), || {
            HeuristicCounter::single(&conv.target_heuristic).count(std::hint::black_box(&req))
        });
        // The exhaustive counter is quadratic for sb; keep N modest.
        if n <= 4_000 {
            bench.run(&format!("counters/sb/exhaustive/{n}"), || {
                ExhaustiveCounter::single(&conv.target_exhaustive).count(std::hint::black_box(&req))
            });
        }
    }

    // T_L = 3: the cubic case the paper calls "a dramatic slowdown".
    let test3 = suite::podwr001();
    let conv3 = Conversion::convert(&test3).expect("podwr001 converts");
    let n = 200u64;
    let run = runner.run(&conv3.perpetual, n);
    let bufs = run.bufs();
    let req = CountRequest::new(&bufs, n);
    bench.run("counters/podwr001/heuristic/200", || {
        HeuristicCounter::single(&conv3.target_heuristic).count(std::hint::black_box(&req))
    });
    bench.run("counters/podwr001/exhaustive/200", || {
        ExhaustiveCounter::single(&conv3.target_exhaustive).count(std::hint::black_box(&req))
    });
}
