//! Micro-benchmarks of the frame-sharded parallel counters: serial
//! reference vs the sharded exhaustive scan across a worker sweep, on both
//! a quadratic (`sb`, T_L = 2) and a cubic (`podwr001`, T_L = 3) frame
//! space. Counts are asserted bit-identical while timing, so the numbers
//! can't come from a diverged scan.

use perple::{
    default_workers, Conversion, CountRequest, Counter, ExhaustiveCounter, HeuristicCounter,
    PerpleRunner, SimConfig,
};
use perple_bench::micro::Bench;
use perple_model::suite;

fn sweep(bench: &Bench, name: &str, n: u64) {
    let test = suite::by_name(name).expect("suite test");
    let conv = Conversion::convert(&test).expect("converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xAB12));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();
    let outcomes = std::slice::from_ref(&conv.target_exhaustive);

    let req = CountRequest::new(&bufs, n);
    let reference = ExhaustiveCounter::new(outcomes).count(&req);
    let serial = bench.run(&format!("parallel/{name}/exhaustive/serial/{n}"), || {
        ExhaustiveCounter::new(outcomes).count(std::hint::black_box(&req))
    });

    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let avail = default_workers();
    if !workers.contains(&avail) {
        workers.push(avail);
    }
    for w in workers {
        let sharded = req.with_workers(w);
        let median = bench.run(
            &format!("parallel/{name}/exhaustive/workers={w}/{n}"),
            || {
                let r = ExhaustiveCounter::new(outcomes).count(std::hint::black_box(&sharded));
                assert_eq!(r.counts, reference.counts, "diverged at workers={w}");
                r
            },
        );
        let speedup = serial.as_secs_f64() / median.as_secs_f64().max(1e-12);
        println!("    -> {speedup:.2}x vs serial");
    }

    // The heuristic counter is linear and tiny; the sweep mostly shows
    // the break-even point where thread launch overhead dominates.
    let heur = HeuristicCounter::single(&conv.target_heuristic);
    bench.run(&format!("parallel/{name}/heuristic/serial/{n}"), || {
        heur.count(std::hint::black_box(&req))
    });
    let four = req.with_workers(4);
    bench.run(&format!("parallel/{name}/heuristic/workers=4/{n}"), || {
        heur.count(std::hint::black_box(&four))
    });
}

fn main() {
    let bench = Bench::new(10);
    println!("available parallelism: {}", default_workers());
    sweep(&bench, "sb", 3_000); // 9M frames
    sweep(&bench, "podwr001", 150); // 3.4M frames, 3 digits per seek
}
