//! Micro-benchmarks of the frame-sharded parallel counters: serial
//! reference vs `count_exhaustive_parallel` across a worker sweep, on both
//! a quadratic (`sb`, T_L = 2) and a cubic (`podwr001`, T_L = 3) frame
//! space. Counts are asserted bit-identical while timing, so the numbers
//! can't come from a diverged scan.

use perple::{
    count_exhaustive, count_exhaustive_parallel, count_heuristic, count_heuristic_parallel,
    default_workers, Conversion, PerpleRunner, SimConfig,
};
use perple_bench::micro::Bench;
use perple_model::suite;

fn sweep(bench: &Bench, name: &str, n: u64) {
    let test = suite::by_name(name).expect("suite test");
    let conv = Conversion::convert(&test).expect("converts");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xAB12));
    let run = runner.run(&conv.perpetual, n);
    let bufs = run.bufs();
    let outcomes = std::slice::from_ref(&conv.target_exhaustive);

    let reference = count_exhaustive(outcomes, &bufs, n, None);
    let serial = bench.run(&format!("parallel/{name}/exhaustive/serial/{n}"), || {
        count_exhaustive(outcomes, std::hint::black_box(&bufs), n, None)
    });

    let mut workers: Vec<usize> = vec![1, 2, 4, 8];
    let avail = default_workers();
    if !workers.contains(&avail) {
        workers.push(avail);
    }
    for w in workers {
        let median = bench.run(
            &format!("parallel/{name}/exhaustive/workers={w}/{n}"),
            || {
                let r =
                    count_exhaustive_parallel(outcomes, std::hint::black_box(&bufs), n, None, w);
                assert_eq!(r.counts, reference.counts, "diverged at workers={w}");
                r
            },
        );
        let speedup = serial.as_secs_f64() / median.as_secs_f64().max(1e-12);
        println!("    -> {speedup:.2}x vs serial");
    }

    // The heuristic counter is linear and tiny; the sweep mostly shows
    // the break-even point where thread launch overhead dominates.
    let heur = std::slice::from_ref(&conv.target_heuristic);
    bench.run(&format!("parallel/{name}/heuristic/serial/{n}"), || {
        count_heuristic(heur, std::hint::black_box(&bufs), n)
    });
    bench.run(&format!("parallel/{name}/heuristic/workers=4/{n}"), || {
        count_heuristic_parallel(heur, std::hint::black_box(&bufs), n, 4)
    });
}

fn main() {
    let bench = Bench::new(10);
    println!("available parallelism: {}", default_workers());
    sweep(&bench, "sb", 3_000); // 9M frames
    sweep(&bench, "podwr001", 150); // 3.4M frames, 3 digits per seek
}
