//! Criterion benchmarks of the simulated TSO machine: perpetual-run
//! throughput (the execution component of every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use perple::{Conversion, PerpleRunner, SimConfig};
use perple_model::suite;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/perpetual");
    for name in ["sb", "mp", "iriw", "podwr001"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("convertible");
        let n = 10_000u64;
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x51));
            b.iter(|| runner.run(std::hint::black_box(&conv.perpetual), n))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
