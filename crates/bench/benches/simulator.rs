//! Micro-benchmarks of the simulated TSO machine: perpetual-run
//! throughput (the execution component of every experiment).

use perple::{Conversion, PerpleRunner, SimConfig};
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(10);
    for name in ["sb", "mp", "iriw", "podwr001"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("convertible");
        let n = 10_000u64;
        let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0x51));
        let median = bench.run(&format!("simulator/perpetual/{name}/{n}"), || {
            runner.run(std::hint::black_box(&conv.perpetual), n)
        });
        let per_iter = median.as_nanos() as f64 / n as f64;
        println!("    -> {per_iter:.1}ns per iteration");
    }
}
