//! Cold vs warm campaign runs: how much wall time the content-addressed
//! cache saves when nothing changed. The cold case opens a fresh store for
//! every pass (full convert → simulate → count pipeline); the warm case
//! reuses one pre-seeded store, so every item is a fingerprint lookup. The
//! warm path asserts zero executions per pass, so the speedup can't come
//! from a partially-working cache quietly re-running items.

use std::cell::Cell;
use std::path::PathBuf;

use perple::campaign::CampaignSpec;
use perple::experiments::campaign::run_spec;
use perple_bench::micro::Bench;

fn spec(iterations: u64) -> CampaignSpec {
    let mut s = CampaignSpec::named("bench");
    s.tests = vec!["convertible".to_owned()];
    s.seeds = vec![1, 2];
    s.iterations = iterations;
    s.workers = 4;
    s
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-bench-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let bench = Bench::new(5);
    for n in [200u64, 800] {
        let s = spec(n);
        let items = s.tests.len(); // expanded below; printed from the first run

        let root = scratch(&format!("cold-{n}"));
        let pass = Cell::new(0u32);
        let cold = bench.run(&format!("campaign/cold/n={n}"), || {
            // A fresh store sub-directory per pass keeps every pass cold.
            let store = root.join(pass.get().to_string());
            pass.set(pass.get() + 1);
            let summary = run_spec(&s, &store, false).expect("cold run");
            assert_eq!(summary.hits, 0, "cold pass must miss everything");
            summary
        });
        let _ = std::fs::remove_dir_all(&root);
        let _ = items;

        let warm_root = scratch(&format!("warm-{n}"));
        let seeded = run_spec(&s, &warm_root, false).expect("seeding run");
        let warm = bench.run(&format!("campaign/warm/n={n}"), || {
            let summary = run_spec(&s, &warm_root, false).expect("warm run");
            assert_eq!(summary.hits, seeded.items, "warm pass must hit everything");
            assert_eq!(summary.executed, 0, "warm pass must execute nothing");
            summary
        });
        let _ = std::fs::remove_dir_all(&warm_root);

        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-12);
        println!(
            "    -> {} items, {speedup:.1}x faster warm (pipeline fully skipped)",
            seeded.items
        );
    }
}
