//! Micro-benchmarks of the Converter: full-pipeline conversion of the
//! suite and outcome-space conversion (the once-per-test cost the paper's
//! Converter pays offline).

use perple::Conversion;
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(20);

    {
        let test = suite::sb();
        bench.run("convert/sb", || {
            Conversion::convert(std::hint::black_box(&test)).expect("converts")
        });
    }

    {
        let tests = suite::convertible();
        bench.run("convert/whole_suite", || {
            tests
                .iter()
                .filter(|t| Conversion::convert(std::hint::black_box(t)).is_ok())
                .count()
        });
    }

    {
        let test = suite::podwr001();
        let conv = Conversion::convert(&test).expect("converts");
        bench.run("convert/all_outcomes/podwr001", || {
            conv.all_outcomes(std::hint::black_box(&test))
                .expect("outcomes")
        });
    }

    {
        let test = suite::sb();
        let conv = Conversion::convert(&test).expect("converts");
        bench.run("codegen/sb", || {
            let asm = perple_convert::codegen::emit_thread_asm(&conv.perpetual);
            let count = perple_convert::codegen::emit_count_c(
                &conv.perpetual,
                std::slice::from_ref(&conv.target_exhaustive),
            );
            (asm, count)
        });
    }
}
