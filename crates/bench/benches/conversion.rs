//! Criterion benchmarks of the Converter: full-pipeline conversion of the
//! suite and outcome-space conversion (the once-per-test cost the paper's
//! Converter pays offline).

use criterion::{criterion_group, criterion_main, Criterion};

use perple::Conversion;
use perple_model::suite;

fn bench_conversion(c: &mut Criterion) {
    c.bench_function("convert/sb", |b| {
        let test = suite::sb();
        b.iter(|| Conversion::convert(std::hint::black_box(&test)).expect("converts"))
    });

    c.bench_function("convert/whole_suite", |b| {
        let tests = suite::convertible();
        b.iter(|| {
            tests
                .iter()
                .map(|t| Conversion::convert(std::hint::black_box(t)).expect("converts"))
                .count()
        })
    });

    c.bench_function("convert/all_outcomes/podwr001", |b| {
        let test = suite::podwr001();
        let conv = Conversion::convert(&test).expect("converts");
        b.iter(|| conv.all_outcomes(std::hint::black_box(&test)).expect("outcomes"))
    });

    c.bench_function("codegen/sb", |b| {
        let test = suite::sb();
        let conv = Conversion::convert(&test).expect("converts");
        b.iter(|| {
            let asm = perple_convert::codegen::emit_thread_asm(&conv.perpetual);
            let count = perple_convert::codegen::emit_count_c(
                &conv.perpetual,
                std::slice::from_ref(&conv.target_exhaustive),
            );
            (asm, count)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conversion
}
criterion_main!(benches);
