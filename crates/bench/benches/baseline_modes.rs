//! Criterion benchmarks of the litmus7-style baseline per synchronization
//! mode: the wall-clock counterpart of Figure 10's per-iteration barrier
//! cost differences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use perple::{BaselineRunner, SimConfig, SyncMode};
use perple_model::suite;

fn bench_baseline(c: &mut Criterion) {
    let test = suite::sb();
    let n = 2_000u64;
    let mut group = c.benchmark_group("baseline/sb");
    group.throughput(Throughput::Elements(n));
    for mode in SyncMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.as_str()),
            &n,
            |b, &n| {
                let mut runner =
                    BaselineRunner::new(SimConfig::default().with_seed(0xBA5E), mode);
                b.iter(|| runner.run(std::hint::black_box(&test), n))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baseline
}
criterion_main!(benches);
