//! Micro-benchmarks of the litmus7-style baseline per synchronization
//! mode: the wall-clock counterpart of Figure 10's per-iteration barrier
//! cost differences.

use perple::{BaselineRunner, SimConfig, SyncMode};
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(10);
    let test = suite::sb();
    let n = 2_000u64;
    for mode in SyncMode::ALL {
        let mut runner = BaselineRunner::new(SimConfig::default().with_seed(0xBA5E), mode);
        bench.run(&format!("baseline/sb/{}/{n}", mode.as_str()), || {
            runner.run(std::hint::black_box(&test), n)
        });
    }
}
