//! The rf closure counter's asymptotic win over the exhaustive frame scan,
//! with the bit-equality check inline: every timed rf count at a size the
//! exhaustive counter can still afford is asserted equal to it, so a
//! speedup produced by a wrong count aborts the bench.
//!
//! The headline case is a `T_L = 3` test (`podwr001`): the exhaustive
//! counter examines `N^3` frames while the rf counter does `~2N + N^2`
//! work, so the frames-examined reduction printed at the end grows
//! linearly in `N` (≥10× already at `N = 100`; see `EXPERIMENTS.md`).

use perple::{
    Conversion, CountRequest, Counter, ExhaustiveCounter, PerpleRunner, RfCounter, SimConfig,
};
use perple_bench::micro::Bench;
use perple_model::suite;

fn main() {
    let bench = Bench::new(10);
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(0xF5));

    // Differential warm-up across shapes: pair sweep (sb, mp), mixed
    // identity/data pair (wrc), and the triple (podwr001).
    for name in ["sb", "mp", "wrc", "podwr001"] {
        let test = suite::by_name(name).expect("suite test");
        let conv = Conversion::convert(&test).expect("convertible");
        let n = 100u64;
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        let rf = RfCounter::single(&conv.target_exhaustive).count(&req);
        let exh = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
        assert_eq!(rf.counts, exh.counts, "{name}: rf must match exhaustive");
        assert!(!rf.downgraded, "{name}: target must be in the rf fragment");
        println!(
            "counters_rf/equality/{name}/{n}: count {} ({} rf frames vs {} exhaustive, {:.1}x)",
            rf.counts[0],
            rf.frames_examined,
            exh.frames_examined,
            exh.frames_examined as f64 / rf.frames_examined as f64,
        );
    }

    // The asymptotic case: N^3 exhaustive frames vs polynomial rf work.
    let test = suite::podwr001();
    let conv = Conversion::convert(&test).expect("podwr001 converts");
    for &n in &[100u64, 400, 2_000] {
        let run = runner.run(&conv.perpetual, n);
        let bufs = run.bufs();
        let req = CountRequest::new(&bufs, n);
        bench.run(&format!("counters_rf/podwr001/rf/{n}"), || {
            RfCounter::single(&conv.target_exhaustive).count(std::hint::black_box(&req))
        });
        let rf = RfCounter::single(&conv.target_exhaustive).count(&req);
        if n <= 400 {
            bench.run(&format!("counters_rf/podwr001/exhaustive/{n}"), || {
                ExhaustiveCounter::single(&conv.target_exhaustive).count(std::hint::black_box(&req))
            });
            let exh = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
            assert_eq!(rf.counts, exh.counts, "podwr001@{n}");
            assert!(
                rf.frames_examined.saturating_mul(10) <= exh.frames_examined,
                "podwr001@{n}: want >=10x frame reduction, got {} vs {}",
                rf.frames_examined,
                exh.frames_examined,
            );
        }
        let cubic = n * n * n;
        println!(
            "counters_rf/podwr001/{n}: {} rf frames vs {} exhaustive ({:.0}x reduction)",
            rf.frames_examined,
            cubic,
            cubic as f64 / rf.frames_examined as f64,
        );
    }
}
