//! Micro-benchmarks of the static analyzer: single-test lint cost and the
//! corpus-wide sweep that the CI gate (`perple lint --deny warnings
//! corpus/*.litmus`) pays on every push.

use perple::lint::{lint_source, lint_test, LintConfig, LintReport, Severity};
use perple_bench::micro::Bench;
use perple_model::suite;

/// Loads every corpus file's source text (the bench measures linting, not
/// disk I/O).
fn corpus_sources() -> Vec<String> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("corpus file"))
        .collect()
}

fn main() {
    let bench = Bench::new(20);
    let cfg = LintConfig::default();

    {
        let test = suite::sb();
        bench.run("lint/sb", || lint_test(std::hint::black_box(&test), &cfg));
    }

    {
        // The worst single-test case: L003's axiomatic cross-check walks
        // the whole outcome space, largest for 4-thread tests.
        let test = suite::by_name("iriw").expect("iriw in suite");
        bench.run("lint/iriw", || lint_test(std::hint::black_box(&test), &cfg));
    }

    {
        let sources = corpus_sources();
        assert_eq!(sources.len(), 88, "corpus size");
        bench.run("lint/corpus_88", || {
            let tests: Vec<_> = sources
                .iter()
                .map(|src| lint_source(std::hint::black_box(src), &cfg).expect("corpus parses"))
                .collect();
            let report = LintReport::new(cfg.clone(), tests);
            assert_eq!(report.count(Severity::Error), 0);
            report
        });
    }

    {
        let sources = corpus_sources();
        bench.run("lint/corpus_88_json", || {
            let tests: Vec<_> = sources
                .iter()
                .map(|src| lint_source(std::hint::black_box(src), &cfg).expect("corpus parses"))
                .collect();
            LintReport::new(cfg.clone(), tests).to_json().render()
        });
    }
}
