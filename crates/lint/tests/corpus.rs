//! Corpus-wide lint regression suite.
//!
//! Lints every `.litmus` file in the repository corpus and pins the
//! complete set of findings in a checked-in JSON fixture. Any rule change
//! that alters a finding anywhere in the 88-test corpus shows up as a
//! fixture diff. Regenerate deliberately with:
//!
//! ```text
//! PERPLE_LINT_BLESS=1 cargo test -p perple-lint --test corpus
//! ```

use std::fs;
use std::path::PathBuf;

use perple_lint::{lint_source, LintConfig, LintReport, RuleId, Severity, TestReport};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Lints the full corpus in filename order.
fn lint_corpus() -> LintReport {
    let cfg = LintConfig::default();
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "litmus"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 88, "corpus should hold the full 88-test suite");
    let tests: Vec<TestReport> = files
        .iter()
        .map(|p| {
            let src = fs::read_to_string(p).expect("read corpus file");
            let mut report =
                lint_source(&src, &cfg).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            report.origin = Some(format!(
                "corpus/{}",
                p.file_name().unwrap().to_string_lossy()
            ));
            report
        })
        .collect();
    LintReport::new(cfg, tests)
}

#[test]
fn corpus_is_error_and_warning_free() {
    let report = lint_corpus();
    for t in &report.tests {
        for d in &t.diagnostics {
            assert!(
                d.severity < Severity::Warning,
                "{}: corpus must be clean under --deny warnings, got {d}",
                t.name
            );
        }
    }
}

#[test]
fn corpus_lint_json_is_byte_identical_across_runs() {
    let a = lint_corpus().to_json().render();
    let b = lint_corpus().to_json().render();
    assert_eq!(a, b);
}

#[test]
fn every_non_convertible_test_gets_a_spanned_l002() {
    let report = lint_corpus();
    let non_convertible: Vec<&TestReport> =
        report.tests.iter().filter(|t| !t.convertible).collect();
    assert_eq!(
        non_convertible.len(),
        54,
        "the paper's non-convertible complement is 54 tests"
    );
    for t in non_convertible {
        let l002: Vec<_> = t
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::L002)
            .collect();
        assert!(!l002.is_empty(), "{}: missing L002 explanation", t.name);
        for d in l002 {
            assert!(
                !d.span.is_empty(),
                "{}: L002 must carry a source span: {d}",
                t.name
            );
            let snippet = t
                .snippet(d)
                .unwrap_or_else(|| panic!("{}: L002 span out of bounds: {d}", t.name));
            assert!(
                !snippet.trim().is_empty(),
                "{}: L002 span covers no text",
                t.name
            );
        }
    }
    // Conversely, convertible tests carry no L002.
    for t in report.tests.iter().filter(|t| t.convertible) {
        assert!(
            t.diagnostics.iter().all(|d| d.rule != RuleId::L002),
            "{}: convertible test must not carry L002",
            t.name
        );
    }
}

#[test]
fn corpus_findings_match_the_pinned_fixture() {
    let fixture_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus_lint.json");
    let got = lint_corpus().to_json().render() + "\n";
    if std::env::var_os("PERPLE_LINT_BLESS").is_some() {
        fs::create_dir_all(fixture_path.parent().unwrap()).unwrap();
        fs::write(&fixture_path, &got).unwrap();
        return;
    }
    let want = fs::read_to_string(&fixture_path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PERPLE_LINT_BLESS=1",
            fixture_path.display()
        )
    });
    assert_eq!(
        got, want,
        "corpus lint findings changed; if intentional, regenerate the fixture with \
         PERPLE_LINT_BLESS=1 cargo test -p perple-lint --test corpus"
    );
}
