//! # perple-lint
//!
//! Rule-based static analysis over litmus tests, their perpetual
//! conversions, and their outcome conditions.
//!
//! PerpLE's correctness rests on invariants the pipeline otherwise checks
//! only dynamically (or not at all): value-uniqueness of the arithmetic
//! sequences `k_mem * n_t + a`, convertibility (§V-C), and soundness of the
//! heuristic condition `p_out_h` relative to the exhaustive `p_out`. This
//! crate pushes those checks ahead of the expensive counting phase as cheap
//! whole-test static rules with spanned, structured diagnostics.
//!
//! ## Rules
//!
//! | id | name | checks |
//! |------|------------------------|--------|
//! | L001 | sequence-overflow      | `k_mem * n + a` fits the value width for the configured iteration count |
//! | L002 | non-convertible        | per-clause / per-instruction reasons a test falls outside §V-C |
//! | L003 | condition-vacuity      | dead / tautological conditions, cross-validated against the axiomatic TSO model |
//! | L004 | heuristic-ambiguity    | linear partner derivation falls back to lockstep (`p_out_h` may undercount) |
//! | L005 | codegen-hygiene        | clobbered / unused registers, location aliasing in per-thread programs |
//! | L006 | outcome-coverage       | condition clauses expecting values the outcome space cannot produce |
//!
//! ## Severity model
//!
//! [`Severity::Error`] marks converter bugs and configurations that would
//! produce wrong counts (overflowing sequences, tautology/infeasibility
//! disagreeing with the axiomatic model). [`Severity::Warning`] marks
//! suspicious-but-runnable constructs (dead clauses, clobbered registers).
//! [`Severity::Note`] is informational — in particular, the expected
//! non-convertibility explanations (L002) for the 54-test complement are
//! notes, so a clean corpus stays clean under `--deny warnings`.
//!
//! # Example
//!
//! ```
//! use perple_lint::{lint_test, LintConfig};
//! use perple_model::suite;
//!
//! let report = lint_test(&suite::sb(), &LintConfig::default());
//! assert!(report.diagnostics.is_empty());
//! assert!(report.convertible);
//!
//! let nc = lint_test(&suite::by_name("2+2w").unwrap(), &LintConfig::default());
//! assert!(!nc.convertible);
//! assert!(nc.diagnostics.iter().any(|d| d.rule.code() == "L002"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rules;

use std::fmt;

use perple_analysis::jsonout::Json;
use perple_model::{parser, printer, LitmusTest, ModelError, SourceMap, Span};

/// Diagnostic severity, ordered `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never gates.
    Note,
    /// Suspicious construct; gates under `--deny warnings`.
    Warning,
    /// Definite defect; always gates.
    Error,
}

impl Severity {
    /// Lowercase name, as emitted in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Sequence value overflow at the configured iteration count.
    L001,
    /// Reasons a test is non-convertible (§V-C).
    L002,
    /// Dead / tautological conditions vs the axiomatic model.
    L003,
    /// Ambiguous linear partner derivation (heuristic undercount risk).
    L004,
    /// Codegen hygiene: clobbered/unused registers, location aliasing.
    L005,
    /// Outcome-space coverage of condition clauses.
    L006,
}

impl RuleId {
    /// Every rule, in id order.
    pub const ALL: [RuleId; 6] = [
        RuleId::L001,
        RuleId::L002,
        RuleId::L003,
        RuleId::L004,
        RuleId::L005,
        RuleId::L006,
    ];

    /// The stable machine code, e.g. `"L001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
            RuleId::L006 => "L006",
        }
    }

    /// The short human name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::L001 => "sequence-overflow",
            RuleId::L002 => "non-convertible",
            RuleId::L003 => "condition-vacuity",
            RuleId::L004 => "heuristic-ambiguity",
            RuleId::L005 => "codegen-hygiene",
            RuleId::L006 => "outcome-coverage",
        }
    }

    /// One-line description for `--help`-style listings.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::L001 => "prove k_mem*n+a fits the value width for the configured iteration count",
            RuleId::L002 => "explain per clause/instruction why a test is non-convertible (paper §V-C)",
            RuleId::L003 => "detect dead or tautological conditions, cross-validated against the axiomatic TSO model",
            RuleId::L004 => "flag outcomes whose linear partner derivation falls back to lockstep",
            RuleId::L005 => "flag clobbered or unused registers and case-aliased locations",
            RuleId::L006 => "flag condition clauses expecting values the outcome space cannot produce",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: rule, severity, source span, and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// How severe the finding is.
    pub severity: Severity,
    /// Where in the (canonical) litmus source the finding points. The
    /// default (empty) span means "the whole test".
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if !self.span.is_empty() {
            write!(f, " ({})", self.span)?;
        }
        write!(f, " {}", self.message)
    }
}

/// Analysis configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Iteration count `N` the perpetual run is checked against (L001).
    pub iterations: u64,
    /// Bit width of runtime memory values (L001).
    pub value_bits: u32,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            iterations: 10_000,
            value_bits: 64,
        }
    }
}

/// Lint results for one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestReport {
    /// Test name.
    pub name: String,
    /// Where the source came from (file path), if linted from a file.
    pub origin: Option<String>,
    /// The litmus source the spans index into.
    pub source: String,
    /// Whether the test is convertible (§V-C).
    pub convertible: bool,
    /// Findings, in rule order then source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl TestReport {
    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// The spanned source text of a diagnostic, if its span is non-empty.
    pub fn snippet(&self, d: &Diagnostic) -> Option<&str> {
        if d.span.is_empty() {
            None
        } else {
            d.span.slice(&self.source)
        }
    }
}

/// Lint results for a batch of tests plus the config they ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// The configuration the rules ran under.
    pub config: LintConfig,
    /// Per-test results, in input order.
    pub tests: Vec<TestReport>,
}

impl LintReport {
    /// Wraps per-test reports.
    pub fn new(config: LintConfig, tests: Vec<TestReport>) -> Self {
        Self { config, tests }
    }

    /// Total diagnostics at exactly `sev` across all tests.
    pub fn count(&self, sev: Severity) -> usize {
        self.tests.iter().map(|t| t.count(sev)).sum()
    }

    /// True if the batch should gate: any error, or any warning when
    /// `deny_warnings` is set. Notes never gate.
    pub fn gates(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) > 0 || (deny_warnings && self.count(Severity::Warning) > 0)
    }

    /// The machine-readable report (schema `perple-lint-v1`). Byte-stable:
    /// two runs over the same inputs render identically.
    pub fn to_json(&self) -> Json {
        let tests = self
            .tests
            .iter()
            .map(|t| {
                let diags = t
                    .diagnostics
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("rule", Json::Str(d.rule.code().to_owned())),
                            ("name", Json::Str(d.rule.name().to_owned())),
                            ("severity", Json::Str(d.severity.as_str().to_owned())),
                            ("line", Json::Int(d.span.line as i128)),
                            ("start", Json::Int(d.span.start as i128)),
                            ("end", Json::Int(d.span.end as i128)),
                            ("message", Json::Str(d.message.clone())),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("test", Json::Str(t.name.clone())),
                    (
                        "source",
                        t.origin
                            .as_ref()
                            .map_or(Json::Null, |p| Json::Str(p.clone())),
                    ),
                    ("convertible", Json::Bool(t.convertible)),
                    ("diagnostics", Json::Arr(diags)),
                    (
                        "counts",
                        Json::obj(vec![
                            ("errors", Json::Int(t.count(Severity::Error) as i128)),
                            ("warnings", Json::Int(t.count(Severity::Warning) as i128)),
                            ("notes", Json::Int(t.count(Severity::Note) as i128)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str("perple-lint-v1".to_owned())),
            (
                "config",
                Json::obj(vec![
                    ("iterations", Json::Int(self.config.iterations as i128)),
                    ("value_bits", Json::Int(self.config.value_bits as i128)),
                ]),
            ),
            ("tests", Json::Arr(tests)),
            (
                "totals",
                Json::obj(vec![
                    ("tests", Json::Int(self.tests.len() as i128)),
                    ("errors", Json::Int(self.count(Severity::Error) as i128)),
                    ("warnings", Json::Int(self.count(Severity::Warning) as i128)),
                    ("notes", Json::Int(self.count(Severity::Note) as i128)),
                ]),
            ),
        ])
    }

    /// Human-readable rendering: per-test diagnostics with quoted snippets,
    /// then a summary line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in &self.tests {
            if t.diagnostics.is_empty() {
                continue;
            }
            let origin = t.origin.as_deref().unwrap_or("<suite>");
            let _ = writeln!(out, "{} ({origin}):", t.name);
            for d in &t.diagnostics {
                let _ = writeln!(out, "  {d}");
                if let Some(snip) = t.snippet(d) {
                    let _ = writeln!(out, "    | {snip}");
                }
            }
        }
        let _ = writeln!(
            out,
            "{} tests: {} errors, {} warnings, {} notes",
            self.tests.len(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        );
        out
    }
}

/// Lints a litmus source text.
///
/// # Errors
/// Returns the (spanned) [`ModelError`] if the source does not parse.
pub fn lint_source(src: &str, cfg: &LintConfig) -> Result<TestReport, ModelError> {
    let (test, map) = parser::parse_with_spans(src)?;
    Ok(lint_parsed(&test, src, &map, cfg))
}

/// Lints a programmatically-built test by rendering it to canonical litmus
/// text first (so diagnostics carry spans into that text).
pub fn lint_test(test: &LitmusTest, cfg: &LintConfig) -> TestReport {
    let src = printer::print(test);
    let (reparsed, map) = parser::parse_with_spans(&src)
        .expect("printer output must re-parse (round-trip invariant)");
    debug_assert_eq!(&reparsed, test);
    lint_parsed(&reparsed, &src, &map, cfg)
}

/// Runs every rule over an already-parsed test and its source map.
pub fn lint_parsed(test: &LitmusTest, src: &str, map: &SourceMap, cfg: &LintConfig) -> TestReport {
    let mut diagnostics = Vec::new();
    rules::l001_sequence_overflow(test, map, cfg, &mut diagnostics);
    rules::l002_non_convertible(test, map, &mut diagnostics);
    rules::l003_condition_vacuity(test, map, &mut diagnostics);
    rules::l004_heuristic_ambiguity(test, map, &mut diagnostics);
    rules::l005_codegen_hygiene(test, map, &mut diagnostics);
    rules::l006_outcome_coverage(test, map, &mut diagnostics);
    TestReport {
        name: test.name().to_owned(),
        origin: None,
        source: src.to_owned(),
        convertible: perple_convert::is_convertible(test),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn rule_registry_is_complete() {
        for r in RuleId::ALL {
            assert!(r.code().starts_with('L'));
            assert!(!r.name().is_empty());
            assert!(!r.description().is_empty());
        }
        assert_eq!(RuleId::L002.to_string(), "L002");
    }

    #[test]
    fn diagnostic_display_includes_span_and_rule() {
        let d = Diagnostic {
            rule: RuleId::L001,
            severity: Severity::Error,
            span: Span::new(3, 10, 20),
            message: "boom".into(),
        };
        assert_eq!(d.to_string(), "error[L001] (line 3, bytes 10..20) boom");
    }

    #[test]
    fn report_gating() {
        let mk = |sev| TestReport {
            name: "t".into(),
            origin: None,
            source: String::new(),
            convertible: true,
            diagnostics: vec![Diagnostic {
                rule: RuleId::L005,
                severity: sev,
                span: Span::default(),
                message: String::new(),
            }],
        };
        let notes = LintReport::new(LintConfig::default(), vec![mk(Severity::Note)]);
        assert!(!notes.gates(true));
        let warns = LintReport::new(LintConfig::default(), vec![mk(Severity::Warning)]);
        assert!(!warns.gates(false));
        assert!(warns.gates(true));
        let errs = LintReport::new(LintConfig::default(), vec![mk(Severity::Error)]);
        assert!(errs.gates(false));
    }

    #[test]
    fn json_shape_and_determinism() {
        let t = perple_model::suite::by_name("2+2w").unwrap();
        let cfg = LintConfig::default();
        let r1 = LintReport::new(cfg.clone(), vec![lint_test(&t, &cfg)]);
        let r2 = LintReport::new(cfg.clone(), vec![lint_test(&t, &cfg)]);
        let j1 = r1.to_json().render();
        assert_eq!(j1, r2.to_json().render(), "lint JSON must be byte-stable");
        assert!(j1.starts_with("{\"schema\":\"perple-lint-v1\""));
        let parsed = perple_analysis::jsonout::parse(&j1).unwrap();
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("tests"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn lint_source_propagates_spanned_parse_errors() {
        let err = lint_source(
            "X86 t\n{ x=0; }\n P0 ;\n FROB ;\nexists (0:EAX=0)",
            &LintConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown instruction"));
    }
}
