//! The rule implementations (L001–L006).
//!
//! Each rule is a free function appending [`Diagnostic`]s; [`crate::lint_parsed`]
//! runs them in id order, so report order is deterministic. Rules take the
//! [`SourceMap`] of the *canonical* source (file text for `lint_source`,
//! printer output for `lint_test`) and anchor every finding to an
//! instruction, condition-atom, or init-entry span where one exists.

use std::collections::BTreeMap;

use perple_convert::diagnose::{diagnose, ConvertObstruction};
use perple_convert::{Conversion, KMap};
use perple_enumerate::axiomatic::tso_allows;
use perple_model::{CondAtom, LitmusTest, LocId, SourceMap, Span};

use crate::{Diagnostic, LintConfig, RuleId, Severity};

fn push(out: &mut Vec<Diagnostic>, rule: RuleId, severity: Severity, span: Span, message: String) {
    out.push(Diagnostic {
        rule,
        severity,
        span,
        message,
    });
}

fn instr_span(map: &SourceMap, thread: usize, index: usize) -> Span {
    map.instr(thread, index).unwrap_or_default()
}

/// L001: every arithmetic sequence `k*n + a` must stay within the value
/// width for the configured iteration count. An overflowing sequence wraps
/// and silently breaks iteration attribution, so this is an error; the
/// message names the largest safe iteration count.
pub(crate) fn l001_sequence_overflow(
    test: &LitmusTest,
    map: &SourceMap,
    cfg: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let Ok(kmap) = KMap::compute(test) else {
        return; // non-convertible; L002 explains why
    };
    if cfg.iterations == 0 {
        return;
    }
    let max: u128 = if cfg.value_bits >= 128 {
        u128::MAX
    } else {
        (1u128 << cfg.value_bits) - 1
    };
    let n = cfg.iterations as u128;
    for loc_idx in 0..test.location_count() {
        let loc = LocId(loc_idx as u8);
        for asg in kmap.assignments_for(loc) {
            let (k, a) = (asg.k as u128, asg.a as u128);
            // Largest value the sequence produces over iterations 0..N-1.
            let last = k * (n - 1) + a;
            if last > max {
                let max_safe = if a > max { 0 } else { (max - a) / k + 1 };
                push(
                    out,
                    RuleId::L001,
                    Severity::Error,
                    instr_span(map, asg.instr.thread.index(), asg.instr.index as usize),
                    format!(
                        "sequence {k}*n+{a} for [{loc}] reaches {last} at iteration count \
                         {iters}, exceeding the {bits}-bit value range; max safe iteration \
                         count is {max_safe}",
                        loc = test.location_name(loc),
                        iters = cfg.iterations,
                        bits = cfg.value_bits,
                    ),
                );
            }
        }
    }
}

/// L002: spanned explanations of why a test is non-convertible (§V-C).
/// Notes, not warnings: the 54-test complement of the suite is *expected*
/// to be non-convertible, and a clean corpus must stay clean under
/// `--deny warnings`.
pub(crate) fn l002_non_convertible(test: &LitmusTest, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    for obstruction in diagnose(test) {
        let span = match &obstruction {
            ConvertObstruction::MemoryClause { atom, .. }
            | ConvertObstruction::UnloadedRegister { atom, .. }
            | ConvertObstruction::NoWriterForValue { atom, .. } => {
                map.cond_atom(*atom).unwrap_or_else(|| map.condition())
            }
            ConvertObstruction::NonZeroInit { loc, .. } => map.init_entry(loc).unwrap_or_default(),
            ConvertObstruction::DuplicateStoreValue { second, .. } => {
                instr_span(map, second.thread.index(), second.index as usize)
            }
        };
        push(
            out,
            RuleId::L002,
            Severity::Note,
            span,
            format!("not convertible: {obstruction}"),
        );
    }
}

/// L003: satisfiability / vacuity of the condition, litmus-level over the
/// outcome space and conversion-level against the axiomatic TSO model.
///
/// A perpetual condition that is *tautological* for an outcome x86-TSO
/// forbids — or *statically infeasible* for one it allows — means the
/// converter would mis-count that outcome: both are errors.
pub(crate) fn l003_condition_vacuity(
    test: &LitmusTest,
    map: &SourceMap,
    out: &mut Vec<Diagnostic>,
) {
    // Litmus level: the condition body against the register outcome space.
    if !test.target().inspects_memory() {
        let possible = test.possible_outcomes();
        let matching = test.outcomes_matching_condition();
        if matching.is_empty() {
            push(
                out,
                RuleId::L003,
                Severity::Warning,
                map.condition(),
                "condition body is unsatisfiable: no register outcome matches it".to_owned(),
            );
        } else if matching.len() == possible.len() {
            push(
                out,
                RuleId::L003,
                Severity::Warning,
                map.condition(),
                "condition body is tautological: every register outcome matches it".to_owned(),
            );
        }
    }

    // Conversion level: per-outcome cross-check of the exhaustive perpetual
    // condition p_out against the axiomatic model.
    let Ok(conv) = Conversion::convert(test) else {
        return;
    };
    let Ok(all) = conv.all_outcomes(test) else {
        return;
    };
    let by_label: BTreeMap<String, perple_model::Outcome> = test
        .possible_outcomes()
        .into_iter()
        .map(|o| (o.label(), o))
        .collect();
    for (perp, _heur) in &all {
        let Some(outcome) = by_label.get(perp.label()) else {
            continue;
        };
        let Ok(allowed) = tso_allows(test, outcome) else {
            continue; // outcome outside the axiomatic model's scope
        };
        let tautological =
            perp.conds().is_empty() && perp.exist_threads().is_empty() && !perp.is_infeasible();
        if tautological && !allowed {
            push(
                out,
                RuleId::L003,
                Severity::Error,
                map.condition(),
                format!(
                    "perpetual condition for outcome {} is tautological, but x86-TSO forbids \
                     the outcome: the converter would over-count it",
                    perp.label()
                ),
            );
        }
        if perp.is_infeasible() && allowed {
            push(
                out,
                RuleId::L003,
                Severity::Error,
                map.condition(),
                format!(
                    "perpetual condition for outcome {} is statically infeasible, but x86-TSO \
                     allows the outcome: the converter would under-count it",
                    perp.label()
                ),
            );
        }
    }
}

/// L004: linear partner derivation (§IV-B) falling back to lockstep means
/// `p_out_h` constrains frame indices it could not derive, so heuristic
/// counts may undercount relative to exhaustive counts.
///
/// Both findings are notes: legitimate suite tests (iriw, co-iriw,
/// safe012, safe027) have targets that genuinely need lockstep, so this is
/// a property to surface, not a defect to gate on.
pub(crate) fn l004_heuristic_ambiguity(
    test: &LitmusTest,
    map: &SourceMap,
    out: &mut Vec<Diagnostic>,
) {
    let Ok(conv) = Conversion::convert(test) else {
        return;
    };
    if !conv.target_heuristic.fully_derived() {
        push(
            out,
            RuleId::L004,
            Severity::Note,
            map.condition(),
            "target outcome's linear partner derivation is ambiguous (lockstep fallback): \
             p_out_h may undercount relative to p_out"
                .to_owned(),
        );
    }
    let Ok(all) = conv.all_outcomes(test) else {
        return;
    };
    let ambiguous: Vec<&str> = all
        .iter()
        .filter(|(_, h)| !h.fully_derived())
        .map(|(p, _)| p.label())
        .collect();
    if !ambiguous.is_empty() {
        push(
            out,
            RuleId::L004,
            Severity::Note,
            map.condition(),
            format!(
                "{}/{} outcomes use a lockstep fallback in partner derivation ({}): their \
                 heuristic counts are conservative",
                ambiguous.len(),
                all.len(),
                ambiguous.join(", "),
            ),
        );
    }
}

/// L005: hygiene of the generated per-thread programs — registers loaded
/// more than once (the earlier value is clobbered before the condition is
/// evaluated), registers loaded but never inspected, and location names
/// that alias under case-insensitive assemblers.
pub(crate) fn l005_codegen_hygiene(test: &LitmusTest, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let slots = test.load_slots();

    // Clobbered registers: two loads into the same (thread, register).
    for (i, s) in slots.iter().enumerate() {
        if let Some(prev) = slots[..i]
            .iter()
            .find(|p| p.thread == s.thread && p.reg == s.reg)
        {
            push(
                out,
                RuleId::L005,
                Severity::Warning,
                instr_span(map, s.thread.index(), s.instr_index as usize),
                format!(
                    "P{t} loads into {reg} more than once (first at instruction {first}): the \
                     earlier value is clobbered before the condition reads it",
                    t = s.thread.index(),
                    reg = test.reg_name(s.thread, s.reg),
                    first = prev.instr_index,
                ),
            );
        }
    }

    // Unused loaded registers: loaded but never named by the condition.
    let named: Vec<_> = test.target().reg_atoms().map(|(t, r, _)| (t, r)).collect();
    for s in &slots {
        let is_last_load_of_reg = !slots
            .iter()
            .any(|p| p.thread == s.thread && p.reg == s.reg && p.slot > s.slot);
        if is_last_load_of_reg && !named.contains(&(s.thread, s.reg)) {
            push(
                out,
                RuleId::L005,
                Severity::Note,
                instr_span(map, s.thread.index(), s.instr_index as usize),
                format!(
                    "P{t} loads {reg} but the condition never inspects it",
                    t = s.thread.index(),
                    reg = test.reg_name(s.thread, s.reg),
                ),
            );
        }
    }

    // Location aliasing: names equal up to ASCII case collide in
    // case-insensitive assembly listings.
    for i in 0..test.location_count() {
        for j in i + 1..test.location_count() {
            let (a, b) = (
                test.location_name(LocId(i as u8)),
                test.location_name(LocId(j as u8)),
            );
            if a.eq_ignore_ascii_case(b) {
                push(
                    out,
                    RuleId::L005,
                    Severity::Warning,
                    map.init_entry(b).unwrap_or_default(),
                    format!(
                        "locations [{a}] and [{b}] differ only by case and alias in \
                         case-insensitive assembly output"
                    ),
                );
            }
        }
    }
}

/// L006: outcome-space coverage — a condition clause expecting a value that
/// is neither the initial value nor stored to the inspected location can
/// never hold, so the declared outcome is outside the outcome space.
pub(crate) fn l006_outcome_coverage(test: &LitmusTest, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let slots = test.load_slots();
    for (atom, a) in test.target().atoms().iter().enumerate() {
        let span = map.cond_atom(atom).unwrap_or_else(|| map.condition());
        match *a {
            CondAtom::MemEq { loc, value } => {
                let reachable =
                    value == test.init(loc) || test.distinct_store_values(loc).contains(&value);
                if !reachable {
                    push(
                        out,
                        RuleId::L006,
                        Severity::Warning,
                        span,
                        format!(
                            "clause [{loc}]={value} can never hold: {value} is neither the \
                             initial value nor stored to [{loc}]",
                            loc = test.location_name(loc),
                        ),
                    );
                }
            }
            CondAtom::RegEq { thread, reg, value } => {
                // The register observes its last load's location.
                let Some(loc) = slots
                    .iter()
                    .rfind(|s| s.thread == thread && s.reg == reg)
                    .map(|s| s.loc)
                else {
                    continue; // unloaded register: reported by L002
                };
                let reachable =
                    value == test.init(loc) || test.distinct_store_values(loc).contains(&value);
                if !reachable {
                    push(
                        out,
                        RuleId::L006,
                        Severity::Warning,
                        span,
                        format!(
                            "clause {t}:{reg}={value} can never hold: {value} is neither the \
                             initial value of [{loc}] nor stored to it",
                            t = thread.index(),
                            reg = test.reg_name(thread, reg),
                            loc = test.location_name(loc),
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_test, LintConfig, RuleId, Severity};
    use perple_model::{suite, TestBuilder};

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn clean_convertible_test_has_no_diagnostics() {
        let r = lint_test(&suite::sb(), &cfg());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn l001_fires_on_small_value_width_with_max_safe_n() {
        let t = suite::by_name("n5").unwrap(); // k=2 location
        let narrow = LintConfig {
            iterations: 1000,
            value_bits: 8,
        };
        let r = crate::lint_parsed(
            &t,
            &perple_model::printer::print(&t),
            &perple_model::parser::parse_with_spans(&perple_model::printer::print(&t))
                .unwrap()
                .1,
            &narrow,
        );
        let overflow: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::L001)
            .collect();
        assert!(!overflow.is_empty());
        for d in &overflow {
            assert_eq!(d.severity, Severity::Error);
            assert!(
                d.message.contains("max safe iteration count is"),
                "{}",
                d.message
            );
            assert!(!d.span.is_empty(), "L001 must be anchored at the store");
        }
        // k=2, a=1 over 8-bit values: max safe n with 2*(n-1)+1 <= 255 is 128.
        assert!(
            overflow.iter().any(|d| d.message.ends_with("is 128")),
            "{:?}",
            overflow
        );
        // The default width is safe.
        let ok = lint_test(&t, &cfg());
        assert!(ok.diagnostics.iter().all(|d| d.rule != RuleId::L001));
    }

    #[test]
    fn l002_explains_memory_conditions_with_atom_spans() {
        let t = suite::by_name("2+2w").unwrap();
        let r = lint_test(&t, &cfg());
        let l002: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.rule == RuleId::L002)
            .collect();
        assert!(!l002.is_empty());
        for d in &l002 {
            assert_eq!(d.severity, Severity::Note);
            assert!(!d.span.is_empty());
            let snip = r.snippet(d).unwrap();
            assert!(
                snip.starts_with('['),
                "span should cover the mem atom: {snip:?}"
            );
        }
    }

    #[test]
    fn l003_flags_dead_and_tautological_bodies() {
        // Dead: EAX can only be 0 or 1, condition wants 0 and 1 at once
        // on the same register -> impossible (single atom value mismatch).
        let mut b = TestBuilder::new("dead");
        b.thread().store("x", 1);
        b.thread().load("EAX", "x").load("EBX", "x");
        b.reg_cond(1, "EAX", 1);
        b.reg_cond(1, "EBX", 1);
        // Make it dead via an unreachable value instead:
        let mut b2 = TestBuilder::new("taut");
        b2.thread().store("x", 1);
        b2.thread().load("EAX", "x");
        let t2 = {
            // No reg constraint at all is invalid (EmptyCondition), so a
            // tautological body needs an always-true atom set; skip.
            b2.reg_cond(1, "EAX", 0);
            b2.build().unwrap()
        };
        let _ = lint_test(&t2, &cfg());
        let t = b.build().unwrap();
        let r = lint_test(&t, &cfg());
        // This condition (EAX=1 and EBX=1) is satisfiable; no L003 warning.
        assert!(r
            .diagnostics
            .iter()
            .all(|d| d.rule != RuleId::L003 || d.severity != Severity::Warning));
    }

    #[test]
    fn l003_axiomatic_cross_check_is_clean_on_the_convertible_suite() {
        for t in suite::convertible() {
            let r = lint_test(&t, &cfg());
            let errors: Vec<_> = r
                .diagnostics
                .iter()
                .filter(|d| d.rule == RuleId::L003 && d.severity == Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{}: p_out disagrees with the axiomatic model: {errors:?}",
                t.name()
            );
        }
    }

    #[test]
    fn l005_flags_clobbered_and_unused_registers() {
        let mut b = TestBuilder::new("clobber");
        b.thread().store("x", 1).store("y", 1);
        b.thread()
            .load("EAX", "x")
            .load("EAX", "y")
            .load("EBX", "x");
        b.reg_cond(1, "EAX", 1);
        let t = b.build().unwrap();
        let r = lint_test(&t, &cfg());
        assert!(r.diagnostics.iter().any(|d| d.rule == RuleId::L005
            && d.severity == Severity::Warning
            && d.message.contains("clobbered")));
        // EBX is loaded but never inspected.
        assert!(r.diagnostics.iter().any(|d| d.rule == RuleId::L005
            && d.severity == Severity::Note
            && d.message.contains("never inspects")));
    }

    #[test]
    fn l006_flags_unreachable_condition_values() {
        let mut b = TestBuilder::new("deadval");
        b.thread().store("x", 1);
        b.thread().load("EAX", "x");
        b.reg_cond(1, "EAX", 9);
        let t = b.build().unwrap();
        let r = lint_test(&t, &cfg());
        let hit = r
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::L006)
            .expect("L006 should flag EAX=9");
        assert_eq!(hit.severity, Severity::Warning);
        assert!(hit.message.contains("can never hold"));
        assert!(!hit.span.is_empty());
    }
}
