//! Outcome-variety tables (Figure 13): how many distinct outcomes a tool
//! observes and how often each occurs.

use std::fmt;

/// Occurrence counts per outcome label for one tool/test combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarietyTable {
    labels: Vec<String>,
    counts: Vec<u64>,
}

impl VarietyTable {
    /// Builds a table from parallel label/count lists.
    ///
    /// # Panics
    /// Panics if the lists have different lengths.
    pub fn new(labels: Vec<String>, counts: Vec<u64>) -> Self {
        assert_eq!(labels.len(), counts.len(), "labels and counts must align");
        Self { labels, counts }
    }

    /// The outcome labels, in canonical order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The occurrence counts, aligned with [`VarietyTable::labels`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count for one label, if present.
    pub fn count(&self, label: &str) -> Option<u64> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| self.counts[i])
    }

    /// Number of distinct outcomes observed at least once — the paper's
    /// outcome-variety measure.
    pub fn distinct_observed(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total occurrences across outcomes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Labels observed at least once.
    pub fn observed_labels(&self) -> Vec<&str> {
        self.labels
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| l.as_str())
            .collect()
    }

    /// True if this table observes every outcome the other does (and
    /// possibly more) — PerpLE's variety claim over litmus7.
    pub fn covers(&self, other: &VarietyTable) -> bool {
        other
            .observed_labels()
            .iter()
            .all(|l| self.count(l).unwrap_or(0) > 0)
    }
}

impl fmt::Display for VarietyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, c) in self.labels.iter().zip(&self.counts) {
            writeln!(f, "{l:>8} {c:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(counts: &[u64]) -> VarietyTable {
        VarietyTable::new(
            vec!["00".into(), "01".into(), "10".into(), "11".into()],
            counts.to_vec(),
        )
    }

    #[test]
    fn observed_and_total() {
        let t = table(&[5, 0, 3, 100]);
        assert_eq!(t.distinct_observed(), 3);
        assert_eq!(t.total(), 108);
        assert_eq!(t.count("00"), Some(5));
        assert_eq!(t.count("zz"), None);
        assert_eq!(t.observed_labels(), vec!["00", "10", "11"]);
        assert_eq!(t.labels().len(), 4);
    }

    #[test]
    fn coverage_comparison() {
        let perple = table(&[5, 2, 3, 100]);
        let litmus = table(&[0, 0, 1, 50]);
        assert!(perple.covers(&litmus));
        assert!(!litmus.covers(&perple));
        assert!(perple.covers(&perple));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = VarietyTable::new(vec!["a".into()], vec![1, 2]);
    }

    #[test]
    fn display_lists_rows() {
        let t = table(&[1, 2, 3, 4]);
        let s = t.to_string();
        assert!(s.contains("00"));
        assert!(s.contains('4'));
    }
}
