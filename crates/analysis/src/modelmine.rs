//! Memory-model inference from observed outcomes.
//!
//! §II-B1 of the paper notes that for models "not yet formally specified",
//! empirical outcome statistics "can aid attempts at formulating a formal
//! description". This module does the inference step: given which
//! relaxation-revealing targets a machine exhibited, it reports the set of
//! program-order relaxations the machine performs — the vocabulary formal
//! models are built from.
//!
//! | relaxation | revealing idiom | x86-TSO | PSO |
//! |---|---|---|---|
//! | store→load | sb (both stale reads) | yes | yes |
//! | store→store | mp (flag without data) | no | yes |
//! | load→load | mp observed with reader reordering | no | no |
//! | load→store | lb (both loads see future stores) | no | no |
//! | non-multi-copy-atomic stores | iriw (readers disagree) | no | no |

use std::collections::BTreeMap;
use std::fmt;

/// A program-order (or atomicity) relaxation a machine may perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Relaxation {
    /// Loads pass earlier stores (store buffering): revealed by `sb`.
    StoreLoad,
    /// Stores reorder with each other: revealed by `mp`.
    StoreStore,
    /// Loads reorder with each other: revealed by `iwp2x`-style idioms;
    /// approximated here by `mp+staleld`'s reader-side requirement.
    LoadLoad,
    /// Stores pass earlier loads: revealed by `lb`.
    LoadStore,
    /// Stores become visible to different observers at different times:
    /// revealed by `iriw`.
    NonAtomicStores,
}

impl Relaxation {
    /// The suite test whose target outcome reveals this relaxation.
    pub fn revealing_test(self) -> &'static str {
        match self {
            Relaxation::StoreLoad => "sb",
            Relaxation::StoreStore => "mp",
            Relaxation::LoadLoad => "mp+staleld",
            Relaxation::LoadStore => "lb",
            Relaxation::NonAtomicStores => "iriw",
        }
    }

    /// All relaxations, in display order.
    pub const ALL: [Relaxation; 5] = [
        Relaxation::StoreLoad,
        Relaxation::StoreStore,
        Relaxation::LoadLoad,
        Relaxation::LoadStore,
        Relaxation::NonAtomicStores,
    ];
}

impl fmt::Display for Relaxation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relaxation::StoreLoad => write!(f, "store->load (store buffering)"),
            Relaxation::StoreStore => write!(f, "store->store"),
            Relaxation::LoadLoad => write!(f, "load->load"),
            Relaxation::LoadStore => write!(f, "load->store"),
            Relaxation::NonAtomicStores => write!(f, "non-multi-copy-atomic stores"),
        }
    }
}

/// An inferred model: which relaxations were observed, with evidence
/// counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InferredModel {
    observed: BTreeMap<Relaxation, u64>,
}

impl InferredModel {
    /// Builds the inference from `(revealing test name, target occurrence
    /// count)` pairs, as produced by running the suite on the machine under
    /// test.
    pub fn from_observations<'a, I>(observations: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, u64)>,
    {
        let mut observed = BTreeMap::new();
        for (name, count) in observations {
            for r in Relaxation::ALL {
                if r.revealing_test() == name && count > 0 {
                    *observed.entry(r).or_insert(0) += count;
                }
            }
        }
        Self { observed }
    }

    /// True if the relaxation was observed at least once.
    pub fn relaxes(&self, r: Relaxation) -> bool {
        self.observed.contains_key(&r)
    }

    /// Observed occurrence count for a relaxation.
    pub fn evidence(&self, r: Relaxation) -> u64 {
        self.observed.get(&r).copied().unwrap_or(0)
    }

    /// Names the closest textbook model consistent with the observations.
    ///
    /// The hierarchy tested: SC (nothing relaxed) ⊂ TSO (store→load) ⊂
    /// PSO (+ store→store); anything further is reported as "weaker than
    /// PSO".
    pub fn closest_model(&self) -> &'static str {
        let sl = self.relaxes(Relaxation::StoreLoad);
        let ss = self.relaxes(Relaxation::StoreStore);
        let other = self.relaxes(Relaxation::LoadLoad)
            || self.relaxes(Relaxation::LoadStore)
            || self.relaxes(Relaxation::NonAtomicStores);
        match (sl, ss, other) {
            (_, _, true) => "weaker than PSO",
            (_, true, false) => "PSO",
            (true, false, false) => "TSO",
            (false, false, false) => "SC (no relaxation observed)",
        }
    }

    /// Renders the inference report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "inferred program-order relaxations:");
        for r in Relaxation::ALL {
            let _ = writeln!(
                s,
                "  {:<38} {:>9}  (via {})",
                r.to_string(),
                if self.relaxes(r) {
                    format!("{} hits", self.evidence(r))
                } else {
                    "not seen".to_owned()
                },
                r.revealing_test()
            );
        }
        let _ = writeln!(s, "closest textbook model: {}", self.closest_model());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tso_observations_infer_tso() {
        let m = InferredModel::from_observations([("sb", 120), ("mp", 0), ("lb", 0)]);
        assert!(m.relaxes(Relaxation::StoreLoad));
        assert!(!m.relaxes(Relaxation::StoreStore));
        assert_eq!(m.closest_model(), "TSO");
        assert_eq!(m.evidence(Relaxation::StoreLoad), 120);
    }

    #[test]
    fn pso_observations_infer_pso() {
        let m = InferredModel::from_observations([("sb", 10), ("mp", 5)]);
        assert_eq!(m.closest_model(), "PSO");
    }

    #[test]
    fn silent_machines_infer_sc() {
        let m = InferredModel::from_observations([("sb", 0), ("mp", 0)]);
        assert_eq!(m.closest_model(), "SC (no relaxation observed)");
    }

    #[test]
    fn exotic_relaxations_are_weaker_than_pso() {
        let m = InferredModel::from_observations([("sb", 1), ("iriw", 2)]);
        assert_eq!(m.closest_model(), "weaker than PSO");
        assert!(m.relaxes(Relaxation::NonAtomicStores));
    }

    #[test]
    fn unknown_tests_are_ignored() {
        let m = InferredModel::from_observations([("not-a-test", 99)]);
        assert_eq!(m, InferredModel::default());
    }

    #[test]
    fn render_lists_every_relaxation() {
        let m = InferredModel::from_observations([("sb", 3)]);
        let text = m.render();
        for r in Relaxation::ALL {
            assert!(text.contains(r.revealing_test()), "{r}");
        }
        assert!(text.contains("TSO"));
    }
}
