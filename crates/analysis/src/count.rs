//! The exhaustive (`COUNT`) and heuristic (`COUNTH`) outcome counters —
//! serial reference implementations plus frame-sharded parallel variants
//! that are bit-identical to them (see `tests/parallel_equivalence.rs`).
//!
//! # The unified counting API
//!
//! All counting goes through one entry point: a [`Counter`] implementation
//! ([`ExhaustiveCounter`] or [`HeuristicCounter`]) owns the outcomes of
//! interest, and a [`CountRequest`] carries the run buffers plus the
//! execution policy (frame cap, watchdog budget, worker count).
//! [`Counter::count`] is the pipeline's single choke point: it opens the
//! `count` observability span and feeds the metrics registry (frames
//! examined, budget expiries, partner-derivation hits/misses), so
//! instrumentation lives here once instead of in every variant.
//!
//! Dispatch is deterministic and matches the legacy functions exactly:
//! a request **with** a budget runs the serial budgeted scan (budgeted
//! truncation is a prefix property of the serial odometer order); a
//! request **without** one runs the frame-sharded scan over
//! `CountRequest::workers` threads (bit-identical to serial at every
//! worker count).

use std::time::{Duration, Instant};

use perple_convert::{HeuristicOutcome, PerpetualOutcome};
use perple_obs::metrics::{self as obs_metrics, Hist, Metric};
use perple_obs::trace as obs_trace;
use perple_sim::Budget;

/// Frames between watchdog polls in the budgeted exhaustive scan; with a
/// deterministic poll-limit [`Budget`] the scan truncates at an exact
/// multiple of this interval on every machine.
const EXHAUSTIVE_POLL_INTERVAL: u64 = 1024;

/// Which exact-counting backend a pipeline stage should use, selectable
/// with `--counter {exhaustive,heuristic,rf}` on the CLI and the
/// `counter` key of campaign specs.
///
/// `Rf` is the default where counter selection is configurable: it gives
/// the same exact counts as `Exhaustive` in polynomial time when the
/// outcome shapes admit it, and transparently falls back to the exhaustive
/// scan (recording the downgrade) when they do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// The `N^{T_L}` frame scan (Algorithm 1) — the reference backend.
    Exhaustive,
    /// The linear heuristic scan (Algorithm 2); undercounts by design, so
    /// selecting it makes the heuristic stand in for the exact column.
    Heuristic,
    /// The polynomial reads-from closure counter ([`crate::rf::RfCounter`]).
    Rf,
}

impl CounterKind {
    /// Stable CLI/spec name.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Exhaustive => "exhaustive",
            CounterKind::Heuristic => "heuristic",
            CounterKind::Rf => "rf",
        }
    }

    /// Parses a CLI/spec name; `None` for anything unrecognised.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exhaustive" => Some(CounterKind::Exhaustive),
            "heuristic" => Some(CounterKind::Heuristic),
            "rf" => Some(CounterKind::Rf),
            _ => None,
        }
    }
}

/// Result of one counting pass.
///
/// **Merged (parallel) results.** The parallel counters shard the frame
/// space into contiguous index ranges and merge per-worker results:
/// `counts`, `frames_examined`, and `evals` are *exact sums* over workers
/// (each frame is scanned by exactly one worker, so the sums equal the
/// serial pass's values bit for bit), `wall` is the maximum per-worker
/// wall time, and `truncated` is set iff the global `frame_cap` prefix was
/// exhausted — the same condition under which the serial scan truncates.
/// These invariants are `debug_assert`ed in the merge path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountResult {
    /// Occurrences per outcome of interest (paper's `counts` array).
    pub counts: Vec<u64>,
    /// Frames examined: `N^{T_L}` for the exhaustive counter (unless
    /// capped), `N` for the heuristic counter.
    pub frames_examined: u64,
    /// Individual `p_out` evaluations performed (else-if chains stop at the
    /// first match). Used as the counting component of model-time.
    pub evals: u64,
    /// Wall-clock time of the counting pass.
    pub wall: Duration,
    /// True if a frame cap truncated the exhaustive scan.
    pub truncated: bool,
    /// True if a watchdog [`Budget`] expired mid-scan (budgeted counters
    /// only). The partial result counts exactly the frames/pivots scanned
    /// before the cutoff — a prefix of the untruncated scan.
    pub budget_expired: bool,
    /// True if the strategy downgraded itself: the rf counter fell back to
    /// the exhaustive scan because an outcome's constraint shape lay
    /// outside its polynomial fragment. The counts are still exact (the
    /// fallback *is* the exhaustive scan), but the asymptotic win was lost
    /// — mirroring how budget expiry records a degraded result.
    pub downgraded: bool,
}

impl CountResult {
    /// Total occurrences across all outcomes of interest.
    ///
    /// Because parallel merges sum `counts` element-wise over workers,
    /// this equals the sum of the workers' totals, and for else-if
    /// counters it never exceeds [`CountResult::frames_examined`].
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// One counting request: run buffers, iteration count, and execution
/// policy. Built with combinators; the defaults (no cap, no budget, one
/// worker) reproduce the serial reference counters.
#[derive(Debug, Clone, Copy)]
pub struct CountRequest<'a> {
    /// One value buffer per load-performing thread of the converted test.
    pub bufs: &'a [&'a [u64]],
    /// Iterations recorded in each buffer (the paper's `N`).
    pub n: u64,
    /// Optional prefix cap on the exhaustive frame scan.
    pub frame_cap: Option<u64>,
    /// Optional watchdog; a budgeted request runs the serial budgeted
    /// scan so truncation stays a deterministic prefix.
    pub budget: Option<&'a Budget>,
    /// Worker threads for the frame-sharded scan (1 = serial; ignored
    /// while a budget is set).
    pub workers: usize,
}

impl<'a> CountRequest<'a> {
    /// A serial, uncapped, unbudgeted request over `bufs` and `n`.
    pub fn new(bufs: &'a [&'a [u64]], n: u64) -> Self {
        Self {
            bufs,
            n,
            frame_cap: None,
            budget: None,
            workers: 1,
        }
    }

    /// Caps the exhaustive scan at `cap` frames (lexicographic prefix).
    pub fn with_frame_cap(mut self, cap: Option<u64>) -> Self {
        self.frame_cap = cap;
        self
    }

    /// Attaches a watchdog [`Budget`]; see [`CountRequest::budget`].
    pub fn with_budget(mut self, budget: &'a Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Shards the scan over `workers` threads (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// A counting strategy bound to its outcomes of interest.
///
/// [`Counter::count`] is the instrumented entry point every caller should
/// use; [`Counter::scan`] is the raw implementation hook.
pub trait Counter {
    /// Short strategy name (used as the span/metric label).
    fn name(&self) -> &'static str;

    /// The uninstrumented counting pass (implementation hook). Prefer
    /// [`Counter::count`], which wraps this in the observability layer.
    fn scan(&self, req: &CountRequest<'_>) -> CountResult;

    /// Runs the pass inside the `count` observability span and records
    /// counter metrics. Observability is write-only — the result is
    /// exactly what [`Counter::scan`] returns.
    fn count(&self, req: &CountRequest<'_>) -> CountResult {
        let _span = obs_trace::span("count");
        let result = self.scan(req);
        obs_metrics::add(Metric::CountFramesExamined, result.frames_examined);
        obs_metrics::observe(Hist::CountFramesPerCall, result.frames_examined);
        if result.budget_expired {
            obs_metrics::add(Metric::CountBudgetExpiries, 1);
        }
        result
    }
}

/// [`Counter`] for the exhaustive `COUNT` scan (Algorithm 1) over the
/// full `N^{T_L}` frame space or its capped prefix.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveCounter<'a> {
    outcomes: &'a [PerpetualOutcome],
}

impl<'a> ExhaustiveCounter<'a> {
    /// A counter over `outcomes` with else-if (first match wins) chaining.
    pub fn new(outcomes: &'a [PerpetualOutcome]) -> Self {
        Self { outcomes }
    }

    /// Convenience for the common single-target case.
    pub fn single(outcome: &'a PerpetualOutcome) -> Self {
        Self::new(std::slice::from_ref(outcome))
    }
}

impl Counter for ExhaustiveCounter<'_> {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn scan(&self, req: &CountRequest<'_>) -> CountResult {
        match req.budget {
            Some(budget) => {
                count_exhaustive_impl(self.outcomes, req.bufs, req.n, req.frame_cap, Some(budget))
            }
            None => exhaustive_sharded(self.outcomes, req.bufs, req.n, req.frame_cap, req.workers),
        }
    }
}

/// [`Counter`] for the linear heuristic `COUNTH` scan (Algorithm 2).
///
/// Two modes: **chained** ([`HeuristicCounter::new`]) applies the paper's
/// else-if chain (at most one outcome per pivot); **per-outcome**
/// ([`HeuristicCounter::each`]) evaluates every outcome at every pivot
/// independently (Figure 13's sampling). Per-outcome mode has no budgeted
/// variant: a request's budget is ignored there.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicCounter<'a> {
    outcomes: &'a [HeuristicOutcome],
    chained: bool,
}

impl<'a> HeuristicCounter<'a> {
    /// A chained (else-if) counter over `outcomes`.
    pub fn new(outcomes: &'a [HeuristicOutcome]) -> Self {
        Self {
            outcomes,
            chained: true,
        }
    }

    /// Convenience for the common single-target case.
    pub fn single(outcome: &'a HeuristicOutcome) -> Self {
        Self::new(std::slice::from_ref(outcome))
    }

    /// A per-outcome (unchained) counter over `outcomes`.
    pub fn each(outcomes: &'a [HeuristicOutcome]) -> Self {
        Self {
            outcomes,
            chained: false,
        }
    }
}

impl Counter for HeuristicCounter<'_> {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn scan(&self, req: &CountRequest<'_>) -> CountResult {
        let result = match (self.chained, req.budget) {
            (true, Some(budget)) => {
                count_heuristic_impl(self.outcomes, req.bufs, req.n, Some(budget))
            }
            (chained, _) => {
                count_heuristic_sharded(self.outcomes, req.bufs, req.n, req.workers, chained)
            }
        };
        // Every eval derives a partner frame from the pivot's loads and
        // tests one outcome against it: matches are derivation hits.
        let hits = result.total();
        obs_metrics::add(Metric::CountPartnerHits, hits);
        obs_metrics::add(
            Metric::CountPartnerMisses,
            result.evals.saturating_sub(hits),
        );
        result
    }
}

pub(crate) fn count_exhaustive_impl(
    outcomes: &[PerpetualOutcome],
    bufs: &[&[u64]],
    n: u64,
    frame_cap: Option<u64>,
    budget: Option<&Budget>,
) -> CountResult {
    let start = Instant::now();
    let tl = bufs.len();
    let mut counts = vec![0u64; outcomes.len()];
    let mut frames: u64 = 0;
    let mut evals: u64 = 0;
    let mut truncated = false;
    let mut budget_expired = false;

    if n > 0 && !outcomes.is_empty() {
        let mut frame = vec![0u64; tl];
        'scan: loop {
            if let Some(cap) = frame_cap {
                if frames >= cap {
                    truncated = true;
                    break 'scan;
                }
            }
            if let Some(b) = budget {
                if frames.is_multiple_of(EXHAUSTIVE_POLL_INTERVAL) && b.expired() {
                    budget_expired = true;
                    break 'scan;
                }
            }
            frames += 1;
            for (o, outcome) in outcomes.iter().enumerate() {
                evals += 1;
                if outcome.eval_frame(&frame, bufs, n) {
                    counts[o] += 1;
                    break; // else-if: at most one outcome per frame
                }
            }
            // Odometer over the frame tuple.
            let mut pos = tl;
            loop {
                if pos == 0 {
                    break 'scan;
                }
                pos -= 1;
                frame[pos] += 1;
                if frame[pos] < n {
                    break;
                }
                frame[pos] = 0;
            }
        }
    }

    CountResult {
        counts,
        frames_examined: frames,
        evals,
        wall: start.elapsed(),
        truncated,
        budget_expired,
        downgraded: false,
    }
}

fn count_heuristic_impl(
    outcomes: &[HeuristicOutcome],
    bufs: &[&[u64]],
    n: u64,
    budget: Option<&Budget>,
) -> CountResult {
    let start = Instant::now();
    let mut counts = vec![0u64; outcomes.len()];
    let mut evals: u64 = 0;
    let mut pivots: u64 = 0;
    let mut budget_expired = false;
    for i in 0..n {
        if let Some(b) = budget {
            if b.expired() {
                budget_expired = true;
                break;
            }
        }
        pivots += 1;
        for (o, h) in outcomes.iter().enumerate() {
            evals += 1;
            if h.eval(i, bufs, n) {
                counts[o] += 1;
                break;
            }
        }
    }
    CountResult {
        counts,
        frames_examined: pivots,
        evals,
        wall: start.elapsed(),
        truncated: false,
        budget_expired,
        downgraded: false,
    }
}

// ---------------------------------------------------------------------------
// Parallel, frame-sharded counters.
//
// The exhaustive counter visits frames in odometer order: the *last* frame
// position is the fastest-moving digit, so the sequence of frames is exactly
// the base-`n` representation of a linear index `0 .. n^{T_L}`, most
// significant digit first. That makes the frame space trivially shardable
// into contiguous index ranges: each worker seeks its odometer to the range
// start with `frame_at` and scans `len` frames. Every frame belongs to
// exactly one range, frames are classified independently (the else-if chain
// is per-frame), and the merge sums per-worker tallies — so the parallel
// result is bit-identical to the serial one, in any worker count.
//
// `frame_cap` keeps its serial meaning under sharding: the cap selects the
// *prefix* `0 .. cap` of the index space, and only that prefix is
// partitioned. A truncated parallel scan therefore examines exactly the
// frames the truncated serial scan examines.
//
// Workers run on `std::thread::scope` (stable scoped threads; the crossbeam
// dependency is unavailable in the offline build environment and std's
// scope provides the same borrows-from-the-stack spawning).
// ---------------------------------------------------------------------------

/// Default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Number of frames the exhaustive counter would examine for `n`
/// iterations and `tl` load threads, saturating at `u64::MAX`.
///
/// `n^0 = 1`: a test with no load-performing threads still has the single
/// empty frame.
pub fn frame_space(n: u64, tl: usize) -> u64 {
    let mut total: u128 = 1;
    for _ in 0..tl {
        total = total.saturating_mul(n as u128);
        if total > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    total as u64
}

/// The frame tuple at linear `index` of the odometer order: the base-`n`
/// digits of `index`, most significant first (`frame[tl - 1]` is the
/// fastest-moving position, exactly as the serial odometer increments).
///
/// # Panics
///
/// Panics if `index` lies outside the frame space (`index >= n^tl`).
pub fn frame_at(index: u64, n: u64, tl: usize) -> Vec<u64> {
    assert!(
        index < frame_space(n, tl),
        "frame index {index} outside the {tl}-digit base-{n} frame space"
    );
    let mut frame = vec![0u64; tl];
    let mut rest = index;
    for pos in (0..tl).rev() {
        frame[pos] = rest % n;
        rest /= n;
    }
    frame
}

/// The linear odometer index of a frame tuple — the inverse of
/// [`frame_at`].
///
/// # Panics
///
/// Panics if any digit is `>= n` or the index overflows `u64`.
pub fn frame_index(frame: &[u64], n: u64) -> u64 {
    let mut index: u64 = 0;
    for &digit in frame {
        assert!(digit < n, "frame digit {digit} >= base {n}");
        index = index
            .checked_mul(n)
            .and_then(|i| i.checked_add(digit))
            .expect("frame index overflows u64");
    }
    index
}

/// Scans the contiguous index range `start .. start + len` of the frame
/// space, returning `(counts, evals)`. This is one worker's share of the
/// exhaustive scan; it reproduces the serial loop body exactly (else-if
/// chain, eval accounting) starting from a mid-space odometer seek.
fn scan_frame_range(
    outcomes: &[PerpetualOutcome],
    bufs: &[&[u64]],
    n: u64,
    start: u64,
    len: u64,
) -> (Vec<u64>, u64) {
    let tl = bufs.len();
    let mut counts = vec![0u64; outcomes.len()];
    let mut evals: u64 = 0;
    if len == 0 {
        return (counts, evals);
    }
    let mut frame = frame_at(start, n, tl);
    for step in 0..len {
        for (o, outcome) in outcomes.iter().enumerate() {
            evals += 1;
            if outcome.eval_frame(&frame, bufs, n) {
                counts[o] += 1;
                break; // else-if: at most one outcome per frame
            }
        }
        if step + 1 == len {
            break;
        }
        // Odometer over the frame tuple (fastest digit last).
        let mut pos = tl;
        loop {
            debug_assert!(pos > 0, "odometer wrapped before the range end");
            pos -= 1;
            frame[pos] += 1;
            if frame[pos] < n {
                break;
            }
            frame[pos] = 0;
        }
    }
    (counts, evals)
}

/// Splits `0 .. total` into at most `workers` contiguous ranges of
/// near-equal length (first `total % workers` ranges one longer).
pub(crate) fn partition(total: u64, workers: usize) -> Vec<(u64, u64)> {
    let workers = (workers.max(1) as u64).min(total.max(1));
    let base = total / workers;
    let extra = total % workers;
    let mut ranges = Vec::with_capacity(workers as usize);
    let mut start = 0u64;
    for w in 0..workers {
        let len = base + u64::from(w < extra);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Merges per-worker `(counts, evals, wall)` partials into one
/// [`CountResult`], asserting the merge invariants in debug builds.
fn merge_partials(
    partials: Vec<(Vec<u64>, u64, Duration)>,
    n_outcomes: usize,
    frames_examined: u64,
    truncated: bool,
) -> CountResult {
    let mut counts = vec![0u64; n_outcomes];
    let mut evals: u64 = 0;
    let mut wall = Duration::ZERO;
    for (c, e, w) in partials {
        debug_assert_eq!(c.len(), n_outcomes, "worker count vector length");
        for (sum, v) in counts.iter_mut().zip(&c) {
            *sum += v;
        }
        evals += e; // exact sum over workers — no frame is scanned twice
        wall = wall.max(w);
    }
    debug_assert!(
        counts.iter().sum::<u64>() <= frames_examined,
        "else-if chain counted more than one outcome for some frame"
    );
    CountResult {
        counts,
        frames_examined,
        evals,
        wall,
        truncated,
        budget_expired: false,
        downgraded: false,
    }
}

/// Frame-sharded exhaustive scan (the unbudgeted [`ExhaustiveCounter`]
/// path): partitions the `N^{T_L}` frame space (or its `frame_cap`
/// prefix) into `workers` contiguous index ranges and scans them on
/// scoped threads. Bit-identical to the serial counter at every worker
/// count.
pub(crate) fn exhaustive_sharded(
    outcomes: &[PerpetualOutcome],
    bufs: &[&[u64]],
    n: u64,
    frame_cap: Option<u64>,
    workers: usize,
) -> CountResult {
    if n == 0 || outcomes.is_empty() {
        // The serial counter skips the scan entirely (and never reports
        // truncation) for degenerate inputs; match it exactly.
        return count_exhaustive_impl(outcomes, bufs, n, frame_cap, None);
    }
    let tl = bufs.len();
    let total = frame_space(n, tl);
    let effective = frame_cap.map_or(total, |cap| cap.min(total));
    // The serial scan truncates iff it hits the cap with frames left over.
    let truncated = frame_cap.is_some_and(|cap| cap < total);

    let ranges = partition(effective, workers);
    // Each worker beyond the first seeks its odometer straight to its
    // range start instead of iterating there: `start` frames skipped.
    obs_metrics::add(
        Metric::CountFramesSkippedSeek,
        ranges.iter().map(|&(start, _)| start).sum(),
    );
    let partials: Vec<(Vec<u64>, u64, Duration)> = if ranges.len() <= 1 {
        let start = Instant::now();
        let (counts, evals) = scan_frame_range(outcomes, bufs, n, 0, effective);
        vec![(counts, evals, start.elapsed())]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(start, len)| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let (counts, evals) = scan_frame_range(outcomes, bufs, n, start, len);
                        (counts, evals, t0.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                // Invariant assertion, not error handling: the scan
                // closures are pure reads over shared slices and cannot
                // panic; a join failure is a harness bug worth crashing on.
                .map(|h| h.join().expect("counter worker panicked"))
                .collect()
        })
    };
    debug_assert_eq!(
        ranges.iter().map(|&(_, len)| len).sum::<u64>(),
        effective,
        "partition must cover the frame-cap prefix exactly once"
    );
    merge_partials(partials, outcomes.len(), effective, truncated)
}

/// Scans the pivot range `start .. start + len` of the heuristic counter.
fn scan_pivot_range(
    outcomes: &[HeuristicOutcome],
    bufs: &[&[u64]],
    n: u64,
    start: u64,
    len: u64,
    chained: bool,
) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; outcomes.len()];
    let mut evals: u64 = 0;
    if chained {
        for i in start..start + len {
            for (o, h) in outcomes.iter().enumerate() {
                evals += 1;
                if h.eval(i, bufs, n) {
                    counts[o] += 1;
                    break;
                }
            }
        }
    } else {
        for (o, h) in outcomes.iter().enumerate() {
            for i in start..start + len {
                evals += 1;
                if h.eval(i, bufs, n) {
                    counts[o] += 1;
                }
            }
        }
    }
    (counts, evals)
}

/// Shared driver of the two pivot-sharded heuristic counters.
fn count_heuristic_sharded(
    outcomes: &[HeuristicOutcome],
    bufs: &[&[u64]],
    n: u64,
    workers: usize,
    chained: bool,
) -> CountResult {
    let frames_examined = if chained {
        n
    } else {
        n * outcomes.len() as u64
    };
    let ranges = partition(n, workers);
    let partials: Vec<(Vec<u64>, u64, Duration)> = if ranges.len() <= 1 {
        let t0 = Instant::now();
        let (counts, evals) = scan_pivot_range(outcomes, bufs, n, 0, n, chained);
        vec![(counts, evals, t0.elapsed())]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(start, len)| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let (counts, evals) =
                            scan_pivot_range(outcomes, bufs, n, start, len, chained);
                        (counts, evals, t0.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                // Invariant assertion, not error handling: the scan
                // closures are pure reads over shared slices and cannot
                // panic; a join failure is a harness bug worth crashing on.
                .map(|h| h.join().expect("counter worker panicked"))
                .collect()
        })
    };
    merge_partials(partials, outcomes.len(), frames_examined, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_convert::Conversion;
    use perple_model::suite;

    struct SbFixture {
        conv: Conversion,
        all: Vec<(PerpetualOutcome, HeuristicOutcome)>,
    }

    fn sb_fixture() -> SbFixture {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let all = conv.all_outcomes(&t).unwrap();
        SbFixture { conv, all }
    }

    // Local wrappers with the legacy call shapes: every reference test
    // below exercises the `Counter` trait directly.
    fn count_exhaustive(
        outcomes: &[PerpetualOutcome],
        bufs: &[&[u64]],
        n: u64,
        cap: Option<u64>,
    ) -> CountResult {
        ExhaustiveCounter::new(outcomes).count(&CountRequest::new(bufs, n).with_frame_cap(cap))
    }

    fn count_exhaustive_budgeted(
        outcomes: &[PerpetualOutcome],
        bufs: &[&[u64]],
        n: u64,
        cap: Option<u64>,
        budget: &Budget,
    ) -> CountResult {
        ExhaustiveCounter::new(outcomes).count(
            &CountRequest::new(bufs, n)
                .with_frame_cap(cap)
                .with_budget(budget),
        )
    }

    fn count_exhaustive_parallel(
        outcomes: &[PerpetualOutcome],
        bufs: &[&[u64]],
        n: u64,
        cap: Option<u64>,
        workers: usize,
    ) -> CountResult {
        ExhaustiveCounter::new(outcomes).count(
            &CountRequest::new(bufs, n)
                .with_frame_cap(cap)
                .with_workers(workers),
        )
    }

    fn count_heuristic(outcomes: &[HeuristicOutcome], bufs: &[&[u64]], n: u64) -> CountResult {
        HeuristicCounter::new(outcomes).count(&CountRequest::new(bufs, n))
    }

    fn count_heuristic_budgeted(
        outcomes: &[HeuristicOutcome],
        bufs: &[&[u64]],
        n: u64,
        budget: &Budget,
    ) -> CountResult {
        HeuristicCounter::new(outcomes).count(&CountRequest::new(bufs, n).with_budget(budget))
    }

    fn count_heuristic_each(outcomes: &[HeuristicOutcome], bufs: &[&[u64]], n: u64) -> CountResult {
        HeuristicCounter::each(outcomes).count(&CountRequest::new(bufs, n))
    }

    fn count_heuristic_parallel(
        outcomes: &[HeuristicOutcome],
        bufs: &[&[u64]],
        n: u64,
        workers: usize,
    ) -> CountResult {
        HeuristicCounter::new(outcomes).count(&CountRequest::new(bufs, n).with_workers(workers))
    }

    fn count_heuristic_each_parallel(
        outcomes: &[HeuristicOutcome],
        bufs: &[&[u64]],
        n: u64,
        workers: usize,
    ) -> CountResult {
        HeuristicCounter::each(outcomes).count(&CountRequest::new(bufs, n).with_workers(workers))
    }

    /// Lockstep buffers: iteration n of each thread read the other's store
    /// of the same iteration (value n+1): pure "11" outcomes.
    fn lockstep_bufs(n: usize) -> (Vec<u64>, Vec<u64>) {
        ((1..=n as u64).collect(), (1..=n as u64).collect())
    }

    #[test]
    fn exhaustive_scans_n_squared_frames() {
        let f = sb_fixture();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            10,
            None,
        );
        assert_eq!(r.frames_examined, 100);
        assert!(!r.truncated);
    }

    #[test]
    fn frame_cap_truncates() {
        let f = sb_fixture();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            10,
            Some(30),
        );
        assert_eq!(r.frames_examined, 30);
        assert!(r.truncated);
    }

    #[test]
    fn else_if_counts_at_most_one_outcome_per_frame() {
        let f = sb_fixture();
        let outcomes: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let (b0, b1) = lockstep_bufs(20);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(&outcomes, &bufs, 20, None);
        assert!(r.total() <= r.frames_examined);
        // Lockstep reads: every same-index frame is outcome 11; many
        // off-diagonal frames also classify.
        assert!(r.total() > 0);
    }

    #[test]
    fn heuristic_is_linear_and_subset_of_exhaustive() {
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        // Interleaved synthetic buffers with plenty of variety.
        let n = 64u64;
        let b0: Vec<u64> = (0..n).map(|i| (i * 5 + 2) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 3) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let re = count_exhaustive(&exh, &bufs, n, None);
        let rh = count_heuristic(&heu, &bufs, n);
        assert_eq!(rh.frames_examined, n);
        assert_eq!(re.frames_examined, n * n);
        for (h, e) in rh.counts.iter().zip(&re.counts) {
            // Each heuristic hit corresponds to a real frame, and the
            // heuristic examines at most N frames per outcome.
            assert!(*h <= *e + n, "heuristic {h} vs exhaustive {e}");
        }
        assert!(rh.total() <= n);
    }

    #[test]
    fn lockstep_buffers_never_count_the_weak_outcome() {
        // In a lockstep run (each thread reads the partner's same-iteration
        // store), the frame (n, n+1) realizes outcome 01 — loaded value is
        // "older" than the n+1 store but read-from iteration n — so the
        // else-if chain (00,01,10,11) classifies most pivots as 01 and the
        // final pivot (no n+1 frame) as 11. Crucially, the store-buffering
        // outcome 00 never fires.
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(50);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_heuristic(&heu, &bufs, 50);
        assert_eq!(r.counts[0], 0, "no store buffering in lockstep reads");
        assert_eq!(r.counts[1], 49);
        assert_eq!(r.counts[3], 1);
        assert_eq!(r.total(), 50);
    }

    #[test]
    fn independent_counting_exceeds_chained_totals() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(50);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let chained = count_heuristic(&heu, &bufs, 50);
        let each = count_heuristic_each(&heu, &bufs, 50);
        // Without the else-if chain, outcomes 01 and 11 both count their
        // own frames: the total exceeds the chained total.
        assert!(each.total() >= chained.total());
        assert_eq!(each.frames_examined, 200);
        for (e, c) in each.counts.iter().zip(&chained.counts) {
            assert!(e >= c);
        }
    }

    #[test]
    fn weak_buffers_count_target() {
        // Buffers where both threads always read one-iteration-stale
        // values: every frame (n, n) exhibits store buffering.
        let f = sb_fixture();
        let n = 30u64;
        let b0: Vec<u64> = (0..n).collect(); // reads value n (iter n-1) at iteration n
        let b1: Vec<u64> = (0..n).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let rh = count_heuristic(std::slice::from_ref(&f.conv.target_heuristic), &bufs, n);
        assert_eq!(rh.counts[0], n, "every iteration is a target hit");
        let re = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            n,
            None,
        );
        assert!(re.counts[0] >= n, "exhaustive finds at least the diagonal");
    }

    #[test]
    fn zero_iterations_and_empty_outcomes() {
        let f = sb_fixture();
        let bufs: Vec<&[u64]> = vec![&[], &[]];
        let r = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            0,
            None,
        );
        assert_eq!(r.total(), 0);
        assert_eq!(r.frames_examined, 0);
        let r2 = count_exhaustive(&[], &bufs, 5, None);
        assert_eq!(r2.frames_examined, 0);
        let rh = count_heuristic(&[], &bufs, 0);
        assert_eq!(rh.total(), 0);
    }

    #[test]
    fn frame_seek_round_trips_against_the_odometer() {
        let n = 5u64;
        let tl = 3usize;
        // Walk the serial odometer and check frame_at/frame_index agree at
        // every step.
        let mut frame = vec![0u64; tl];
        for index in 0..frame_space(n, tl) {
            assert_eq!(frame_at(index, n, tl), frame, "seek at index {index}");
            assert_eq!(frame_index(&frame, n), index);
            let mut pos = tl;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                frame[pos] += 1;
                if frame[pos] < n {
                    break;
                }
                frame[pos] = 0;
            }
        }
    }

    #[test]
    fn frame_space_handles_degenerate_and_huge_inputs() {
        assert_eq!(frame_space(10, 0), 1);
        assert_eq!(frame_space(10, 2), 100);
        assert_eq!(frame_space(0, 2), 0);
        assert_eq!(frame_space(u64::MAX, 3), u64::MAX, "saturates");
    }

    #[test]
    fn partition_covers_the_space_exactly_once() {
        for (total, workers) in [(10u64, 3usize), (7, 7), (3, 8), (0, 4), (100, 1)] {
            let ranges = partition(total, workers);
            assert!(ranges.len() <= workers.max(1));
            let mut next = 0u64;
            for (start, len) in &ranges {
                assert_eq!(*start, next, "ranges must be contiguous");
                next += len;
            }
            assert_eq!(next, total, "ranges must cover 0..total");
        }
    }

    #[test]
    fn parallel_exhaustive_matches_serial_bit_for_bit() {
        let f = sb_fixture();
        let outcomes: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let n = 40u64;
        let b0: Vec<u64> = (0..n).map(|i| (i * 7 + 3) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 11) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        for cap in [None, Some(500), Some(0)] {
            let serial = count_exhaustive(&outcomes, &bufs, n, cap);
            for workers in [1usize, 2, 3, 7, 64] {
                let par = count_exhaustive_parallel(&outcomes, &bufs, n, cap, workers);
                assert_eq!(par.counts, serial.counts, "cap {cap:?} workers {workers}");
                assert_eq!(par.frames_examined, serial.frames_examined);
                assert_eq!(par.evals, serial.evals);
                assert_eq!(par.truncated, serial.truncated);
            }
        }
    }

    #[test]
    fn parallel_heuristic_counters_match_serial() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(37);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let serial = count_heuristic(&heu, &bufs, 37);
        let serial_each = count_heuristic_each(&heu, &bufs, 37);
        for workers in [1usize, 2, 3, 7] {
            let par = count_heuristic_parallel(&heu, &bufs, 37, workers);
            assert_eq!(par.counts, serial.counts, "workers {workers}");
            assert_eq!(par.evals, serial.evals);
            assert_eq!(par.frames_examined, serial.frames_examined);
            let each = count_heuristic_each_parallel(&heu, &bufs, 37, workers);
            assert_eq!(each.counts, serial_each.counts, "workers {workers}");
            assert_eq!(each.evals, serial_each.evals);
            assert_eq!(each.frames_examined, serial_each.frames_examined);
        }
    }

    #[test]
    fn parallel_degenerate_inputs_match_serial() {
        let f = sb_fixture();
        let bufs: Vec<&[u64]> = vec![&[], &[]];
        let serial = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            0,
            Some(0),
        );
        let par = count_exhaustive_parallel(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            0,
            Some(0),
            4,
        );
        assert_eq!(par.counts, serial.counts);
        assert_eq!(par.truncated, serial.truncated);
        assert!(!par.truncated, "degenerate scans never truncate");
        let no_outcomes = count_exhaustive_parallel(&[], &bufs, 5, None, 4);
        assert_eq!(no_outcomes.frames_examined, 0);
    }

    #[test]
    fn budgeted_counters_with_unlimited_budget_match_unbudgeted() {
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(25);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let b = Budget::unlimited();
        let re = count_exhaustive_budgeted(&exh, &bufs, 25, None, &b);
        let re_plain = count_exhaustive(&exh, &bufs, 25, None);
        assert_eq!(re.counts, re_plain.counts);
        assert_eq!(re.frames_examined, re_plain.frames_examined);
        assert!(!re.budget_expired);
        let rh = count_heuristic_budgeted(&heu, &bufs, 25, &b);
        let rh_plain = count_heuristic(&heu, &bufs, 25);
        assert_eq!(rh.counts, rh_plain.counts);
        assert_eq!(rh.frames_examined, 25);
        assert!(!rh.budget_expired);
    }

    #[test]
    fn budgeted_exhaustive_truncates_at_the_poll_boundary() {
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let n = 64u64; // 4096-frame space = 4 poll intervals
        let b0: Vec<u64> = (0..n).map(|i| (i * 5 + 2) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 3) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        // One allowed poll: the scan covers exactly one poll interval.
        let b = Budget::with_poll_limit(1);
        let part = count_exhaustive_budgeted(&exh, &bufs, n, None, &b);
        assert!(part.budget_expired);
        assert_eq!(part.frames_examined, EXHAUSTIVE_POLL_INTERVAL);
        // The partial result equals a frame-capped scan at the cutoff.
        let capped = count_exhaustive(&exh, &bufs, n, Some(part.frames_examined));
        assert_eq!(part.counts, capped.counts);
        assert_eq!(part.evals, capped.evals);
    }

    #[test]
    fn budgeted_heuristic_counts_are_a_pivot_prefix() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let n = 50u64;
        let b0: Vec<u64> = (0..n).map(|i| (i * 7 + 1) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 13) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let full = count_heuristic(&heu, &bufs, n);
        let b = Budget::with_poll_limit(20);
        let part = count_heuristic_budgeted(&heu, &bufs, n, &b);
        assert!(part.budget_expired);
        assert_eq!(part.frames_examined, 20, "one poll per pivot");
        // Prefix property: recount the scanned prefix serially.
        let mut prefix = vec![0u64; heu.len()];
        for i in 0..20 {
            for (o, h) in heu.iter().enumerate() {
                if h.eval(i, &bufs, n) {
                    prefix[o] += 1;
                    break;
                }
            }
        }
        assert_eq!(part.counts, prefix);
        for (p, f) in part.counts.iter().zip(&full.counts) {
            assert!(p <= f, "truncated counts can never exceed full counts");
        }
    }

    #[test]
    fn expired_budget_yields_empty_counts() {
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let b = Budget::with_poll_limit(0);
        let re = count_exhaustive_budgeted(&exh, &bufs, 10, None, &b);
        assert!(re.budget_expired);
        assert_eq!(re.frames_examined, 0);
        assert_eq!(re.total(), 0);
        let rh = count_heuristic_budgeted(&heu, &bufs, 10, &b);
        assert!(rh.budget_expired);
        assert_eq!(rh.total(), 0);
    }

    #[test]
    fn request_builder_defaults_are_serial_and_unbounded() {
        let bufs: Vec<&[u64]> = vec![&[], &[]];
        let req = CountRequest::new(&bufs, 0);
        assert_eq!(req.workers, 1);
        assert!(req.frame_cap.is_none());
        assert!(req.budget.is_none());
        assert_eq!(req.with_workers(0).workers, 1, "worker floor is 1");
    }

    #[test]
    fn counter_names_label_the_strategies() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        assert_eq!(
            ExhaustiveCounter::single(&f.conv.target_exhaustive).name(),
            "exhaustive"
        );
        assert_eq!(HeuristicCounter::new(&heu).name(), "heuristic");
        assert_eq!(HeuristicCounter::each(&heu).name(), "heuristic");
    }

    #[test]
    fn budgeted_requests_dispatch_to_the_serial_scan() {
        // A budgeted request ignores `workers` and runs the deterministic
        // serial budgeted path: the poll-limit cutoff lands on the exact
        // same frame regardless of the requested worker count.
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let n = 64u64;
        let b0: Vec<u64> = (0..n).map(|i| (i * 5 + 2) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 3) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        for workers in [1usize, 4] {
            let budget = Budget::with_poll_limit(1);
            let r = ExhaustiveCounter::new(&exh).count(
                &CountRequest::new(&bufs, n)
                    .with_budget(&budget)
                    .with_workers(workers),
            );
            assert!(r.budget_expired);
            assert_eq!(r.frames_examined, EXHAUSTIVE_POLL_INTERVAL);
        }
    }

    #[test]
    fn counting_feeds_the_metrics_registry() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(30);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let before = perple_obs::metrics::snapshot();
        let r = HeuristicCounter::new(&heu).count(&CountRequest::new(&bufs, 30));
        let delta = perple_obs::metrics::snapshot().delta_from(&before);
        assert!(delta.get("count_frames_examined") >= 30);
        assert!(delta.get("count_partner_hits") >= r.total());
        assert!(delta.hist_total("count_frames_per_call") >= 1);
    }

    #[test]
    fn evals_respect_else_if_short_circuit() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_heuristic(&heu, &bufs, 10);
        // Lockstep: outcome 01 (second in the chain) matches for the first
        // nine pivots (2 evals each); the last pivot falls through to
        // outcome 11 (4 evals).
        assert_eq!(r.evals, 9 * 2 + 4);
        assert!(r.wall >= Duration::ZERO);
    }
}
