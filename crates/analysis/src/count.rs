//! The exhaustive (`COUNT`) and heuristic (`COUNTH`) outcome counters.

use std::time::{Duration, Instant};

use perple_convert::{HeuristicOutcome, PerpetualOutcome};

/// Result of one counting pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountResult {
    /// Occurrences per outcome of interest (paper's `counts` array).
    pub counts: Vec<u64>,
    /// Frames examined: `N^{T_L}` for the exhaustive counter (unless
    /// capped), `N` for the heuristic counter.
    pub frames_examined: u64,
    /// Individual `p_out` evaluations performed (else-if chains stop at the
    /// first match). Used as the counting component of model-time.
    pub evals: u64,
    /// Wall-clock time of the counting pass.
    pub wall: Duration,
    /// True if a frame cap truncated the exhaustive scan.
    pub truncated: bool,
}

impl CountResult {
    /// Total occurrences across all outcomes of interest.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The exhaustive outcome counter `COUNT` (Algorithm 1).
///
/// Examines every frame — each tuple of one iteration per load-performing
/// thread — and counts **at most one** outcome per frame (the paper's
/// else-if chain: outcomes earlier in `outcomes` take precedence).
///
/// `frame_cap` optionally bounds the number of frames scanned
/// (lexicographic prefix) so `T_L = 3` tests stay tractable at large `N`;
/// [`CountResult::truncated`] reports whether the cap hit.
///
/// # Panics
///
/// Panics if `bufs` does not contain one buffer per load-performing thread
/// of the converted outcomes, or buffers are shorter than `n` iterations.
pub fn count_exhaustive(
    outcomes: &[PerpetualOutcome],
    bufs: &[&[u64]],
    n: u64,
    frame_cap: Option<u64>,
) -> CountResult {
    let start = Instant::now();
    let tl = bufs.len();
    let mut counts = vec![0u64; outcomes.len()];
    let mut frames: u64 = 0;
    let mut evals: u64 = 0;
    let mut truncated = false;

    if n > 0 && !outcomes.is_empty() {
        let mut frame = vec![0u64; tl];
        'scan: loop {
            if let Some(cap) = frame_cap {
                if frames >= cap {
                    truncated = true;
                    break 'scan;
                }
            }
            frames += 1;
            for (o, outcome) in outcomes.iter().enumerate() {
                evals += 1;
                if outcome.eval_frame(&frame, bufs, n) {
                    counts[o] += 1;
                    break; // else-if: at most one outcome per frame
                }
            }
            // Odometer over the frame tuple.
            let mut pos = tl;
            loop {
                if pos == 0 {
                    break 'scan;
                }
                pos -= 1;
                frame[pos] += 1;
                if frame[pos] < n {
                    break;
                }
                frame[pos] = 0;
            }
        }
    }

    CountResult { counts, frames_examined: frames, evals, wall: start.elapsed(), truncated }
}

/// The linear heuristic outcome counter `COUNTH` (Algorithm 2).
///
/// Scans one pivot iteration per step, deriving the partner frame from
/// loaded values; else-if semantics as in the exhaustive counter.
pub fn count_heuristic(
    outcomes: &[HeuristicOutcome],
    bufs: &[&[u64]],
    n: u64,
) -> CountResult {
    let start = Instant::now();
    let mut counts = vec![0u64; outcomes.len()];
    let mut evals: u64 = 0;
    for i in 0..n {
        for (o, h) in outcomes.iter().enumerate() {
            evals += 1;
            if h.eval(i, bufs, n) {
                counts[o] += 1;
                break;
            }
        }
    }
    CountResult {
        counts,
        frames_examined: n,
        evals,
        wall: start.elapsed(),
        truncated: false,
    }
}

/// Per-outcome heuristic counting **without** the else-if chain: every
/// outcome's `p_out_h` is evaluated at every pivot iteration independently.
///
/// Figure 13 of the paper uses this form ("PerpLE heuristic samples 1k
/// frames *per outcome*"), which is why PerpLE's total occurrence count can
/// exceed `N` while litmus7's total always equals the iteration count.
pub fn count_heuristic_each(
    outcomes: &[HeuristicOutcome],
    bufs: &[&[u64]],
    n: u64,
) -> CountResult {
    let start = Instant::now();
    let mut counts = vec![0u64; outcomes.len()];
    let mut evals: u64 = 0;
    for (o, h) in outcomes.iter().enumerate() {
        for i in 0..n {
            evals += 1;
            if h.eval(i, bufs, n) {
                counts[o] += 1;
            }
        }
    }
    CountResult {
        counts,
        frames_examined: n * outcomes.len() as u64,
        evals,
        wall: start.elapsed(),
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_convert::Conversion;
    use perple_model::suite;

    struct SbFixture {
        conv: Conversion,
        all: Vec<(PerpetualOutcome, HeuristicOutcome)>,
    }

    fn sb_fixture() -> SbFixture {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let all = conv.all_outcomes(&t).unwrap();
        SbFixture { conv, all }
    }

    /// Lockstep buffers: iteration n of each thread read the other's store
    /// of the same iteration (value n+1): pure "11" outcomes.
    fn lockstep_bufs(n: usize) -> (Vec<u64>, Vec<u64>) {
        ((1..=n as u64).collect(), (1..=n as u64).collect())
    }

    #[test]
    fn exhaustive_scans_n_squared_frames() {
        let f = sb_fixture();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            10,
            None,
        );
        assert_eq!(r.frames_examined, 100);
        assert!(!r.truncated);
    }

    #[test]
    fn frame_cap_truncates() {
        let f = sb_fixture();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            10,
            Some(30),
        );
        assert_eq!(r.frames_examined, 30);
        assert!(r.truncated);
    }

    #[test]
    fn else_if_counts_at_most_one_outcome_per_frame() {
        let f = sb_fixture();
        let outcomes: Vec<PerpetualOutcome> =
            f.all.iter().map(|(o, _)| o.clone()).collect();
        let (b0, b1) = lockstep_bufs(20);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_exhaustive(&outcomes, &bufs, 20, None);
        assert!(r.total() <= r.frames_examined);
        // Lockstep reads: every same-index frame is outcome 11; many
        // off-diagonal frames also classify.
        assert!(r.total() > 0);
    }

    #[test]
    fn heuristic_is_linear_and_subset_of_exhaustive() {
        let f = sb_fixture();
        let exh: Vec<PerpetualOutcome> = f.all.iter().map(|(o, _)| o.clone()).collect();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        // Interleaved synthetic buffers with plenty of variety.
        let n = 64u64;
        let b0: Vec<u64> = (0..n).map(|i| (i * 5 + 2) % (n + 1)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i * 3) % (n + 1)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let re = count_exhaustive(&exh, &bufs, n, None);
        let rh = count_heuristic(&heu, &bufs, n);
        assert_eq!(rh.frames_examined, n);
        assert_eq!(re.frames_examined, n * n);
        for (h, e) in rh.counts.iter().zip(&re.counts) {
            // Each heuristic hit corresponds to a real frame, and the
            // heuristic examines at most N frames per outcome.
            assert!(*h <= *e + n, "heuristic {h} vs exhaustive {e}");
        }
        assert!(rh.total() <= n);
    }

    #[test]
    fn lockstep_buffers_never_count_the_weak_outcome() {
        // In a lockstep run (each thread reads the partner's same-iteration
        // store), the frame (n, n+1) realizes outcome 01 — loaded value is
        // "older" than the n+1 store but read-from iteration n — so the
        // else-if chain (00,01,10,11) classifies most pivots as 01 and the
        // final pivot (no n+1 frame) as 11. Crucially, the store-buffering
        // outcome 00 never fires.
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(50);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_heuristic(&heu, &bufs, 50);
        assert_eq!(r.counts[0], 0, "no store buffering in lockstep reads");
        assert_eq!(r.counts[1], 49);
        assert_eq!(r.counts[3], 1);
        assert_eq!(r.total(), 50);
    }

    #[test]
    fn independent_counting_exceeds_chained_totals() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(50);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let chained = count_heuristic(&heu, &bufs, 50);
        let each = count_heuristic_each(&heu, &bufs, 50);
        // Without the else-if chain, outcomes 01 and 11 both count their
        // own frames: the total exceeds the chained total.
        assert!(each.total() >= chained.total());
        assert_eq!(each.frames_examined, 200);
        for (e, c) in each.counts.iter().zip(&chained.counts) {
            assert!(e >= c);
        }
    }

    #[test]
    fn weak_buffers_count_target() {
        // Buffers where both threads always read one-iteration-stale
        // values: every frame (n, n) exhibits store buffering.
        let f = sb_fixture();
        let n = 30u64;
        let b0: Vec<u64> = (0..n).collect(); // reads value n (iter n-1) at iteration n
        let b1: Vec<u64> = (0..n).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let rh = count_heuristic(
            std::slice::from_ref(&f.conv.target_heuristic),
            &bufs,
            n,
        );
        assert_eq!(rh.counts[0], n, "every iteration is a target hit");
        let re = count_exhaustive(
            std::slice::from_ref(&f.conv.target_exhaustive),
            &bufs,
            n,
            None,
        );
        assert!(re.counts[0] >= n, "exhaustive finds at least the diagonal");
    }

    #[test]
    fn zero_iterations_and_empty_outcomes() {
        let f = sb_fixture();
        let bufs: Vec<&[u64]> = vec![&[], &[]];
        let r = count_exhaustive(std::slice::from_ref(&f.conv.target_exhaustive), &bufs, 0, None);
        assert_eq!(r.total(), 0);
        assert_eq!(r.frames_examined, 0);
        let r2 = count_exhaustive(&[], &bufs, 5, None);
        assert_eq!(r2.frames_examined, 0);
        let rh = count_heuristic(&[], &bufs, 0);
        assert_eq!(rh.total(), 0);
    }

    #[test]
    fn evals_respect_else_if_short_circuit() {
        let f = sb_fixture();
        let heu: Vec<HeuristicOutcome> = f.all.iter().map(|(_, h)| h.clone()).collect();
        let (b0, b1) = lockstep_bufs(10);
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let r = count_heuristic(&heu, &bufs, 10);
        // Lockstep: outcome 01 (second in the chain) matches for the first
        // nine pivots (2 evals each); the last pivot falls through to
        // outcome 11 (4 evals).
        assert_eq!(r.evals, 9 * 2 + 4);
        assert!(r.wall >= Duration::ZERO);
    }
}
