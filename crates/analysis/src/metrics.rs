//! Composite evaluation metrics: model time, detection rate, speedups
//! (§VI-B, Figures 10 and 11).
//!
//! Runtimes combine two components in one unit ("model cycles"): the
//! simulated execution span of the run and the counting work (one cycle per
//! `p_out` evaluation). Both tools pay execution; litmus7 additionally pays
//! per-iteration synchronization (folded into its execution cycles by the
//! harness), while PerpLE pays the counter scan.

/// Wall-clock timings of one test's pipeline stages (convert → run →
/// count), recorded by the experiment drivers so counter parallelization
/// is observable in experiment output.
///
/// Serialized with the hand-rolled [`StageTimings::to_json`] (the external
/// `serde` dependency is unavailable in the offline build environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Wall time of the Converter (litmus test → perpetual artifacts).
    pub convert: std::time::Duration,
    /// Wall time of the harness run (simulated execution).
    pub run: std::time::Duration,
    /// Wall time of outcome counting (max per-worker scan time when the
    /// parallel counters are used).
    pub count: std::time::Duration,
    /// Worker threads the counting stage used (1 = serial).
    pub count_workers: usize,
}

impl StageTimings {
    /// Total wall time across the three stages.
    pub fn total(&self) -> std::time::Duration {
        self.convert + self.run + self.count
    }

    /// Adds wall time to the convert stage (re-runs accumulate; they must
    /// not clobber the previous measurement).
    pub fn add_convert(&mut self, wall: std::time::Duration) {
        self.convert += wall;
    }

    /// Adds wall time to the run stage.
    pub fn add_run(&mut self, wall: std::time::Duration) {
        self.run += wall;
    }

    /// Adds wall time to the count stage. A pipeline that counts twice
    /// (heuristic then exhaustive) calls this once per scan.
    pub fn add_count(&mut self, wall: std::time::Duration) {
        self.count += wall;
    }

    /// Folds another timing record into this one: stage walls add, and
    /// `count_workers` keeps the maximum (a suite summary reports the
    /// widest counting configuration any row used).
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.convert += other.convert;
        self.run += other.run;
        self.count += other.count;
        self.count_workers = self.count_workers.max(other.count_workers);
    }

    /// The timings as a [`crate::jsonout::Json`] object (micro-second
    /// integral fields), for embedding in larger documents.
    pub fn to_json_value(&self) -> crate::jsonout::Json {
        use crate::jsonout::Json;
        Json::obj(vec![
            ("convert_us", Json::from(self.convert.as_micros())),
            ("run_us", Json::from(self.run.as_micros())),
            ("count_us", Json::from(self.count.as_micros())),
            ("count_workers", Json::from(self.count_workers)),
        ])
    }

    /// Compact JSON object rendering, e.g.
    /// `{"convert_us":12,"run_us":3400,"count_us":170,"count_workers":8}`,
    /// emitted through the shared [`crate::jsonout`] writer.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// A runtime in model cycles, split into execution and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelTime {
    /// Simulated cycles of test execution (including any synchronization).
    pub exec_cycles: u64,
    /// Counting cost: one cycle per outcome-condition evaluation.
    pub count_cycles: u64,
}

impl ModelTime {
    /// Creates a model time from its components.
    pub fn new(exec_cycles: u64, count_cycles: u64) -> Self {
        Self {
            exec_cycles,
            count_cycles,
        }
    }

    /// Total model cycles (the paper's "runtime includes test execution and
    /// outcome counting").
    pub fn total(&self) -> u64 {
        self.exec_cycles + self.count_cycles
    }
}

/// Target-outcome detection performance of one tool on one test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Times the target outcome was observed.
    pub occurrences: u64,
    /// Runtime spent producing and counting them.
    pub time: ModelTime,
}

impl Detection {
    /// Detection rate: occurrences per million model cycles (§VI-B3).
    /// Returns 0 for a zero-duration run with no occurrences.
    pub fn rate(&self) -> f64 {
        let total = self.time.total();
        if total == 0 {
            return 0.0;
        }
        self.occurrences as f64 * 1e6 / total as f64
    }
}

/// Relative detection-rate improvement of `tool` over `baseline`.
///
/// Returns `None` when the baseline detected nothing — the paper
/// conservatively omits such test cases from the averages (§VII-C).
pub fn relative_improvement(tool: Detection, baseline: Detection) -> Option<f64> {
    if baseline.occurrences == 0 || baseline.rate() == 0.0 {
        return None;
    }
    Some(tool.rate() / baseline.rate())
}

/// Runtime speedup of `tool` over `baseline` (>1 means faster).
///
/// Returns `None` if the tool's runtime is zero (degenerate run).
pub fn speedup(baseline: ModelTime, tool: ModelTime) -> Option<f64> {
    if tool.total() == 0 {
        return None;
    }
    Some(baseline.total() as f64 / tool.total() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timings_total_and_json() {
        use std::time::Duration;
        let t = StageTimings {
            convert: Duration::from_micros(12),
            run: Duration::from_micros(3_400),
            count: Duration::from_micros(170),
            count_workers: 8,
        };
        assert_eq!(t.total(), Duration::from_micros(3_582));
        assert_eq!(
            t.to_json(),
            "{\"convert_us\":12,\"run_us\":3400,\"count_us\":170,\"count_workers\":8}"
        );
        assert_eq!(StageTimings::default().total(), Duration::ZERO);
    }

    #[test]
    fn stage_additions_accumulate_instead_of_clobbering() {
        use std::time::Duration;
        let mut t = StageTimings::default();
        t.add_convert(Duration::from_micros(5));
        t.add_convert(Duration::from_micros(7));
        t.add_run(Duration::from_micros(100));
        t.add_count(Duration::from_micros(30));
        t.add_count(Duration::from_micros(40));
        assert_eq!(t.convert, Duration::from_micros(12));
        assert_eq!(t.run, Duration::from_micros(100));
        assert_eq!(t.count, Duration::from_micros(70));
    }

    #[test]
    fn accumulate_sums_stages_and_keeps_widest_worker_count() {
        use std::time::Duration;
        let mut total = StageTimings::default();
        let a = StageTimings {
            convert: Duration::from_micros(1),
            run: Duration::from_micros(10),
            count: Duration::from_micros(100),
            count_workers: 4,
        };
        let b = StageTimings {
            convert: Duration::from_micros(2),
            run: Duration::from_micros(20),
            count: Duration::from_micros(200),
            count_workers: 1,
        };
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.convert, Duration::from_micros(3));
        assert_eq!(total.run, Duration::from_micros(30));
        assert_eq!(total.count, Duration::from_micros(300));
        assert_eq!(total.count_workers, 4);
    }

    #[test]
    fn model_time_totals() {
        let t = ModelTime::new(100, 50);
        assert_eq!(t.total(), 150);
        assert_eq!(ModelTime::default().total(), 0);
    }

    #[test]
    fn detection_rate_per_million() {
        let d = Detection {
            occurrences: 5,
            time: ModelTime::new(1_000_000, 0),
        };
        assert!((d.rate() - 5.0).abs() < 1e-12);
        let zero = Detection {
            occurrences: 0,
            time: ModelTime::default(),
        };
        assert_eq!(zero.rate(), 0.0);
    }

    #[test]
    fn relative_improvement_omits_zero_baselines() {
        let tool = Detection {
            occurrences: 100,
            time: ModelTime::new(1000, 0),
        };
        let base = Detection {
            occurrences: 1,
            time: ModelTime::new(1000, 0),
        };
        assert!((relative_improvement(tool, base).unwrap() - 100.0).abs() < 1e-9);
        let dead = Detection {
            occurrences: 0,
            time: ModelTime::new(1000, 0),
        };
        assert_eq!(relative_improvement(tool, dead), None);
    }

    #[test]
    fn speedup_ratios() {
        let base = ModelTime::new(1000, 0);
        let fast = ModelTime::new(100, 0);
        assert!((speedup(base, fast).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(speedup(base, ModelTime::default()), None);
        // Slower tool → speedup below 1.
        let slow = ModelTime::new(4000, 0);
        assert!(speedup(base, slow).unwrap() < 1.0);
    }
}
