//! The shared zero-dependency JSON layer (the offline build has no serde).
//!
//! Every report and store writer in the workspace — the resilient audit
//! reports, [`crate::metrics::StageTimings`], the campaign run store, the
//! content-addressed artifact cache — serializes through this one module so
//! the output is **byte-stable**: object keys appear exactly in insertion
//! order, integers print without padding or sign noise, and floats use
//! Rust's shortest round-trip `Display` form (a pure function of the value,
//! identical across runs, processes, and platforms). Two serializations of
//! equal values are equal byte strings, which is what makes result files
//! diffable and cache entries content-addressable.
//!
//! The module also carries a small recursive-descent parser ([`parse`]) so
//! stored runs can be loaded back without external crates. The parser
//! accepts exactly what the writer emits (plus standard JSON whitespace,
//! `\uXXXX` escapes, and surrogate pairs), keeps object key order, and
//! distinguishes integers from floats so `u64` counters survive a
//! round-trip exactly.

use std::fmt::Write as _;

/// A JSON value with order-preserving objects and exact integers.
///
/// Integers are kept as `i128` (wide enough for `u64` counters and
/// millisecond timestamps) separately from floats so round-trips never lose
/// precision on counts, seeds, or digests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i128),
    /// A float (serialized via [`fmt_f64`]).
    Float(f64),
    /// A string (serialized via [`escape`]).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys serialize in insertion order (stable, not sorted).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i128` integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly when they fit).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i128)
    }
}
impl From<u128> for Json {
    fn from(v: u128) -> Self {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, the named control escapes, and `\u00XX` for the rest of the
/// C0 range. Non-ASCII characters pass through verbatim (the files are
/// UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Byte-stable float formatting: Rust's shortest round-trip `Display` form,
/// with the non-JSON values normalized (`NaN`/`±inf` → `null`, `-0.0` →
/// `0`). Equal inputs always produce equal bytes; re-parsing the output
/// recovers the exact value.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_owned();
    }
    if x == 0.0 {
        return "0".to_owned(); // collapses -0.0
    }
    let s = format!("{x}");
    // `Display` prints integral floats without a point ("3"); keep that —
    // the parser will read it back as Int, and as_f64 widens losslessly.
    s
}

/// Parses a JSON document (exactly one value plus surrounding whitespace).
///
/// Object key order is preserved. Numbers without `.`, `e`, or `E` parse as
/// [`Json::Int`]; everything else as [`Json::Float`].
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

/// Parses a JSON-lines document: one value per non-empty line.
pub fn parse_lines(s: &str) -> Result<Vec<Json>, String> {
    s.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(parse)
        .collect()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}"));
                }
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad float {text:?}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| format!("bad integer {text:?}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half next.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    *pos += 6;
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| "bad surrogate pair".to_owned())?,
                                    );
                                } else {
                                    return Err("unpaired high surrogate".to_owned());
                                }
                            } else {
                                return Err("unpaired high surrogate".to_owned());
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err("unpaired low surrogate".to_owned());
                        } else {
                            out.push(
                                char::from_u32(hi).ok_or_else(|| "bad \\u escape".to_owned())?,
                            );
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character verbatim.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_owned())?;
    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_characters_escape_and_round_trip() {
        let nasty = "a\"b\\c\nd\re\tf\u{1}g\u{1f}h";
        let escaped = escape(nasty);
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g\\u001fh");
        let doc = Json::Str(nasty.to_owned()).render();
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_owned()));
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".to_owned()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate rejected");
        // Non-ASCII passes through the writer verbatim and re-parses.
        let s = Json::Str("héllo 世界".to_owned()).render();
        assert_eq!(parse(&s).unwrap(), Json::Str("héllo 世界".to_owned()));
    }

    #[test]
    fn float_formatting_is_byte_stable() {
        // Equal values → equal bytes, across repeated calls.
        for x in [0.1, 0.30000000000000004, 1e300, -2.5, 1.0 / 3.0] {
            assert_eq!(fmt_f64(x), fmt_f64(x));
            // And the printed form round-trips to the exact same value.
            let back: f64 = fmt_f64(x).parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(-0.0), "0", "negative zero normalizes");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn integers_survive_round_trips_exactly() {
        for v in [0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let doc = Json::from(v).render();
            assert_eq!(parse(&doc).unwrap().as_u64(), Some(v));
        }
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::Int(-7).render(), "-7");
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let o = Json::obj(vec![
            ("zebra", Json::from(1u64)),
            ("apple", Json::from(2u64)),
        ]);
        assert_eq!(o.render(), "{\"zebra\":1,\"apple\":2}");
        // Two builds of the same object are byte-identical.
        let o2 = Json::obj(vec![
            ("zebra", Json::from(1u64)),
            ("apple", Json::from(2u64)),
        ]);
        assert_eq!(o.render(), o2.render());
        // Parsing keeps the order.
        let back = parse(&o.render()).unwrap();
        assert_eq!(back.render(), o.render());
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::from("sb")),
            (
                "counts",
                Json::Arr(vec![Json::from(3u64), Json::from(0u64)]),
            ),
            ("rate", Json::Float(0.25)),
            ("ok", Json::Bool(true)),
            ("err", Json::Null),
            ("inner", Json::obj(vec![("k", Json::from("v"))])),
        ]);
        let doc = v.render();
        assert_eq!(parse(&doc).unwrap(), v);
        assert_eq!(parse(&doc).unwrap().render(), doc);
    }

    #[test]
    fn accessors_extract_typed_fields() {
        let v = parse("{\"a\":1,\"b\":\"x\",\"c\":true,\"d\":[2],\"e\":1.5}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("e").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "01a",
            "-",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn jsonl_parses_line_per_value() {
        let lines = parse_lines("{\"a\":1}\n\n{\"a\":2}\n").unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
