//! Thread-skew measurement (§VI-B5).
//!
//! Because each stored value is a unique sequence term, a value loaded by
//! thread `t` in its iteration `n` identifies the iteration `m` of the
//! storing thread `s` that produced it. The difference `n - m` is the
//! *thread skew* between `t` and `s` around that moment — positive when the
//! reader runs ahead of the writer.

use perple_convert::KMap;
use perple_model::{LitmusTest, ThreadId};

use crate::stats::Histogram;

/// One skew observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewSample {
    /// The loading thread.
    pub reader: ThreadId,
    /// The thread whose store was observed.
    pub writer: ThreadId,
    /// `n - m`: reader iteration minus writer iteration.
    pub skew: i64,
}

/// Extracts all skew samples from a perpetual run.
///
/// `bufs` holds the load-performing threads' result buffers in frame order
/// (the same layout the counters use). Loads of the initial value (0) and
/// loads forwarded from the reader's own stores are skipped — only
/// cross-thread observations measure skew.
pub fn skew_samples(test: &LitmusTest, kmap: &KMap, bufs: &[&[u64]]) -> Vec<SkewSample> {
    let load_threads = test.load_threads();
    let reads = test.reads_per_thread();
    let slots = test.load_slots();
    let mut samples = Vec::new();

    for (frame_pos, &reader) in load_threads.iter().enumerate() {
        let r_t = reads[reader.index()];
        if r_t == 0 {
            continue;
        }
        let buf = bufs[frame_pos];
        let n_iters = buf.len() / r_t;
        let thread_slots: Vec<_> = slots.iter().filter(|s| s.thread == reader).collect();
        for n in 0..n_iters {
            for slot in &thread_slots {
                let val = buf[r_t * n + slot.slot];
                if val == 0 {
                    continue;
                }
                // Attribute the value to a sequence of the loaded location.
                for asg in kmap.assignments_for(slot.loc) {
                    if let Some(m) = KMap::decode(asg.k, asg.a, val) {
                        if asg.thread != reader {
                            samples.push(SkewSample {
                                reader,
                                writer: asg.thread,
                                skew: n as i64 - m as i64,
                            });
                        }
                        break;
                    }
                }
            }
        }
    }
    samples
}

/// Collapses skew samples into a histogram (the PDF of Figure 12).
pub fn skew_histogram(samples: &[SkewSample]) -> Histogram {
    samples.iter().map(|s| s.skew).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perple_convert::Conversion;
    use perple_model::suite;

    #[test]
    fn lockstep_run_has_skew_near_zero() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        // Iteration n of each thread reads the partner's value n (stored in
        // partner iteration n-1): skew +1 everywhere (after warmup).
        let b0: Vec<u64> = (0..100u64).collect();
        let b1: Vec<u64> = (0..100u64).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let samples = skew_samples(&t, &conv.kmap, &bufs);
        // Iteration 0 reads 0 (initial) → skipped; 99 samples per thread.
        assert_eq!(samples.len(), 198);
        assert!(samples.iter().all(|s| s.skew == 1));
        assert!(samples.iter().all(|s| s.reader != s.writer));
    }

    #[test]
    fn skewed_run_reports_large_offsets() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        // Thread 0 at iteration n reads values from partner iteration
        // n - 50 (thread 0 runs 50 iterations ahead).
        let n = 100u64;
        let b0: Vec<u64> = (0..n).map(|i| i.saturating_sub(50)).collect();
        let b1: Vec<u64> = (0..n).map(|i| (i + 50).min(n)).collect();
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let samples = skew_samples(&t, &conv.kmap, &bufs);
        let h = skew_histogram(&samples);
        assert!(h.max().unwrap() >= 50);
        assert!(h.min().unwrap() <= -49);
    }

    #[test]
    fn initial_values_are_skipped() {
        let t = suite::sb();
        let conv = Conversion::convert(&t).unwrap();
        let b0: Vec<u64> = vec![0, 0, 0];
        let b1: Vec<u64> = vec![0, 0, 0];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        assert!(skew_samples(&t, &conv.kmap, &bufs).is_empty());
    }

    #[test]
    fn own_thread_reads_are_not_skew() {
        // amd3's first load reads the own store (forwarding): skew samples
        // must only come from the cross-thread loads.
        let t = suite::amd3();
        let conv = Conversion::convert(&t).unwrap();
        // r_t = 2 per thread: [own-read, cross-read] per iteration.
        // own reads: value n+1 (own iteration n); cross reads: value n.
        let n = 10u64;
        let mut b0 = Vec::new();
        let mut b1 = Vec::new();
        for i in 0..n {
            b0.push(i + 1); // EAX: own x (iteration i)
            b0.push(i); // EBX: partner y (iteration i-1)
            b1.push(i + 1);
            b1.push(i);
        }
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let samples = skew_samples(&t, &conv.kmap, &bufs);
        assert!(samples.iter().all(|s| s.reader != s.writer));
        // Cross reads: iteration 0 read 0 (skipped), others skew 1.
        assert_eq!(samples.len(), 2 * (n as usize - 1));
        assert!(samples.iter().all(|s| s.skew == 1));
    }

    #[test]
    fn multi_writer_location_attributes_by_residue() {
        let t = suite::n5();
        let conv = Conversion::convert(&t).unwrap();
        // Thread 0 reads even values (thread 1's sequence 2m+2).
        let b0: Vec<u64> = vec![2, 4, 6]; // iterations 0,1,2 of thread 1
        let b1: Vec<u64> = vec![1, 1, 3];
        let bufs: Vec<&[u64]> = vec![&b0, &b1];
        let samples = skew_samples(&t, &conv.kmap, &bufs);
        let from_t0: Vec<_> = samples.iter().filter(|s| s.reader == ThreadId(0)).collect();
        assert_eq!(from_t0.len(), 3);
        assert_eq!(from_t0[0].skew, 0); // n=0 read iteration 0
        assert_eq!(from_t0[1].skew, 0);
        assert_eq!(from_t0[2].skew, 0);
        assert!(from_t0.iter().all(|s| s.writer == ThreadId(1)));
    }
}
