//! # perple-analysis
//!
//! Post-run analysis of perpetual litmus tests:
//!
//! * [`count`] — the **exhaustive outcome counter** `COUNT` (Algorithm 1,
//!   all `N^{T_L}` frames, else-if semantics) and the **linear heuristic
//!   counter** `COUNTH` (Algorithm 2);
//! * [`rf`] — the **polynomial reads-from closure counter**: exact
//!   per-outcome counts in `O(N log N)` per coordinate pair (`O(N^2 log N)`
//!   for three coupled loads) by walking observed reads-from partners
//!   instead of enumerating frames, falling back to the exhaustive scan
//!   outside its fragment;
//! * [`skew`] — thread-skew measurement from loaded sequence values
//!   (§VI-B5, Figure 12);
//! * [`variety`] — per-outcome occurrence tables (Figure 13);
//! * [`metrics`] — target-outcome detection rates and relative improvements
//!   (Figure 11), model-time accounting;
//! * [`modelmine`] — inference of the machine's program-order relaxations
//!   from observed targets (the §II-B1 "formulating a formal description"
//!   use case);
//! * [`stats`] — histograms, probability densities, geometric means;
//! * [`jsonout`] — the shared zero-dependency, byte-stable JSON writer and
//!   parser every report and store writer in the workspace uses.
//!
//! # Example
//!
//! ```
//! use perple_analysis::count::{CountRequest, Counter, ExhaustiveCounter, HeuristicCounter};
//! use perple_analysis::rf::RfCounter;
//! use perple_convert::Conversion;
//! use perple_model::suite;
//!
//! let sb = suite::sb();
//! let conv = Conversion::convert(&sb)?;
//! // Hand-made buffers for a 3-iteration run.
//! let b0: Vec<u64> = vec![0, 1, 3];
//! let b1: Vec<u64> = vec![0, 1, 3];
//! let bufs: Vec<&[u64]> = vec![&b0, &b1];
//! let req = CountRequest::new(&bufs, 3);
//! let exhaustive = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
//! let heuristic = HeuristicCounter::single(&conv.target_heuristic).count(&req);
//! let rf = RfCounter::single(&conv.target_exhaustive).count(&req);
//! // Work models: the exhaustive counter scans the full N^2 = 9-frame
//! // cross product; the heuristic derives one frame per iteration (3);
//! // the rf counter sweeps each side of sb's single coordinate pair
//! // once (2N = 6) — and still reproduces the exhaustive counts exactly.
//! assert_eq!(exhaustive.frames_examined, 9);
//! assert_eq!(heuristic.frames_examined, 3);
//! assert_eq!(rf.frames_examined, 6);
//! assert_eq!(rf.counts, exhaustive.counts);
//! assert!(heuristic.counts[0] <= exhaustive.counts[0]);
//! # Ok::<(), perple_convert::ConvertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod jsonout;
pub mod metrics;
pub mod modelmine;
pub mod rf;
pub mod skew;
pub mod stats;
pub mod variety;
