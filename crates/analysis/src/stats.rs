//! Small statistics helpers: histograms, densities, geometric means.

use std::collections::BTreeMap;

/// An integer-valued histogram (exact bins).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: BTreeMap<i64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from samples.
    pub fn from_samples<I: IntoIterator<Item = i64>>(samples: I) -> Self {
        let mut h = Self::new();
        for s in samples {
            h.add(s);
        }
        h
    }

    /// Adds one sample.
    pub fn add(&mut self, v: i64) {
        *self.bins.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total sample count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in one bin.
    pub fn count(&self, v: i64) -> u64 {
        self.bins.get(&v).copied().unwrap_or(0)
    }

    /// `(value, count)` pairs in value order.
    pub fn bins(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.bins.iter().map(|(&v, &c)| (v, c))
    }

    /// Probability density: `(value, fraction)` pairs (empty if no
    /// samples). Used for the thread-skew PDF of Figure 12.
    pub fn pdf(&self) -> Vec<(i64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        self.bins
            .iter()
            .map(|(&v, &c)| (v, c as f64 / self.total as f64))
            .collect()
    }

    /// Probability density re-bucketed into `width`-wide bins, keyed by the
    /// bucket's lower edge. Keeps Figure 12 readable at 100k samples.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn pdf_bucketed(&self, width: u64) -> Vec<(i64, f64)> {
        assert!(width > 0, "bucket width must be positive");
        if self.total == 0 {
            return Vec::new();
        }
        let w = width as i64;
        let mut buckets: BTreeMap<i64, u64> = BTreeMap::new();
        for (&v, &c) in &self.bins {
            let lower = v.div_euclid(w) * w;
            *buckets.entry(lower).or_insert(0) += c;
        }
        buckets
            .into_iter()
            .map(|(v, c)| (v, c as f64 / self.total as f64))
            .collect()
    }

    /// Smallest sample value, if any.
    pub fn min(&self) -> Option<i64> {
        self.bins.keys().next().copied()
    }

    /// Largest sample value, if any.
    pub fn max(&self) -> Option<i64> {
        self.bins.keys().next_back().copied()
    }

    /// Arithmetic mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: i128 = self.bins.iter().map(|(&v, &c)| v as i128 * c as i128).sum();
        Some(sum as f64 / self.total as f64)
    }

    /// Population standard deviation (`None` when empty).
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var: f64 = self
            .bins
            .iter()
            .map(|(&v, &c)| (v as f64 - mean).powi(2) * c as f64)
            .sum::<f64>()
            / self.total as f64;
        Some(var.sqrt())
    }

    /// Fraction of samples with `|value| <= radius` — how concentrated the
    /// skew distribution is around zero.
    pub fn mass_within(&self, radius: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let inside: u64 = self.bins.range(-radius..=radius).map(|(_, &c)| c).sum();
        inside as f64 / self.total as f64
    }
}

impl FromIterator<i64> for Histogram {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

/// Geometric mean of strictly positive values; `None` when empty or any
/// value is non-positive. The paper reports speedups as geometric averages.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` when empty. Figure 11 averages relative
/// improvements arithmetically.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_bounds() {
        let h = Histogram::from_samples([1, 1, -2, 5, 5, 5]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(5), 3);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.min(), Some(-2));
        assert_eq!(h.max(), Some(5));
        assert_eq!(h.bins().count(), 3);
    }

    #[test]
    fn pdf_sums_to_one() {
        let h: Histogram = [0, 0, 1, -1, 2].into_iter().collect();
        let sum: f64 = h.pdf().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(Histogram::new().pdf().is_empty());
    }

    #[test]
    fn bucketed_pdf_groups_values() {
        let h = Histogram::from_samples([0, 1, 9, 10, 11, -1]);
        let pdf = h.pdf_bucketed(10);
        // Buckets: [-10,0): {-1}, [0,10): {0,1,9}, [10,20): {10,11}.
        assert_eq!(pdf.len(), 3);
        assert_eq!(pdf[0].0, -10);
        assert!((pdf[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_panics() {
        let _ = Histogram::new().pdf_bucketed(0);
    }

    #[test]
    fn mean_and_stddev() {
        let h = Histogram::from_samples([2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(h.mean(), Some(5.0));
        assert_eq!(h.stddev(), Some(2.0));
        assert_eq!(Histogram::new().mean(), None);
        assert_eq!(Histogram::new().stddev(), None);
    }

    #[test]
    fn mass_within_radius() {
        let h = Histogram::from_samples([-3, -1, 0, 1, 2, 8]);
        assert!((h.mass_within(1) - 0.5).abs() < 1e-12);
        assert!((h.mass_within(10) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new().mass_within(5), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        let g = geometric_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(arithmetic_mean(&[]), None);
    }
}
