//! The polynomial **reads-from closure counter** ([`RfCounter`]).
//!
//! The exhaustive counter (Algorithm 1) enumerates all `N^{T_L}` frames
//! and evaluates every outcome on each — the "`N^{T_L}` wall" that caps
//! practical iteration counts for three-load tests. PerpLE's unique
//! stored values make a polynomial alternative possible: every loaded
//! value *names* its writer iteration (the observed reads-from partner),
//! so each frame-evaluable condition is a threshold on a per-iteration
//! **feature** — `fr_lower_bound` of the loaded value for fr/ws
//! conditions, `KMap::decode` of it for rf conditions — and an outcome's
//! frame predicate factors into per-coordinate validity plus pairwise
//! interval constraints between coordinates. Counting satisfying frames
//! then reduces to order-statistics sweeps (Fenwick trees over positions
//! or feature values) instead of a cross-product scan, in the spirit of
//! the polynomial reads-from consistency checkers of Roy et al. and
//! Tunç et al.
//!
//! # The compiled fragment
//!
//! [`RfCounter`] compiles every outcome's conditions into:
//!
//! * per-coordinate **unary** checks (self-referential rf/fr/ws
//!   conditions, decode feasibility, existential lower-bound
//!   feasibility), folded into a `valid` bitmap per coordinate;
//! * cross-coordinate **atoms** `feat_a(f_a) <= feat_b(f_b)` (frame-frame
//!   rf/fr/ws conditions, and existential variables eliminated pairwise:
//!   `max(lo) <= min(hi)` iff every `lo <= hi` pair holds).
//!
//! Coordinates are grouped into connected components over the atoms, and
//! each component is counted independently (counts multiply):
//!
//! * **singleton** — sum the valid bitmap, `O(N)`;
//! * **pair, single shared key** — one Fenwick sweep over one
//!   coordinate's positions: atoms comparing the other coordinate's
//!   features against the sweep position fold into activity intervals,
//!   and every remaining atom reads one shared attribute of the other
//!   coordinate (its position, or one data feature) bounded per sweep
//!   position — `O(N log N)`. Subsumes pure identity-sided shapes and
//!   the mixed identity/reads-from targets (n1, rwc, safe018/024, wrc);
//! * **pair, two-key dominance** (eliminated existentials in both
//!   orientations) — a value-indexed Fenwick dominance sweep,
//!   `O(N log N)`;
//! * **triple, identity-sided atoms** — an outer sweep over one
//!   coordinate replaying the pair sweep, `O(N^2 log N)` versus the
//!   exhaustive `N^3`.
//!
//! Every *target* outcome of the 34 convertible tests falls in this
//! fragment, and so do the full outcome sets of 29 of the 34 (asserted
//! by `no_target_outcome_needs_the_fallback` and
//! `full_outcome_sets_match_exhaustive_with_a_pinned_fallback_set` below,
//! plus the workspace differential suite). The exceptions are
//! multi-variable existential outcomes in the co-iriw, iriw, rfi015,
//! safe012, and safe027 variety sets, whose two same-orientation
//! data-data constraints form a 3-D dominance problem. Anything outside
//! the fragment triggers a **fallback** to the exhaustive scan: the
//! counts remain exact, the downgrade is recorded in
//! [`CountResult::downgraded`] and the `count_rf_fallbacks` metric —
//! mirroring the budget-expiry degradation path.
//!
//! # Semantics pinned to the exhaustive counter
//!
//! The differential suite (`tests/counter_equivalence.rs`) proves the
//! `counts` vector bit-identical to [`ExhaustiveCounter`] — per outcome,
//! not just in total — at every worker count. Three deliberate
//! differences in the *policy* fields:
//!
//! * `frames_examined`/`evals` report the rf counter's own deterministic
//!   work model (singleton `N`, pair `2N`, triple `N + N^2` per
//!   component), not `N^{T_L}` — that asymmetry *is* the speedup the
//!   benches measure, and it is independent of the worker count.
//! * `frame_cap` is ignored on the polynomial path: the cap exists as a
//!   workaround for the `N^{T_L}` wall, and the rf counter answers the
//!   *uncapped* question exactly. (The fallback path honours the cap,
//!   exactly like the exhaustive counter it is.)
//! * a [`Budget`] bounds the **admitted iteration prefix**, not the
//!   closure: the counter admits iterations in deterministic
//!   [`RF_POLL_INTERVAL`] blocks while the budget lasts, then counts the
//!   admitted prefix `M` exactly. The truncated result equals the full
//!   rf/exhaustive count at `n = M` — a provable prefix, with
//!   `budget_expired` set iff `M < N`.
//!
//! The polynomial path serves **single-outcome** requests — the
//! production target-counting path (audit, campaign, bench). A
//! multi-outcome batch carries the exhaustive scan's else-if chain
//! semantics: a frame is assigned to the *first* matching outcome, and
//! outcomes with existentially quantified store iterations can genuinely
//! match the same frame, so the chain does not decompose into
//! per-outcome counts. Batches therefore always take the (recorded)
//! exhaustive fallback, preserving chain semantics bit for bit; callers
//! who want polynomial counts for several outcomes count them one at a
//! time, accepting "any match" rather than "first match" semantics.

use std::time::Instant;

use perple_convert::{fr_lower_bound, IdxRef, KMap, PerpCond, PerpetualOutcome};
use perple_obs::metrics::{self as obs_metrics, Metric};
use perple_sim::Budget;

use crate::count::{
    count_exhaustive_impl, exhaustive_sharded, partition, CountRequest, CountResult, Counter,
};

/// Iterations admitted per watchdog poll while sizing the budgeted
/// prefix; with a deterministic poll-limit [`Budget`] the admitted prefix
/// is an exact multiple of this interval on every machine (mirroring the
/// exhaustive counter's poll interval).
const RF_POLL_INTERVAL: u64 = 1024;

/// A per-iteration feature of one frame coordinate: the compiled form of
/// one side of a condition. Features are pure functions of the
/// coordinate's buffer and position, so they can be swept independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Feat {
    /// The raw frame index itself.
    Identity,
    /// `fr_lower_bound(k, a, value_of(pos))` — the smallest writer
    /// iteration newer than the loaded value (fr conditions).
    FrLb {
        k: u64,
        a: u64,
        rpi: usize,
        slot: usize,
    },
    /// `KMap::decode(k, a, value_of(pos))` — the observed reads-from
    /// partner iteration (rf conditions). Decode failure yields 0 here; a
    /// paired [`Unary::DecodeOk`] excludes those positions entirely.
    Dec {
        k: u64,
        a: u64,
        rpi: usize,
        slot: usize,
    },
    /// `fr_lower_bound(kr, ar, kl*pos + al)` — the ws threshold: the
    /// smallest right-sequence iteration whose value exceeds this
    /// coordinate's left-sequence store.
    FrLbLin { kl: u64, al: u64, kr: u64, ar: u64 },
}

impl Feat {
    /// Evaluates the feature at position `pos` over the coordinate's
    /// buffer. Lower-bound features clamp to `m` — an always-failing
    /// sentinel, since every value they are compared against is at most
    /// `m - 1` — and `Dec` clamps to `m - 1`, matching the exhaustive
    /// evaluator's implicit `[0, N-1]` existential window.
    fn eval(self, buf: &[u64], pos: u64, m: u64) -> u64 {
        match self {
            Feat::Identity => pos,
            Feat::FrLb { k, a, rpi, slot } => {
                fr_lower_bound(k, a, buf[rpi * pos as usize + slot]).min(m)
            }
            Feat::Dec { k, a, rpi, slot } => {
                KMap::decode(k, a, buf[rpi * pos as usize + slot]).map_or(0, |d| d.min(m - 1))
            }
            Feat::FrLbLin { kl, al, kr, ar } => fr_lower_bound(kr, ar, kl * pos + al).min(m),
        }
    }
}

/// A check involving a single coordinate, folded into its `valid` bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unary {
    /// The rf load value must decode within its writer sequence.
    DecodeOk {
        k: u64,
        a: u64,
        rpi: usize,
        slot: usize,
    },
    /// `left(pos) <= right(pos)` (self-referential rf/fr/ws conditions,
    /// same-coordinate existential `lo <= hi` pairs).
    FeatLe(Feat, Feat),
    /// `feat(pos) <= m - 1` (existential lower bound against the default
    /// upper window edge).
    FeatLeMax(Feat),
}

/// One cross-coordinate constraint: `af(frame[ac]) <= bf(frame[bc])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Atom {
    ac: usize,
    af: Feat,
    bc: usize,
    bf: Feat,
}

impl Atom {
    /// Canonical role split: the *feature side* is the non-identity side
    /// (the `af` side when both are identity). Returns
    /// `(is_lower, feature_coord, feature)` where `is_lower` means
    /// `feat(frame[fc]) <= frame[ident]` and `!is_lower` means
    /// `frame[ident] <= feat(frame[fc])`.
    fn role(&self) -> (bool, usize, Feat) {
        if self.bf == Feat::Identity {
            (true, self.ac, self.af)
        } else {
            (false, self.bc, self.bf)
        }
    }

    fn identity_sided(&self) -> bool {
        self.af == Feat::Identity || self.bf == Feat::Identity
    }
}

/// The compiled form of one outcome.
#[derive(Debug, Clone)]
struct Plan {
    infeasible: bool,
    /// Unary checks per frame coordinate.
    unaries: Vec<Vec<Unary>>,
    /// Cross-coordinate atoms (deduplicated).
    atoms: Vec<Atom>,
}

/// Compiles an outcome's conditions into unaries and atoms. Total: every
/// condition form the converter emits maps onto the feature algebra; only
/// the *counting strategy* selection below can reject a shape.
fn compile(o: &PerpetualOutcome, tl: usize) -> Plan {
    let ne = o.exist_threads().len();
    let mut unaries: Vec<Vec<Unary>> = vec![Vec::new(); tl];
    let mut atoms: Vec<Atom> = Vec::new();
    // Existential contributions: lower bounds (fr/ws) and upper bounds
    // (rf decode) per variable, each tagged with its source coordinate.
    let mut lo_feats: Vec<Vec<(usize, Feat)>> = vec![Vec::new(); ne];
    let mut hi_feats: Vec<Vec<(usize, Feat)>> = vec![Vec::new(); ne];

    let push_unary = |unaries: &mut Vec<Vec<Unary>>, c: usize, u: Unary| {
        if !unaries[c].contains(&u) {
            unaries[c].push(u);
        }
    };
    let push_atom = |atoms: &mut Vec<Atom>, a: Atom| {
        if !atoms.contains(&a) {
            atoms.push(a);
        }
    };

    for cond in o.conds() {
        match cond {
            PerpCond::Ws { left, right } => {
                let IdxRef::Frame(lp) = left.writer else {
                    unreachable!("ws left side is a frame store")
                };
                let f = Feat::FrLbLin {
                    kl: left.k,
                    al: left.a,
                    kr: right.k,
                    ar: right.a,
                };
                match right.writer {
                    IdxRef::Frame(p) if p == lp => {
                        push_unary(&mut unaries, lp, Unary::FeatLe(f, Feat::Identity));
                    }
                    IdxRef::Frame(p) => push_atom(
                        &mut atoms,
                        Atom {
                            ac: lp,
                            af: f,
                            bc: p,
                            bf: Feat::Identity,
                        },
                    ),
                    IdxRef::Exist(e) => lo_feats[e].push((lp, f)),
                }
            }
            PerpCond::Rf { load, term } => {
                let l = load.frame_pos;
                let dec = Feat::Dec {
                    k: term.k,
                    a: term.a,
                    rpi: load.reads_per_iter,
                    slot: load.slot,
                };
                // A decode failure falsifies the whole frame regardless of
                // the writer side.
                push_unary(
                    &mut unaries,
                    l,
                    Unary::DecodeOk {
                        k: term.k,
                        a: term.a,
                        rpi: load.reads_per_iter,
                        slot: load.slot,
                    },
                );
                match term.writer {
                    IdxRef::Frame(p) if p == l => {
                        push_unary(&mut unaries, l, Unary::FeatLe(Feat::Identity, dec));
                    }
                    IdxRef::Frame(p) => push_atom(
                        &mut atoms,
                        Atom {
                            ac: p,
                            af: Feat::Identity,
                            bc: l,
                            bf: dec,
                        },
                    ),
                    IdxRef::Exist(e) => hi_feats[e].push((l, dec)),
                }
            }
            PerpCond::Fr { load, terms } => {
                let l = load.frame_pos;
                for term in terms {
                    let frlb = Feat::FrLb {
                        k: term.k,
                        a: term.a,
                        rpi: load.reads_per_iter,
                        slot: load.slot,
                    };
                    match term.writer {
                        IdxRef::Frame(p) if p == l => {
                            push_unary(&mut unaries, l, Unary::FeatLe(frlb, Feat::Identity));
                        }
                        IdxRef::Frame(p) => push_atom(
                            &mut atoms,
                            Atom {
                                ac: l,
                                af: frlb,
                                bc: p,
                                bf: Feat::Identity,
                            },
                        ),
                        IdxRef::Exist(e) => lo_feats[e].push((l, frlb)),
                    }
                }
            }
        }
    }

    // Eliminate each existential variable pairwise:
    // `max(0, lo...) <= min(m-1, hi...)` holds iff every individual
    // `lo <= hi` pair holds (including the default window edges). Default
    // lower 0 is vacuous against any upper; each explicit lower needs a
    // check against the default upper `m - 1` plus one per explicit upper
    // — a unary when both live on the same coordinate, an atom otherwise.
    for e in 0..ne {
        for &(c, lo) in &lo_feats[e] {
            push_unary(&mut unaries, c, Unary::FeatLeMax(lo));
            for &(c2, hi) in &hi_feats[e] {
                if c == c2 {
                    push_unary(&mut unaries, c, Unary::FeatLe(lo, hi));
                } else {
                    push_atom(
                        &mut atoms,
                        Atom {
                            ac: c,
                            af: lo,
                            bc: c2,
                            bf: hi,
                        },
                    );
                }
            }
        }
    }

    Plan {
        infeasible: o.is_infeasible(),
        unaries,
        atoms,
    }
}

/// A counting strategy for one connected component of coordinates.
#[derive(Debug, Clone)]
enum Strategy {
    /// An isolated coordinate: count its valid positions.
    Single { c: usize },
    /// A coordinate pair counted by one Fenwick sweep over the positions
    /// of coordinate `s`: atoms whose `o`-side feature is compared against
    /// the raw `s` position fold into an *activity interval* of `o` over
    /// the sweep, and every remaining atom reads the **same** `o`-side
    /// attribute (`key`: the raw position, or one data feature), bounded
    /// per `s` position by the atom's `s`-side value. Subsumes the
    /// pure-identity-sided shape (key = position) and mixed
    /// identity/reads-from shapes (key = a decode or fr-bound feature).
    PairSweep {
        s: usize,
        o: usize,
        /// `(is_lower, feat)`: `feat(o) <= s_pos` when lower, else
        /// `s_pos <= feat(o)` — the activity window of `o`.
        activity: Vec<(bool, Feat)>,
        /// The shared `o`-side attribute the Fenwick indexes.
        key: Feat,
        /// `(is_lower, feat)`: `feat(s) <= key(o)` when lower, else
        /// `key(o) <= feat(s)` — folded into a per-`s` query interval.
        bounds: Vec<(bool, Feat)>,
    },
    /// A coordinate pair coupled only through eliminated existentials
    /// (no identity side, two distinct keys), at most one atom per
    /// orientation: value-Fenwick dominance sweep.
    PairDominance {
        x: usize,
        y: usize,
        /// `lx(x) <= hy(y)`, if present.
        lx_hy: Option<(Feat, Feat)>,
        /// `ly(y) <= hx(x)`, if present.
        ly_hx: Option<(Feat, Feat)>,
    },
    /// Three coordinates, all atoms identity-sided: outer sweep over `x`
    /// replaying the pair sweep on `(y, z)`.
    Triple {
        x: usize,
        y: usize,
        z: usize,
        atoms: Vec<Atom>,
    },
}

/// Tries to express a pair component's atoms as one [`Strategy::PairSweep`]
/// with sweep coordinate `s`. Fails (`None`) when the non-activity atoms
/// would need more than one `o`-side key attribute.
fn classify_pair_sweep(atoms: &[Atom], s: usize, o: usize) -> Option<Strategy> {
    let mut activity = Vec::new();
    let mut key: Option<Feat> = None;
    let mut bounds = Vec::new();
    for a in atoms {
        // Orient the atom as (s-side feat, o-side feat, is s the lower side).
        let (sf, of, s_lower) = if a.ac == s {
            (a.af, a.bf, true)
        } else {
            (a.bf, a.af, false)
        };
        if sf == Feat::Identity {
            // A raw s position against an o-side feature: an activity
            // window of o over the sweep (covers identity-identity too).
            activity.push((!s_lower, of));
        } else {
            // The o side is the Fenwick key; every such atom must agree.
            if *key.get_or_insert(of) != of {
                return None;
            }
            bounds.push((s_lower, sf));
        }
    }
    Some(Strategy::PairSweep {
        s,
        o,
        activity,
        // A component has at least one atom, but an all-activity set
        // leaves the key free: position works (no bounds restrict it).
        key: key.unwrap_or(Feat::Identity),
        bounds,
    })
}

/// Groups coordinates into atom-connected components and selects a
/// polynomial strategy per component; `None` means some component's shape
/// is outside the fragment and the caller must fall back to exhaustive.
fn strategies(plan: &Plan, tl: usize) -> Option<Vec<Strategy>> {
    let mut parent: Vec<usize> = (0..tl).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for a in &plan.atoms {
        let (ra, rb) = (find(&mut parent, a.ac), find(&mut parent, a.bc));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for c in 0..tl {
        groups.entry(find(&mut parent, c)).or_default().push(c);
    }

    let mut out = Vec::new();
    for coords in groups.into_values() {
        let atoms: Vec<Atom> = plan
            .atoms
            .iter()
            .filter(|a| coords.contains(&a.ac))
            .copied()
            .collect();
        match coords[..] {
            [c] => out.push(Strategy::Single { c }),
            [x, y] => {
                if let Some(s) =
                    classify_pair_sweep(&atoms, x, y).or_else(|| classify_pair_sweep(&atoms, y, x))
                {
                    out.push(s);
                } else if atoms.iter().any(Atom::identity_sided) {
                    // Two-key shapes mixing identity and data sides:
                    // outside the fragment.
                    return None;
                } else {
                    let (mut lx_hy, mut ly_hx) = (None, None);
                    for a in &atoms {
                        let slot = if a.ac == x { &mut lx_hy } else { &mut ly_hx };
                        if slot.is_some() {
                            return None; // two atoms in one orientation
                        }
                        *slot = Some((a.af, a.bf));
                    }
                    out.push(Strategy::PairDominance { x, y, lx_hy, ly_hx });
                }
            }
            [x, y, z] if atoms.iter().all(Atom::identity_sided) => {
                out.push(Strategy::Triple { x, y, z, atoms });
            }
            _ => return None, // four or more coupled coordinates
        }
    }
    Some(out)
}

/// Evaluates a coordinate's unary checks into its validity bitmap.
fn coord_valid(unaries: &[Unary], buf: &[u64], m: u64) -> Vec<bool> {
    (0..m)
        .map(|f| {
            unaries.iter().all(|u| match *u {
                Unary::DecodeOk { k, a, rpi, slot } => {
                    KMap::decode(k, a, buf[rpi * f as usize + slot]).is_some()
                }
                Unary::FeatLe(l, r) => l.eval(buf, f, m) <= r.eval(buf, f, m),
                Unary::FeatLeMax(l) => l.eval(buf, f, m) < m,
            })
        })
        .collect()
}

/// A Fenwick (binary indexed) tree over `0..len` with signed updates so
/// sweep deactivations can subtract.
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    fn add(&mut self, i: usize, v: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `0..=i`.
    fn prefix(&self, i: usize) -> i64 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over `lo..=hi` (0 when empty).
    fn range(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        let s = self.prefix(hi as usize)
            - if lo == 0 {
                0
            } else {
                self.prefix(lo as usize - 1)
            };
        debug_assert!(s >= 0, "negative interval count");
        s as u64
    }

    fn clear(&mut self) {
        self.tree.fill(0);
    }
}

/// Counts valid `(s, o)` pairs with one Fenwick sweep over `s` positions:
/// each `o` is inserted at its shared key attribute value while its
/// activity window covers the sweep position, and each valid `s` position
/// queries the interval its bound atoms impose on that key.
#[allow(clippy::too_many_arguments)]
fn count_pair_sweep(
    activity: &[(bool, Feat)],
    key: Feat,
    bounds: &[(bool, Feat)],
    s: usize,
    o: usize,
    bufs: &[&[u64]],
    valid_s: &[bool],
    valid_o: &[bool],
    m: u64,
) -> u64 {
    let (bs, bo) = (bufs[s], bufs[o]);
    // Activity interval [c, d] over the sweep per o position, plus the
    // key value each active o contributes.
    let mut act: Vec<(u64, u64)> = Vec::new(); // (first active s, key(o))
    let mut deact: Vec<(u64, u64)> = Vec::new(); // (first inactive s, key(o))
    for ov in 0..m {
        if !valid_o[ov as usize] {
            continue;
        }
        let (mut c, mut d) = (0u64, m - 1);
        for &(is_lower, f) in activity {
            let v = f.eval(bo, ov, m);
            if is_lower {
                c = c.max(v); // feat(o) <= s_pos
            } else {
                d = d.min(v); // s_pos <= feat(o)
            }
        }
        if c <= d {
            let kv = key.eval(bo, ov, m);
            act.push((c, kv));
            deact.push((d + 1, kv));
        }
    }
    act.sort_unstable();
    deact.sort_unstable();

    // Key values live in 0..=m (lower-bound features clamp to m).
    let mut fen = Fenwick::new(m as usize + 1);
    let (mut ai, mut di) = (0usize, 0usize);
    let mut total = 0u64;
    for sv in 0..m {
        while ai < act.len() && act[ai].0 <= sv {
            fen.add(act[ai].1 as usize, 1);
            ai += 1;
        }
        while di < deact.len() && deact[di].0 <= sv {
            fen.add(deact[di].1 as usize, -1);
            di += 1;
        }
        if !valid_s[sv as usize] {
            continue;
        }
        let (mut lo, mut hi) = (0u64, m);
        for &(is_lower, f) in bounds {
            let v = f.eval(bs, sv, m);
            if is_lower {
                lo = lo.max(v); // feat(s) <= key(o)
            } else {
                hi = hi.min(v); // key(o) <= feat(s)
            }
        }
        total += fen.range(lo, hi);
    }
    total
}

/// Counts valid `(x, y)` pairs under value dominance: at most one
/// `lx(x) <= hy(y)` atom and one `ly(y) <= hx(x)` atom. With both, a
/// merge sweep over `x` sorted by `hx` inserts `y`s sorted by `ly` into a
/// value-Fenwick keyed by `hy`; with one, a sorted-threshold count.
fn count_pair_dominance(
    lx_hy: Option<(Feat, Feat)>,
    ly_hx: Option<(Feat, Feat)>,
    (bx, by): (&[u64], &[u64]),
    valid_x: &[bool],
    valid_y: &[bool],
    m: u64,
) -> u64 {
    fn valid_positions(valid: &[bool], m: u64) -> impl Iterator<Item = u64> + '_ {
        (0..m).filter(move |&v| valid[v as usize])
    }
    match (lx_hy, ly_hx) {
        (Some((lxf, hyf)), Some((lyf, hxf))) => {
            // (hx, lx) per valid x, ascending by hx.
            let mut xs: Vec<(u64, u64)> = valid_positions(valid_x, m)
                .map(|xv| (hxf.eval(bx, xv, m), lxf.eval(bx, xv, m)))
                .collect();
            xs.sort_unstable();
            // (ly, hy) per valid y, ascending by ly.
            let mut ys: Vec<(u64, u64)> = valid_positions(valid_y, m)
                .map(|yv| (lyf.eval(by, yv, m), hyf.eval(by, yv, m)))
                .collect();
            ys.sort_unstable();
            // Feature values live in 0..=m (lower bounds clamp to m).
            let mut fen = Fenwick::new(m as usize + 1);
            let mut yi = 0usize;
            let mut total = 0u64;
            for &(hx, lx) in &xs {
                while yi < ys.len() && ys[yi].0 <= hx {
                    fen.add(ys[yi].1 as usize, 1);
                    yi += 1;
                }
                total += fen.range(lx, m); // inserted ys with hy >= lx
            }
            total
        }
        (Some((lxf, hyf)), None) => {
            let mut hys: Vec<u64> = valid_positions(valid_y, m)
                .map(|yv| hyf.eval(by, yv, m))
                .collect();
            hys.sort_unstable();
            valid_positions(valid_x, m)
                .map(|xv| {
                    let lx = lxf.eval(bx, xv, m);
                    (hys.len() - hys.partition_point(|&hy| hy < lx)) as u64
                })
                .sum()
        }
        (None, Some((lyf, hxf))) => {
            let mut lys: Vec<u64> = valid_positions(valid_y, m)
                .map(|yv| lyf.eval(by, yv, m))
                .collect();
            lys.sort_unstable();
            valid_positions(valid_x, m)
                .map(|xv| {
                    let hx = hxf.eval(bx, xv, m);
                    lys.partition_point(|&ly| ly <= hx) as u64
                })
                .sum()
        }
        // A component has at least one atom by construction; kept total
        // for safety: unconstrained pairs are a plain product.
        (None, None) => {
            valid_positions(valid_x, m).count() as u64 * valid_positions(valid_y, m).count() as u64
        }
    }
}

/// Counts valid `(x, y, z)` triples for an all-identity-sided component
/// over `x` positions `x0 .. x0 + xlen` (the shardable axis: each `x`
/// pass is independent). Per `x`: intervals on `y` and `z` from atoms
/// with features on `x`; then a `(y, z)` pair sweep with the
/// `y`-activity/`z`-interval split of the yz atoms, gating `y`s and `z`s
/// on their per-`x` activity windows.
#[allow(clippy::too_many_arguments)]
fn count_triple(
    atoms: &[Atom],
    x: usize,
    y: usize,
    z: usize,
    bufs: &[&[u64]],
    valids: [&[bool]; 3],
    m: u64,
    x0: u64,
    xlen: u64,
) -> u64 {
    let (bx, by, bz) = (bufs[x], bufs[y], bufs[z]);
    let [valid_x, valid_y, valid_z] = valids;

    // Partition atoms by coordinate pair and role (feature side).
    let mut xy_x: Vec<(bool, Feat)> = Vec::new(); // feature on x, ident y
    let mut xz_x: Vec<(bool, Feat)> = Vec::new(); // feature on x, ident z
    let mut yz_y: Vec<(bool, Feat)> = Vec::new(); // feature on y, ident z

    // Per-position activity intervals, filled below.
    let mut cyx = vec![0u64; m as usize]; // y active for x >= cyx[y]
    let mut dyx = vec![m - 1; m as usize]; // ... and x <= dyx[y]
    let mut czx = vec![0u64; m as usize];
    let mut dzx = vec![m - 1; m as usize];
    let mut gy = vec![0u64; m as usize]; // z active for y >= gy[z]
    let mut hy = vec![m - 1; m as usize]; // ... and y <= hy[z]

    for a in atoms {
        let (is_lower, fc, f) = a.role();
        let ident = if a.bf == Feat::Identity { a.bc } else { a.ac };
        if fc == x {
            if ident == y {
                xy_x.push((is_lower, f));
            } else {
                xz_x.push((is_lower, f));
            }
        } else if fc == y {
            if ident == x {
                for (yv, (c, d)) in cyx.iter_mut().zip(dyx.iter_mut()).enumerate() {
                    let v = f.eval(by, yv as u64, m);
                    if is_lower {
                        *c = (*c).max(v);
                    } else {
                        *d = (*d).min(v);
                    }
                }
            } else {
                yz_y.push((is_lower, f));
            }
        } else if ident == x {
            for (zv, (c, d)) in czx.iter_mut().zip(dzx.iter_mut()).enumerate() {
                let v = f.eval(bz, zv as u64, m);
                if is_lower {
                    *c = (*c).max(v);
                } else {
                    *d = (*d).min(v);
                }
            }
        } else {
            for (zv, (g, h)) in gy.iter_mut().zip(hy.iter_mut()).enumerate() {
                let v = f.eval(bz, zv as u64, m);
                if is_lower {
                    *g = (*g).max(v);
                } else {
                    *h = (*h).min(v);
                }
            }
        }
    }

    // Per-y z interval from yz atoms with features on y.
    let mut ez = vec![0u64; m as usize];
    let mut fz = vec![m - 1; m as usize];
    for yv in 0..m as usize {
        for &(is_lower, f) in &yz_y {
            let v = f.eval(by, yv as u64, m);
            if is_lower {
                ez[yv] = ez[yv].max(v);
            } else {
                fz[yv] = fz[yv].min(v);
            }
        }
    }

    // z event lists over y, restricted to globally plausible zs.
    let mut zs_by_g: Vec<u64> = (0..m)
        .filter(|&zv| valid_z[zv as usize] && gy[zv as usize] <= hy[zv as usize])
        .collect();
    let mut zs_by_h = zs_by_g.clone();
    zs_by_g.sort_unstable_by_key(|&zv| gy[zv as usize]);
    zs_by_h.sort_unstable_by_key(|&zv| hy[zv as usize]);

    let mut fen = Fenwick::new(m as usize);
    let mut added = vec![false; m as usize];
    let mut total = 0u64;
    for xv in x0..x0 + xlen {
        if !valid_x[xv as usize] {
            continue;
        }
        // Per-x query windows on y and z.
        let (mut ay, mut by_) = (0u64, m - 1);
        for &(is_lower, f) in &xy_x {
            let v = f.eval(bx, xv, m);
            if is_lower {
                ay = ay.max(v);
            } else {
                by_ = by_.min(v);
            }
        }
        let (mut az, mut bz_) = (0u64, m - 1);
        for &(is_lower, f) in &xz_x {
            let v = f.eval(bx, xv, m);
            if is_lower {
                az = az.max(v);
            } else {
                bz_ = bz_.min(v);
            }
        }
        if ay > by_ || az > bz_ {
            continue;
        }
        fen.clear();
        added.fill(false);
        let (mut gi, mut hi) = (0usize, 0usize);
        for yv in 0..m {
            while gi < zs_by_g.len() && gy[zs_by_g[gi] as usize] <= yv {
                let zv = zs_by_g[gi] as usize;
                gi += 1;
                if czx[zv] <= xv && xv <= dzx[zv] {
                    fen.add(zv, 1);
                    added[zv] = true;
                }
            }
            while hi < zs_by_h.len() && hy[zs_by_h[hi] as usize] < yv {
                let zv = zs_by_h[hi] as usize;
                hi += 1;
                if added[zv] {
                    fen.add(zv, -1);
                    added[zv] = false;
                }
            }
            if !valid_y[yv as usize]
                || cyx[yv as usize] > xv
                || xv > dyx[yv as usize]
                || yv < ay
                || yv > by_
            {
                continue;
            }
            let lo = az.max(ez[yv as usize]);
            let hi_z = bz_.min(fz[yv as usize]);
            total += fen.range(lo, hi_z);
        }
    }
    total
}

/// One shard of rf counting work: a component of one outcome, restricted
/// to an `x` range for the (shardable) triple strategy.
struct Unit<'p> {
    out: usize,
    comp: usize,
    plan: &'p Plan,
    strat: &'p Strategy,
    x0: u64,
    xlen: u64,
}

fn run_unit(u: &Unit<'_>, bufs: &[&[u64]], m: u64) -> u64 {
    match u.strat {
        Strategy::Single { c } => coord_valid(&u.plan.unaries[*c], bufs[*c], m)
            .iter()
            .filter(|&&v| v)
            .count() as u64,
        Strategy::PairSweep {
            s,
            o,
            activity,
            key,
            bounds,
        } => {
            let vs = coord_valid(&u.plan.unaries[*s], bufs[*s], m);
            let vo = coord_valid(&u.plan.unaries[*o], bufs[*o], m);
            count_pair_sweep(activity, *key, bounds, *s, *o, bufs, &vs, &vo, m)
        }
        Strategy::PairDominance { x, y, lx_hy, ly_hx } => {
            let vx = coord_valid(&u.plan.unaries[*x], bufs[*x], m);
            let vy = coord_valid(&u.plan.unaries[*y], bufs[*y], m);
            count_pair_dominance(*lx_hy, *ly_hx, (bufs[*x], bufs[*y]), &vx, &vy, m)
        }
        Strategy::Triple { x, y, z, atoms } => {
            let vx = coord_valid(&u.plan.unaries[*x], bufs[*x], m);
            let vy = coord_valid(&u.plan.unaries[*y], bufs[*y], m);
            let vz = coord_valid(&u.plan.unaries[*z], bufs[*z], m);
            count_triple(atoms, *x, *y, *z, bufs, [&vx, &vy, &vz], m, u.x0, u.xlen)
        }
    }
}

/// Deterministic work model per component (the rf analogue of "frames
/// examined"): one position sweep for singletons, one per side for pairs,
/// and the outer sweep plus the `m`-wide inner sweep per outer position
/// for triples. Worker-count independent by construction.
fn component_cost(s: &Strategy, m: u64) -> u64 {
    match s {
        Strategy::Single { .. } => m,
        Strategy::PairSweep { .. } | Strategy::PairDominance { .. } => m.saturating_mul(2),
        Strategy::Triple { .. } => m.saturating_add(m.saturating_mul(m)),
    }
}

/// Reads-from edges walked per component: each atom's feature array is
/// scanned once per admitted iteration.
fn component_edges(s: &Strategy, m: u64) -> u64 {
    let atoms = match s {
        Strategy::Single { .. } => 0,
        Strategy::PairSweep {
            activity, bounds, ..
        } => activity.len() + bounds.len(),
        Strategy::Triple { atoms, .. } => atoms.len(),
        Strategy::PairDominance { lx_hy, ly_hx, .. } => {
            usize::from(lx_hy.is_some()) + usize::from(ly_hx.is_some())
        }
    };
    (atoms as u64).saturating_mul(m)
}

/// Sizes the admitted iteration prefix under a budget: iterations are
/// admitted in [`RF_POLL_INTERVAL`] blocks while the budget lasts. With a
/// poll-limit budget the prefix is exactly `min(n, polls * 1024)` on
/// every machine; the subsequent (cheap, polynomial) closure runs
/// unbudgeted over the prefix.
fn admitted_prefix(n: u64, budget: &Budget) -> (u64, bool) {
    let mut m = 0u64;
    while m < n {
        if budget.expired() {
            return (m, true);
        }
        m = (m + RF_POLL_INTERVAL).min(n);
    }
    (m, false)
}

/// [`Counter`] implementing the polynomial reads-from closure count; see
/// the module docs for the algorithm, the fallback rules, and the policy
/// fields' semantics.
#[derive(Debug, Clone, Copy)]
pub struct RfCounter<'a> {
    outcomes: &'a [PerpetualOutcome],
}

impl<'a> RfCounter<'a> {
    /// A counter over `outcomes`. Only single-outcome requests take the
    /// polynomial path; a batch of two or more preserves the exhaustive
    /// else-if chain via the recorded fallback (see module docs).
    pub fn new(outcomes: &'a [PerpetualOutcome]) -> Self {
        Self { outcomes }
    }

    /// The common single-target case — the shape the polynomial closure
    /// actually accelerates.
    pub fn single(outcome: &'a PerpetualOutcome) -> Self {
        Self::new(std::slice::from_ref(outcome))
    }
}

impl Counter for RfCounter<'_> {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn scan(&self, req: &CountRequest<'_>) -> CountResult {
        let tl = req.bufs.len();
        // The polynomial path serves single-outcome requests — the
        // production target-counting path. Multi-outcome batches carry the
        // exhaustive scan's else-if chain semantics (a frame goes to the
        // FIRST matching outcome, and outcomes with existential stores can
        // genuinely double-match), which do not decompose per outcome.
        let compiled: Option<Vec<(Plan, Vec<Strategy>)>> = if self.outcomes.len() <= 1 {
            self.outcomes
                .iter()
                .map(|o| {
                    let plan = compile(o, tl);
                    strategies(&plan, tl).map(|s| (plan, s))
                })
                .collect()
        } else {
            None
        };
        let Some(compiled) = compiled else {
            // Outside the polynomial fragment (or a multi-outcome chain):
            // run the exhaustive scan — the exact same dispatch
            // ExhaustiveCounter uses, frame cap and budget included — and
            // record the downgrade.
            obs_metrics::add(Metric::CountRfFallbacks, 1);
            let mut r = match req.budget {
                Some(budget) => count_exhaustive_impl(
                    self.outcomes,
                    req.bufs,
                    req.n,
                    req.frame_cap,
                    Some(budget),
                ),
                None => {
                    exhaustive_sharded(self.outcomes, req.bufs, req.n, req.frame_cap, req.workers)
                }
            };
            r.downgraded = true;
            return r;
        };

        let start = Instant::now();
        let (m, budget_expired) = match req.budget {
            Some(budget) => admitted_prefix(req.n, budget),
            None => (req.n, false),
        };

        let mut counts = vec![0u64; self.outcomes.len()];
        let mut frames: u64 = 0;
        let mut edges: u64 = 0;
        if m > 0 {
            let mut units: Vec<Unit<'_>> = Vec::new();
            for (oi, (plan, strats)) in compiled.iter().enumerate() {
                if plan.infeasible {
                    continue;
                }
                for (ci, s) in strats.iter().enumerate() {
                    frames = frames.saturating_add(component_cost(s, m));
                    edges = edges.saturating_add(component_edges(s, m));
                    let shards = match s {
                        Strategy::Triple { .. } if req.workers > 1 => partition(m, req.workers),
                        _ => vec![(0, m)],
                    };
                    for (x0, xlen) in shards {
                        units.push(Unit {
                            out: oi,
                            comp: ci,
                            plan,
                            strat: s,
                            x0,
                            xlen,
                        });
                    }
                }
            }

            let results: Vec<u64> = if req.workers <= 1 || units.len() <= 1 {
                units.iter().map(|u| run_unit(u, req.bufs, m)).collect()
            } else {
                let chunks = partition(units.len() as u64, req.workers);
                std::thread::scope(|scope| {
                    let units = &units;
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|&(s0, len)| {
                            scope.spawn(move || {
                                units[s0 as usize..(s0 + len) as usize]
                                    .iter()
                                    .map(|u| run_unit(u, req.bufs, m))
                                    .collect::<Vec<u64>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        // Invariant assertion, not error handling: the
                        // sweeps are pure reads over shared slices; a join
                        // failure is a harness bug worth crashing on.
                        .flat_map(|h| h.join().expect("rf counter worker panicked"))
                        .collect()
                })
            };

            // Sum shard results per component, multiply components per
            // outcome (components are independent by construction). Both
            // operations are exact sums/products of the same per-shard
            // values in any worker count, so results are bit-identical
            // regardless of sharding.
            let mut comp_sums: Vec<Vec<u64>> = compiled
                .iter()
                .map(|(_, strats)| vec![0u64; strats.len()])
                .collect();
            for (u, r) in units.iter().zip(&results) {
                comp_sums[u.out][u.comp] += r;
            }
            for (oi, (plan, strats)) in compiled.iter().enumerate() {
                if plan.infeasible {
                    continue;
                }
                let mut t = 1u64;
                for &s in &comp_sums[oi][..strats.len()] {
                    t = t.saturating_mul(s);
                }
                counts[oi] = t;
            }
        }

        obs_metrics::add(Metric::CountRfEdgesWalked, edges);
        obs_metrics::add(Metric::CountRfClosureSteps, frames);

        // NOT built through merge_partials: rf counts can exceed its work
        // model (one pair sweep can count up to m^2 pairs), so the
        // else-if `counts <= frames_examined` invariant does not apply.
        CountResult {
            counts,
            frames_examined: frames,
            evals: frames,
            wall: start.elapsed(),
            truncated: false,
            budget_expired,
            downgraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::ExhaustiveCounter;
    use perple_convert::Conversion;
    use perple_model::suite;

    /// Deterministic garbage buffers with the run layout (`rpi * n`
    /// values per load thread): arbitrary values exercising decode
    /// successes, decode failures, and stale/fresh fr thresholds. Sound
    /// for single-outcome differentials on both sides (no else-if chain).
    fn synthetic_bufs(conv: &Conversion, n: u64, salt: u64) -> Vec<Vec<u64>> {
        let perp = &conv.perpetual;
        perp.load_threads()
            .iter()
            .enumerate()
            .map(|(pos, t)| {
                let rpi = perp.reads_per_thread()[t.index()] as u64;
                (0..n * rpi)
                    .map(|i| {
                        let mut h = i
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(salt ^ (pos as u64).wrapping_mul(0xABCD));
                        h ^= h >> 33;
                        h % (3 * n + 7)
                    })
                    .collect()
            })
            .collect()
    }

    /// The corpus-coverage proof for the production counting path: every
    /// convertible test's *target* outcome compiles into the polynomial
    /// fragment (no fallback), and the counts match the exhaustive scan
    /// exactly on adversarial synthetic buffers.
    #[test]
    fn no_target_outcome_needs_the_fallback() {
        let n = 24u64;
        for test in suite::convertible() {
            let conv = Conversion::convert(&test).unwrap();
            let owned = synthetic_bufs(&conv, n, 0xBEEF);
            let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
            let req = CountRequest::new(&bufs, n);
            let rf = RfCounter::single(&conv.target_exhaustive).count(&req);
            assert!(!rf.downgraded, "{} fell back to exhaustive", test.name());
            let exh = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
            assert_eq!(rf.counts, exh.counts, "{} counts differ", test.name());
        }
    }

    /// Every outcome of every convertible test, counted *individually*
    /// (single-outcome requests are chain-free on both sides, so pure
    /// garbage buffers are a sound oracle): bit-equal counts corpus-wide,
    /// with the fallback set pinned — exactly the five tests whose
    /// multi-variable existential outcomes yield two independent
    /// data-data constraints in one orientation (a 3-D dominance problem
    /// the fragment deliberately excludes). Growing this set is a
    /// regression; shrinking it means the fragment widened — update the
    /// module docs too.
    #[test]
    fn every_outcome_counted_individually_matches_exhaustive() {
        let n = 16u64;
        let mut fell_back: Vec<String> = Vec::new();
        for test in suite::convertible() {
            let conv = Conversion::convert(&test).unwrap();
            let all = conv.all_outcomes(&test).unwrap();
            let owned = synthetic_bufs(&conv, n, 0xBEEF);
            let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
            let req = CountRequest::new(&bufs, n);
            let mut test_fell_back = false;
            for (o, _) in &all {
                let rf = RfCounter::single(o).count(&req);
                let exh = ExhaustiveCounter::single(o).count(&req);
                assert_eq!(
                    rf.counts,
                    exh.counts,
                    "{} outcome {:?} counts differ",
                    test.name(),
                    o.label()
                );
                test_fell_back |= rf.downgraded;
            }
            if test_fell_back {
                fell_back.push(test.name().to_string());
            }
        }
        fell_back.sort_unstable();
        assert_eq!(
            fell_back,
            ["co-iriw", "iriw", "rfi015", "safe012", "safe027"],
            "the out-of-fragment set changed"
        );
    }

    /// Multi-outcome batches carry the exhaustive else-if chain (a frame
    /// goes to the first matching outcome; outcomes can double-match), so
    /// the rf counter serves them through the recorded fallback — and the
    /// result is bit-identical to the exhaustive counter even on garbage
    /// buffers where outcomes genuinely overlap.
    #[test]
    fn multi_outcome_batches_preserve_the_chain_via_fallback() {
        for name in ["sb", "n1", "wrc"] {
            let test = suite::by_name(name).unwrap();
            let conv = Conversion::convert(&test).unwrap();
            let all = conv.all_outcomes(&test).unwrap();
            let outcomes: Vec<PerpetualOutcome> = all.into_iter().map(|(o, _)| o).collect();
            let n = 20u64;
            let owned = synthetic_bufs(&conv, n, 0xABAD);
            let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
            let req = CountRequest::new(&bufs, n);
            let rf = RfCounter::new(&outcomes).count(&req);
            assert!(rf.downgraded, "{name}: batch must record the downgrade");
            let exh = ExhaustiveCounter::new(&outcomes).count(&req);
            assert_eq!(rf.counts, exh.counts, "{name} chain counts differ");
        }
    }

    #[test]
    fn rf_matches_exhaustive_per_outcome_across_salts() {
        for (name, n) in [("sb", 40u64), ("wrc", 24), ("podwr001", 14), ("mp", 48)] {
            let test = suite::by_name(name).unwrap();
            let conv = Conversion::convert(&test).unwrap();
            let all = conv.all_outcomes(&test).unwrap();
            for salt in 0..6u64 {
                let owned = synthetic_bufs(&conv, n, salt);
                let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
                let req = CountRequest::new(&bufs, n);
                for (o, _) in &all {
                    let rf = RfCounter::single(o).count(&req);
                    let exh = ExhaustiveCounter::single(o).count(&req);
                    assert_eq!(rf.counts, exh.counts, "{name} salt {salt} {:?}", o.label());
                    assert!(!rf.downgraded, "{name} {:?}", o.label());
                }
            }
        }
    }

    #[test]
    fn worker_counts_do_not_change_any_field() {
        for name in ["sb", "iriw", "podwr001"] {
            let test = suite::by_name(name).unwrap();
            let conv = Conversion::convert(&test).unwrap();
            let n = 20u64;
            let owned = synthetic_bufs(&conv, n, 7);
            let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
            let counter = RfCounter::single(&conv.target_exhaustive);
            let serial = counter.count(&CountRequest::new(&bufs, n));
            assert!(!serial.downgraded);
            for w in [2usize, 3, 7, 64] {
                let par = counter.count(&CountRequest::new(&bufs, n).with_workers(w));
                assert_eq!(serial.counts, par.counts, "{name} workers {w}");
                assert_eq!(serial.frames_examined, par.frames_examined);
                assert_eq!(serial.evals, par.evals);
            }
        }
    }

    #[test]
    fn triple_work_model_beats_the_cubic_frame_space() {
        // The acceptance criterion's shape: a T_L = 3 test at N >= 100
        // must examine >= 10x fewer frames than the exhaustive scan.
        let test = suite::by_name("podwr001").unwrap();
        let conv = Conversion::convert(&test).unwrap();
        let n = 100u64;
        let owned = synthetic_bufs(&conv, n, 3);
        let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
        let req = CountRequest::new(&bufs, n);
        let rf = RfCounter::single(&conv.target_exhaustive).count(&req);
        let exh = ExhaustiveCounter::single(&conv.target_exhaustive).count(&req);
        assert_eq!(rf.counts, exh.counts);
        assert_eq!(exh.frames_examined, n * n * n);
        assert!(
            rf.frames_examined * 10 <= exh.frames_examined,
            "rf {} vs exhaustive {}",
            rf.frames_examined,
            exh.frames_examined
        );
    }

    #[test]
    fn budget_admits_a_provable_iteration_prefix() {
        let test = suite::sb();
        let conv = Conversion::convert(&test).unwrap();
        let n = 3000u64;
        let owned = synthetic_bufs(&conv, n, 9);
        let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
        let budget = Budget::with_poll_limit(1);
        let part = RfCounter::single(&conv.target_exhaustive)
            .count(&CountRequest::new(&bufs, n).with_budget(&budget));
        assert!(part.budget_expired);
        // The truncated result equals the full count at n = 1024: same
        // buffers, iteration window shrunk to the admitted prefix.
        let prefix = RfCounter::single(&conv.target_exhaustive)
            .count(&CountRequest::new(&bufs, RF_POLL_INTERVAL));
        assert!(!prefix.budget_expired);
        assert_eq!(part.counts, prefix.counts);
        assert_eq!(part.frames_examined, prefix.frames_examined);
        // And an exhausted budget admits nothing.
        let dead = Budget::with_poll_limit(0);
        let zero = RfCounter::single(&conv.target_exhaustive)
            .count(&CountRequest::new(&bufs, n).with_budget(&dead));
        assert!(zero.budget_expired);
        assert_eq!(zero.total(), 0);
        assert_eq!(zero.frames_examined, 0);
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let test = suite::sb();
        let conv = Conversion::convert(&test).unwrap();
        let n = 64u64;
        let owned = synthetic_bufs(&conv, n, 4);
        let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
        let plain = RfCounter::single(&conv.target_exhaustive).count(&CountRequest::new(&bufs, n));
        let budget = Budget::unlimited();
        let budgeted = RfCounter::single(&conv.target_exhaustive)
            .count(&CountRequest::new(&bufs, n).with_budget(&budget));
        assert_eq!(plain.counts, budgeted.counts);
        assert!(!budgeted.budget_expired);
    }

    #[test]
    fn zero_iterations_and_empty_outcomes_are_degenerate() {
        let test = suite::sb();
        let conv = Conversion::convert(&test).unwrap();
        let bufs: Vec<&[u64]> = vec![&[], &[]];
        let r = RfCounter::single(&conv.target_exhaustive).count(&CountRequest::new(&bufs, 0));
        assert_eq!(r.total(), 0);
        assert_eq!(r.frames_examined, 0);
        let none = RfCounter::new(&[]).count(&CountRequest::new(&bufs, 5));
        assert!(none.counts.is_empty());
        assert_eq!(none.frames_examined, 0);
    }

    #[test]
    fn counting_feeds_the_rf_metrics() {
        let test = suite::by_name("podwr001").unwrap();
        let conv = Conversion::convert(&test).unwrap();
        let n = 16u64;
        let owned = synthetic_bufs(&conv, n, 1);
        let bufs: Vec<&[u64]> = owned.iter().map(Vec::as_slice).collect();
        let before = perple_obs::metrics::snapshot();
        let r = RfCounter::single(&conv.target_exhaustive).count(&CountRequest::new(&bufs, n));
        let delta = perple_obs::metrics::snapshot().delta_from(&before);
        assert!(delta.get("count_rf_closure_steps") >= r.frames_examined);
        assert!(delta.get("count_rf_edges_walked") > 0);
        assert_eq!(delta.get("count_rf_fallbacks"), 0);
    }

    #[test]
    fn the_fenwick_tree_counts_interval_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 1);
        assert_eq!(f.range(0, 7), 4);
        assert_eq!(f.range(1, 3), 2);
        assert_eq!(f.range(4, 6), 0);
        assert_eq!(f.range(5, 2), 0, "empty interval");
        f.add(3, -2);
        assert_eq!(f.range(0, 7), 2);
        f.clear();
        assert_eq!(f.range(0, 7), 0);
    }
}
