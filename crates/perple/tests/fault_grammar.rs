//! The `--inject` fault-plan grammar as the experiment layer sees it:
//! every malformed spec is a classified [`PerpleError::Config`] — never a
//! panic, never an ad-hoc string — and every well-formed plan survives a
//! parse → print → parse round trip unchanged.

use perple::{parse_fault_plan, PerpleError};

/// Every way a clause can be malformed, with why.
const MALFORMED: &[(&str, &str)] = &[
    ("", "empty plan"),
    (",", "only separators"),
    ("bad@", "missing thread scope and window"),
    ("drop", "missing '@'"),
    ("@t0:0..10", "empty kind"),
    ("zap@t0:0..10", "unknown kind"),
    ("drop@x0:0..10", "thread scope must be t<N> or *"),
    ("drop@t:0..10", "thread scope missing its number"),
    ("drop@t-1:0..10", "negative thread index"),
    ("drop@t99999999999999999999:0..10", "thread index overflow"),
    ("drop@t0", "missing iteration window"),
    ("drop@t0:10", "window missing '..'"),
    ("drop@t0:a..b", "junk window bounds"),
    ("drop@t0:10..10", "empty window"),
    ("drop@t0:20..10", "inverted window"),
    ("drop@t0:0..10:pX", "junk probability"),
    ("drop@t0:0..10:p1.5", "probability above 1"),
    ("drop@t0:0..10:p-0.5", "probability below 0"),
    ("stuck@t0:0..10:cX", "junk stall cycles"),
    ("drop@t0:0..10:q5", "unknown option"),
    ("drop@t0:0..10,bad@", "valid clause followed by junk"),
];

#[test]
fn malformed_specs_are_config_errors_never_panics() {
    for (spec, why) in MALFORMED {
        let result = std::panic::catch_unwind(|| parse_fault_plan(spec));
        let outcome = result.unwrap_or_else(|_| panic!("{why}: {spec:?} panicked the parser"));
        let err = match outcome {
            Ok(_) => panic!("{why}: {spec:?} was accepted"),
            Err(e) => e,
        };
        assert!(
            matches!(err, PerpleError::Config(_)),
            "{why}: {spec:?} → {err}"
        );
        assert!(
            err.to_string().contains("bad fault plan"),
            "{why}: diagnostic must name the plan: {err}"
        );
        assert!(
            !err.retryable(),
            "{why}: malformed grammar is deterministic, never retried"
        );
    }
}

#[test]
fn well_formed_plans_round_trip_to_identity() {
    for spec in [
        "drop@t0:100..200",
        "corrupt@*:0..1000",
        "stuck@t1:50..60:c5000",
        "reorder@t2:0..10",
        "drop@t0:100..200:p0.5",
        "drop@t0:100..200:p0.25,stuck@*:0..50:c30,corrupt@t3:7..8",
        "corrupt@t0:0..18446744073709551615",
    ] {
        let plan = parse_fault_plan(spec).expect(spec);
        let printed = plan.to_string();
        let reparsed = parse_fault_plan(&printed).expect(&printed);
        assert_eq!(
            plan, reparsed,
            "parse→print→parse must be identity for {spec:?}"
        );
        // And printing is a fixpoint: the canonical form re-prints itself.
        assert_eq!(printed, reparsed.to_string(), "{spec:?}");
    }
}

#[test]
fn canonical_form_drops_redundant_defaults() {
    // p1 is the default probability; the canonical form omits it, and the
    // two spellings are the same plan.
    let explicit = parse_fault_plan("drop@t0:0..10:p1").unwrap();
    let implicit = parse_fault_plan("drop@t0:0..10").unwrap();
    assert_eq!(explicit, implicit);
    assert_eq!(explicit.to_string(), "drop@t0:0..10");
}

#[test]
fn whitespace_and_empty_clauses_are_tolerated_between_commas() {
    let plan = parse_fault_plan(" drop@t0:0..10 , , corrupt@t1:5..9 ").unwrap();
    assert_eq!(plan.specs().len(), 2);
    let reparsed = parse_fault_plan(&plan.to_string()).unwrap();
    assert_eq!(plan, reparsed);
}

#[test]
fn campaign_specs_reject_malformed_inject_lines_through_the_same_path() {
    // The campaign layer routes `inject =` through parse_fault_plan too:
    // a malformed plan surfaces as a Config error when the spec is turned
    // into an ExperimentConfig, not as a panic mid-run.
    let mut spec = perple::campaign::CampaignSpec::named("t");
    spec.tests = vec!["sb".to_owned()];
    spec.inject = Some("bad@".to_owned());
    let err = perple::experiments::campaign::campaign_config(&spec).unwrap_err();
    assert!(matches!(err, PerpleError::Config(_)), "{err}");
}
