//! End-to-end tests of the `perple` command-line interface.

use std::process::Command;

fn perple(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perple"))
        .args(args)
        .output()
        .expect("perple binary runs")
}

#[test]
fn list_shows_the_suite() {
    let out = perple(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sb"));
    assert!(text.contains("forbidden"));
    assert!(text.contains("54 non-convertible"));
}

#[test]
fn classify_reports_all_three_models() {
    let out = perple(&["classify", "sb"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("under SC:  false"));
    assert!(text.contains("under TSO: true"));
    assert!(text.contains("under PSO: true"));
    assert!(text.contains("target outcome"));
}

#[test]
fn run_detects_sb_and_stays_clean_on_mp() {
    let out = perple(&["run", "sb", "-n", "3000", "--seed", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("target outcome occurrences (heuristic counter): "))
        .expect("count line")
        .parse()
        .expect("count parses");
    assert!(hits > 0);

    let out = perple(&["run", "mp", "-n", "3000"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("occurrences (heuristic counter): 0"));
    assert!(!text.contains("violates"));
}

#[test]
fn weak_machine_run_reports_the_violation() {
    let out = perple(&["run", "mp", "-n", "5000", "--weak"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violates x86-TSO"), "{text}");
}

#[test]
fn run_counter_flag_switches_backends_and_counts_agree() {
    // The same run under every backend: rf and exhaustive report the same
    // exact count; the heuristic may undercount but never overcount.
    let count_under = |backend: &str| -> u64 {
        let out = perple(&[
            "run",
            "sb",
            "-n",
            "2000",
            "--seed",
            "5",
            "--counter",
            backend,
        ]);
        assert!(out.status.success(), "{backend}");
        let text = String::from_utf8_lossy(&out.stdout);
        text.lines()
            .find_map(|l| {
                l.strip_prefix(&format!("target outcome occurrences ({backend} counter): "))
            })
            .unwrap_or_else(|| panic!("{backend} count line missing in {text}"))
            .parse()
            .expect("count parses")
    };
    let rf = count_under("rf");
    let exhaustive = count_under("exhaustive");
    let heuristic = count_under("heuristic");
    assert_eq!(rf, exhaustive, "rf must be bit-identical to exhaustive");
    assert!(heuristic <= rf);
    assert!(rf > 0, "sb target must be observed");

    let bad = perple(&["run", "sb", "--counter", "turbo"]);
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("bad counter"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
}

#[test]
fn audit_json_records_the_counter_backend() {
    let out = perple(&["audit", "-n", "80", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"counter\":\"rf\""),
        "rf is the audit default"
    );
    assert!(text.contains("\"rf_fallback\":false"), "{text}");

    let out = perple(&["audit", "-n", "80", "--json", "--counter", "exhaustive"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"counter\":\"exhaustive\""), "{text}");
}

#[test]
fn trace_produces_an_event_log() {
    let out = perple(&["trace", "sb", "-n", "2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("store mem["));
    assert!(text.contains("drain mem["));
    assert!(text.contains("cycles"));
}

#[test]
fn infer_names_tso_and_pso() {
    let out = perple(&["infer", "-n", "4000"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("closest textbook model: TSO"), "{text}");

    let out = perple(&["infer", "-n", "4000", "--weak"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("closest textbook model: PSO"), "{text}");
}

#[test]
fn convert_emits_all_artifacts() {
    let out = perple(&["convert", "sb"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("perp_thread_0"));
    assert!(text.contains("t0_reads = 1"));
    assert!(text.contains("void COUNT("));
    assert!(text.contains("void COUNTH("));
}

#[test]
fn convert_rejects_non_convertible_tests() {
    let out = perple(&["convert", "2+2w"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("not convertible"), "{text}");
}

#[test]
fn classify_accepts_litmus_files() {
    let dir = std::env::temp_dir().join(format!("perple-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("custom.litmus");
    std::fs::write(
        &path,
        "X86 custom\n{ x=0; y=0; }\n P0          | P1          ;\n MOV [x],$1  | MOV [y],$1  ;\n MOV EAX,[y] | MOV EAX,[x] ;\nexists (0:EAX=0 /\\ 1:EAX=0)\n",
    )
    .unwrap();
    let out = perple(&["classify", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("under TSO: true"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!perple(&[]).status.success());
    assert!(!perple(&["frobnicate"]).status.success());
    assert!(!perple(&["classify", "no-such-test-or-file"])
        .status
        .success());
    assert!(!perple(&["run", "sb", "-n", "not-a-number"])
        .status
        .success());
}
