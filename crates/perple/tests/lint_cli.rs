//! Integration tests of `perple lint` and the campaign lint gate as real
//! subprocesses — the level where exit codes and JSON output must prove
//! themselves to CI scripts.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use perple::jsonout::{self, Json};

/// A litmus test whose thread 0 clobbers EAX (two loads, one register):
/// an L005 warning, which gates only under `--deny warnings`.
const CLOBBER: &str = "\
X86 clobber
\"second load clobbers the first\"
{ x=0; y=0; }
 P0          |  P1          ;
 MOV [x],$1  |  MOV [y],$1  ;
 MOV EAX,[y] |  MOV EAX,[x] ;
 MOV EAX,[x] |              ;
exists (0:EAX=0 /\\ 1:EAX=0)
";

/// A campaign spec whose k=2 sequences overflow 64-bit values: an L001
/// error, which the engine must refuse to run without `--allow-lints`.
const OVERFLOW_SPEC: &str = "\
name = lintgate
tests = n5
seeds = 1
iterations = 18446744073709551615
workers = 1
";

const CLEAN_SPEC: &str = "\
name = lintok
tests = sb
seeds = 1
iterations = 150
workers = 1
";

fn perple(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perple"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn perple")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-lint-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn lint_clean_suite_test_exits_zero_with_a_summary() {
    let dir = sandbox("clean");
    let out = perple(&dir, &["lint", "sb"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("1 tests: 0 errors, 0 warnings, 0 notes"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn lint_json_carries_the_schema_and_is_byte_identical_across_runs() {
    let dir = sandbox("json");
    let a = perple(&dir, &["lint", "--json", "sb", "2+2w"]);
    assert!(a.status.success(), "{}", stderr(&a));
    let doc = jsonout::parse(stdout(&a).trim()).expect("lint JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("perple-lint-v1")
    );
    assert_eq!(
        doc.get("totals")
            .and_then(|t| t.get("tests"))
            .and_then(Json::as_u64),
        Some(2)
    );
    // 2+2w is non-convertible: its report must say so and carry L002 notes.
    let text = stdout(&a);
    assert!(text.contains("\"convertible\":false"), "{text}");
    assert!(text.contains("\"L002\""), "{text}");

    let b = perple(&dir, &["lint", "--json", "sb", "2+2w"]);
    assert_eq!(stdout(&a), stdout(&b), "lint JSON must be deterministic");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn lint_file_input_records_the_path_and_deny_warnings_gates() {
    let dir = sandbox("file");
    std::fs::write(dir.join("clobber.litmus"), CLOBBER).unwrap();

    // Warnings alone do not gate...
    let ok = perple(&dir, &["lint", "--json", "clobber.litmus"]);
    assert!(ok.status.success(), "{}", stderr(&ok));
    let doc = jsonout::parse(stdout(&ok).trim()).unwrap();
    let test = doc
        .get("tests")
        .and_then(Json::as_arr)
        .and_then(<[Json]>::first)
        .expect("one test report");
    assert_eq!(
        test.get("source").and_then(Json::as_str),
        Some("clobber.litmus"),
        "file origin must land in the JSON"
    );
    assert!(
        stdout(&ok).contains("\"L005\""),
        "clobbered EAX must be flagged: {}",
        stdout(&ok)
    );

    // ...but --deny warnings promotes them to a nonzero exit.
    let deny = perple(&dir, &["lint", "--deny", "warnings", "clobber.litmus"]);
    assert!(!deny.status.success(), "--deny warnings must gate");
    assert!(stdout(&deny).contains("warning[L005]"), "{}", stdout(&deny));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn lint_errors_exit_nonzero_with_the_offending_rule_named() {
    let dir = sandbox("err");
    // n5's k=2 sequence overflows 16-bit values long before 100k iterations.
    let out = perple(
        &dir,
        &["lint", "--iterations", "100000", "--value-bits", "16", "n5"],
    );
    assert!(!out.status.success(), "overflow must gate");
    let text = stdout(&out);
    assert!(text.contains("error[L001]"), "{text}");
    assert!(text.contains("max safe iteration count"), "{text}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn campaign_run_refuses_linted_specs_unless_allowed() {
    let dir = sandbox("gate");
    std::fs::write(dir.join("gate.campaign"), OVERFLOW_SPEC).unwrap();
    std::fs::write(dir.join("ok.campaign"), CLEAN_SPEC).unwrap();

    let refused = perple(
        &dir,
        &["campaign", "run", "gate.campaign", "--store", "store"],
    );
    assert!(!refused.status.success(), "gate must refuse");
    let err = stderr(&refused);
    assert!(err.contains("L001"), "{err}");
    assert!(err.contains("--allow-lints"), "{err}");
    assert!(
        !stdout(&refused).contains("run:"),
        "no run may be stored on refusal: {}",
        stdout(&refused)
    );

    // The flag is accepted and a clean spec runs + records lint totals.
    let ok = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ok.campaign",
            "--store",
            "store",
            "--allow-lints",
        ],
    );
    assert!(ok.status.success(), "{}", stderr(&ok));
    let show = perple(
        &dir,
        &["campaign", "show", "latest", "--store", "store", "--json"],
    );
    let doc = jsonout::parse(stdout(&show).trim()).expect("show --json parses");
    let manifest = doc.get("manifest").expect("manifest envelope");
    let lint = manifest.get("lint").expect("manifest lint summary");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
    let _ = std::fs::remove_dir_all(dir);
}
