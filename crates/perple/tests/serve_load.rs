//! Load measurement for `perple serve` — ignored by default; run it to
//! reproduce the EXPERIMENTS.md throughput table:
//!
//! ```text
//! cargo test --release -p perple --test serve_load -- --ignored --nocapture
//! ```
//!
//! For each worker count it boots the real binary, primes the cache with
//! one cold submission, then drives 1000 warm `wait=1` submissions from
//! 8 concurrent clients and reports sustained submissions/sec plus the
//! server's own latency histogram quantiles from `/metrics`.

use perple::jsonout::Json;
use perple::serve::client::{self, Target};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const CLIENTS: usize = 8;
const SUBMISSIONS: usize = 1000;

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-serve-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke_spec() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/smoke.campaign");
    std::fs::read_to_string(path).expect("examples/smoke.campaign")
}

fn metric(m: &Json, section: &str, key: &str) -> u64 {
    m.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {section}.{key}: {}", m.render()))
}

#[test]
#[ignore = "load measurement, run manually for EXPERIMENTS.md"]
fn sustained_throughput_by_worker_count() {
    let spec = smoke_spec();
    println!("workers | submissions/s | item p50 us | item p99 us | job p99 us | warm hit-rate");
    for workers in [1usize, 4, 8] {
        let dir = sandbox(&format!("w{workers}"));
        let mut child = Command::new(env!("CARGO_BIN_EXE_perple"))
            .current_dir(&dir)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store",
                "store",
                "--workers",
                &workers.to_string(),
                "--queue",
                "64",
                "--quota",
                "16",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn perple serve");
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "serve died");
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                break rest.to_string();
            }
        };
        let target = Target::Tcp(addr);

        // Prime: one cold submission executes and fills the cache.
        let cold = client::submit(&target, &spec, "prime", true, None).unwrap();
        assert_eq!(cold.status, 200, "{:?}", cold.lines);

        // Warm storm: CLIENTS threads, SUBMISSIONS total, backpressure
        // respected by retrying 429s after the advertised delay.
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for c in 0..CLIENTS {
                let target = target.clone();
                let spec = &spec;
                s.spawn(move || {
                    for _ in 0..SUBMISSIONS / CLIENTS {
                        loop {
                            let out =
                                client::submit(&target, spec, &format!("load-{c}"), true, None)
                                    .unwrap();
                            if out.status == 200 {
                                break;
                            }
                            assert_eq!(out.status, 429, "{:?}", out.lines);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                    }
                });
            }
        });
        let wall = t0.elapsed();

        let m = perple::jsonout::parse(
            client::get(&target, "/metrics")
                .unwrap()
                .lines
                .join("")
                .as_str(),
        )
        .unwrap();
        let finished = metric(&m, "queue", "finished");
        assert!(
            finished >= (SUBMISSIONS + 1) as u64,
            "only {finished} jobs finished"
        );
        let rate = SUBMISSIONS as f64 / wall.as_secs_f64();
        println!(
            "{workers:7} | {rate:13.0} | {:11} | {:11} | {:10} | {:4} permille",
            metric(&m, "latency_us", "item_p50"),
            metric(&m, "latency_us", "item_p99"),
            metric(&m, "latency_us", "job_p99"),
            metric(&m, "cache", "hit_rate_permille"),
        );

        let pid = child.id().to_string();
        assert!(Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .unwrap()
            .success());
        assert!(child.wait().unwrap().success(), "drain failed");
        let _ = std::fs::remove_dir_all(dir);
    }
}
