//! Integration tests of `perple campaign ...` as real subprocesses — the
//! level where cache keys must prove themselves **across process
//! restarts**: a second `campaign run` of an unchanged spec, in a fresh
//! process, must hit the cache for every item, and `campaign compare` must
//! gate regressions with its exit code.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SPEC: &str = "\
name = ci
tests = sb, mp
seeds = 1, 2
iterations = 150
workers = 2
";

const FAULTY_SPEC: &str = "\
name = ci
tests = sb, mp
seeds = 1, 2
iterations = 150
workers = 2
inject = corrupt@t0:0..150
";

fn perple(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perple"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn perple")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn sandbox(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("perple-campaign-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn warm_rerun_across_process_restarts_hits_the_cache() {
    let dir = sandbox("warm");
    std::fs::write(dir.join("ci.campaign"), SPEC).unwrap();

    // Cold run: fresh store, everything executes.
    let cold = perple(
        &dir,
        &["campaign", "run", "ci.campaign", "--store", "store"],
    );
    assert!(cold.status.success(), "cold run failed: {}", stderr(&cold));
    let cold_out = stdout(&cold);
    assert!(cold_out.contains("run: ci-0001"), "{cold_out}");
    assert!(cold_out.contains("hits: 0/4"), "{cold_out}");

    // Warm run IN A NEW PROCESS: fingerprints recomputed from scratch must
    // match the stored ones — ≥90% hits required, 100% expected.
    let warm = perple(
        &dir,
        &["campaign", "run", "ci.campaign", "--store", "store"],
    );
    assert!(warm.status.success(), "warm run failed: {}", stderr(&warm));
    let warm_out = stdout(&warm);
    assert!(
        warm_out.contains("hits: 4/4"),
        "cache keys are not process-stable: {warm_out}"
    );
    assert!(warm_out.contains("executed: 0,"), "{warm_out}");

    // The two runs gate clean against each other (exit 0).
    let cmp = perple(
        &dir,
        &[
            "campaign", "compare", "ci-0001", "ci-0002", "--store", "store",
        ],
    );
    assert!(
        cmp.status.success(),
        "self-compare must pass: {}",
        stdout(&cmp)
    );
    assert!(stdout(&cmp).contains("0 regression(s)"), "{}", stdout(&cmp));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn injected_fault_run_fails_the_compare_gate_with_nonzero_exit() {
    let dir = sandbox("gate");
    std::fs::write(dir.join("ci.campaign"), SPEC).unwrap();
    std::fs::write(dir.join("faulty.campaign"), FAULTY_SPEC).unwrap();

    let base = perple(
        &dir,
        &["campaign", "run", "ci.campaign", "--store", "store"],
    );
    assert!(base.status.success(), "{}", stderr(&base));

    // The faulty campaign observes forbidden outcomes, so `run` itself
    // exits nonzero — but it still stores the run for comparison.
    let bad = perple(
        &dir,
        &["campaign", "run", "faulty.campaign", "--store", "store"],
    );
    assert!(
        !bad.status.success(),
        "fault-injected run must report the violation"
    );
    assert!(stdout(&bad).contains("run: ci-0002"), "{}", stdout(&bad));

    let cmp = perple(
        &dir,
        &[
            "campaign", "compare", "ci-0001", "ci-0002", "--store", "store",
        ],
    );
    assert!(
        !cmp.status.success(),
        "compare must exit nonzero on regression"
    );
    let cmp_out = stdout(&cmp);
    assert!(cmp_out.contains("new-faults"), "{cmp_out}");
    assert!(cmp_out.contains("new-forbidden"), "{cmp_out}");

    // JSON report carries the same verdict.
    let cmp_json = perple(
        &dir,
        &[
            "campaign", "compare", "ci-0001", "ci-0002", "--store", "store", "--json",
        ],
    );
    assert!(!cmp_json.status.success());
    assert!(
        stdout(&cmp_json).contains("\"regression\":true"),
        "{}",
        stdout(&cmp_json)
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn rf_campaign_gates_clean_against_an_exhaustive_baseline() {
    // The counter backend partitions the cache (different fingerprints)
    // but must NOT change a single recorded count: a spec run under
    // `--counter rf` compared against its `--counter exhaustive` baseline
    // gates on nothing, across real process boundaries.
    let dir = sandbox("rfgate");
    std::fs::write(dir.join("ci.campaign"), SPEC).unwrap();

    let base = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ci.campaign",
            "--store",
            "store",
            "--counter",
            "exhaustive",
        ],
    );
    assert!(base.status.success(), "{}", stderr(&base));
    assert!(stdout(&base).contains("hits: 0/4"), "{}", stdout(&base));

    let rf = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ci.campaign",
            "--store",
            "store",
            "--counter",
            "rf",
        ],
    );
    assert!(rf.status.success(), "{}", stderr(&rf));
    assert!(
        stdout(&rf).contains("hits: 0/4"),
        "backends must not share cache entries: {}",
        stdout(&rf)
    );

    let cmp = perple(
        &dir,
        &[
            "campaign", "compare", "ci-0001", "ci-0002", "--store", "store",
        ],
    );
    assert!(
        cmp.status.success(),
        "rf vs exhaustive must gate clean: {}{}",
        stdout(&cmp),
        stderr(&cmp)
    );
    assert!(stdout(&cmp).contains("0 regression(s)"), "{}", stdout(&cmp));

    // And the bad backend name fails before touching the store.
    let bad = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ci.campaign",
            "--store",
            "store",
            "--counter",
            "turbo",
        ],
    );
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("bad counter"), "{}", stderr(&bad));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn ls_and_show_surface_stored_runs() {
    let dir = sandbox("lsshow");
    std::fs::write(dir.join("ci.campaign"), SPEC).unwrap();

    let empty = perple(&dir, &["campaign", "ls", "--store", "store"]);
    assert!(empty.status.success());
    assert!(
        stdout(&empty).contains("no stored runs"),
        "{}",
        stdout(&empty)
    );

    let run = perple(
        &dir,
        &["campaign", "run", "ci.campaign", "--store", "store"],
    );
    assert!(run.status.success(), "{}", stderr(&run));

    let ls = perple(&dir, &["campaign", "ls", "--store", "store"]);
    let ls_out = stdout(&ls);
    assert!(ls.status.success());
    assert!(ls_out.contains("ci-0001"), "{ls_out}");
    assert!(
        ls_out.contains("cache: 4 result entries, 2 conversion artifacts"),
        "{ls_out}"
    );

    // `show latest` resolves and prints the per-item table.
    let show = perple(&dir, &["campaign", "show", "latest", "--store", "store"]);
    let show_out = stdout(&show);
    assert!(show.status.success(), "{}", stderr(&show));
    assert!(show_out.contains("ci-0001"), "{show_out}");
    assert!(show_out.contains("sb#1"), "{show_out}");
    assert!(show_out.contains("mp#2"), "{show_out}");

    // `show --json` wraps manifest + per-item records, parseable by the
    // shared reader.
    let json = perple(
        &dir,
        &["campaign", "show", "latest", "--store", "store", "--json"],
    );
    assert!(json.status.success());
    let doc = perple::jsonout::parse(stdout(&json).trim()).expect("show --json parses");
    assert_eq!(
        doc.get("manifest")
            .and_then(|m| m.get("id"))
            .and_then(perple::jsonout::Json::as_str),
        Some("ci-0001")
    );
    assert_eq!(
        doc.get("items")
            .and_then(perple::jsonout::Json::as_arr)
            .map(<[_]>::len),
        Some(4)
    );

    // `ls --json` carries the run list and cache stats in one document.
    let ls_json = perple(&dir, &["campaign", "ls", "--store", "store", "--json"]);
    assert!(ls_json.status.success());
    let doc = perple::jsonout::parse(stdout(&ls_json).trim()).expect("ls --json parses");
    let runs = doc
        .get("runs")
        .and_then(perple::jsonout::Json::as_arr)
        .expect("runs array");
    assert_eq!(runs.len(), 1);
    assert_eq!(
        doc.get("cache")
            .and_then(|c| c.get("results"))
            .and_then(perple::jsonout::Json::as_u64),
        Some(4)
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn crashed_run_is_fscked_and_resumed_bit_identically() {
    let dir = sandbox("crash");
    std::fs::write(dir.join("ci.campaign"), SPEC).unwrap();

    // Reference: the same spec, uninterrupted, in its own store.
    let reference = perple(
        &dir,
        &["campaign", "run", "ci.campaign", "--store", "refstore"],
    );
    assert!(reference.status.success(), "{}", stderr(&reference));
    let ref_items = std::fs::read(dir.join("refstore/runs/ci-0001/items.json")).unwrap();

    // Crash mid-campaign: boundary 20 lands inside the per-item
    // cache-store/journal-append region, after the pending marker and at
    // least one journaled record.
    let crashed = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ci.campaign",
            "--store",
            "store",
            "--crash",
            "abort@20",
        ],
    );
    assert!(
        !crashed.status.success(),
        "injected crash must kill the run"
    );
    assert!(
        stderr(&crashed).contains("injected crash"),
        "{}",
        stderr(&crashed)
    );

    // fsck (new process) sees the interrupted run; --repair leaves the
    // store healthy and still resumable.
    let fsck = perple(&dir, &["campaign", "fsck", "--store", "store", "--repair"]);
    assert!(
        fsck.status.success(),
        "fsck --repair must succeed: {}{}",
        stdout(&fsck),
        stderr(&fsck)
    );
    assert!(
        stdout(&fsck).contains("resumable ci-0001"),
        "{}",
        stdout(&fsck)
    );

    // Resume (new process, id inferred from the single pending run).
    let resume = perple(&dir, &["campaign", "resume", "--store", "store"]);
    assert!(resume.status.success(), "{}", stderr(&resume));
    let resume_out = stdout(&resume);
    assert!(resume_out.contains("run: ci-0001"), "{resume_out}");
    assert!(resume_out.contains("recovered:"), "{resume_out}");

    // The recovered run's item records are bit-identical to the
    // uninterrupted reference.
    let items = std::fs::read(dir.join("store/runs/ci-0001/items.json")).unwrap();
    assert_eq!(
        items, ref_items,
        "crash + fsck + resume must reproduce items.json byte-for-byte"
    );

    // The store is clean afterwards, and there is nothing left to resume.
    let clean = perple(&dir, &["campaign", "fsck", "--store", "store"]);
    assert!(clean.status.success(), "{}", stdout(&clean));
    assert!(stdout(&clean).contains("clean"), "{}", stdout(&clean));
    let nothing = perple(&dir, &["campaign", "resume", "--store", "store"]);
    assert!(!nothing.status.success());
    assert!(
        stderr(&nothing).contains("no interrupted runs"),
        "{}",
        stderr(&nothing)
    );

    // A malformed crash plan is rejected before the store is touched.
    let bad = perple(
        &dir,
        &[
            "campaign",
            "run",
            "ci.campaign",
            "--store",
            "other",
            "--crash",
            "explode@3",
        ],
    );
    assert!(!bad.status.success());
    assert!(
        stderr(&bad).contains("bad --crash plan"),
        "{}",
        stderr(&bad)
    );
    assert!(!dir.join("other").exists());

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_specs_and_unknown_runs_fail_cleanly() {
    let dir = sandbox("errors");

    std::fs::write(dir.join("bad.campaign"), "tests = sb\nfrobnicate = 1\n").unwrap();
    let bad = perple(
        &dir,
        &["campaign", "run", "bad.campaign", "--store", "store"],
    );
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("frobnicate"), "{}", stderr(&bad));

    std::fs::write(
        dir.join("badinject.campaign"),
        "tests = sb\ninject = bad@\n",
    )
    .unwrap();
    let inj = perple(
        &dir,
        &["campaign", "run", "badinject.campaign", "--store", "store"],
    );
    assert!(!inj.status.success());
    assert!(stderr(&inj).contains("bad fault plan"), "{}", stderr(&inj));

    let missing = perple(&dir, &["campaign", "show", "nope", "--store", "store"]);
    assert!(!missing.status.success());
    assert!(
        stderr(&missing).contains("not found"),
        "{}",
        stderr(&missing)
    );

    let _ = std::fs::remove_dir_all(dir);
}
