//! Concurrent cache sharing: two campaign engines running **overlapping**
//! specs against one store at the same time. This is the serve worker
//! pool's steady state — multiple jobs racing to convert, execute, and
//! cache the same items — so the store must come out with no torn cache
//! entries, coherent hit accounting, and nothing for fsck to repair.

use perple::campaign::spec::CampaignSpec;
use perple::campaign::{fsck, ArtifactCache, RunStore};
use perple::experiments::campaign::run_spec;
use std::path::PathBuf;

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "perple-concurrent-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(name: &str, seeds: &str) -> CampaignSpec {
    let text =
        format!("name = {name}\ntests = sb, mp\nseeds = {seeds}\niterations = 150\nworkers = 2\n");
    CampaignSpec::parse(&text).unwrap()
}

#[test]
fn overlapping_engines_share_one_store_without_tearing_it() {
    let dir = sandbox("overlap");
    let root = dir.clone();

    // Specs A and B overlap on seed 2: four items each, two contested.
    let spec_a = spec("alpha", "1, 2");
    let spec_b = spec("beta", "2, 3");

    let (summary_a, summary_b) = std::thread::scope(|s| {
        let ra = {
            let root = root.clone();
            let spec_a = &spec_a;
            s.spawn(move || run_spec(spec_a, &root, false).unwrap())
        };
        let rb = {
            let root = root.clone();
            let spec_b = &spec_b;
            s.spawn(move || run_spec(spec_b, &root, false).unwrap())
        };
        (ra.join().unwrap(), rb.join().unwrap())
    });

    // Per-run ledgers balance: every item is either a hit or executed,
    // none lost, regardless of how the race interleaved.
    for (tag, sm) in [("alpha", &summary_a), ("beta", &summary_b)] {
        assert_eq!(sm.items, 4, "{tag}");
        assert_eq!(sm.hits + sm.executed, sm.items, "{tag}");
        assert_eq!(sm.lost, 0, "{tag}");
        assert_eq!(sm.violations, 0, "{tag}");
    }

    // The two contested items (sb#2, mp#2) land exactly once each in the
    // cache — concurrent writers must not duplicate or tear entries.
    // Total distinct items across both runs: sb/mp × seeds {1,2,3} = 6.
    let cache = ArtifactCache::open(&root).unwrap();
    let (results, convs) = cache.stats();
    assert_eq!(results, 6, "result entries duplicated or lost");
    assert_eq!(convs, 2, "one conversion artifact per test expected");

    // Every cache entry on disk verifies: named fingerprint matches the
    // stored document, nothing torn mid-write.
    for ns in ["result", "conv"] {
        for path in cache.entry_paths(ns) {
            assert_eq!(
                ArtifactCache::verify_entry(&path),
                None,
                "torn cache entry {}",
                path.display()
            );
        }
    }

    // fsck agrees the store is clean, and both runs' stored items parse.
    let store = RunStore::open(&root).unwrap();
    let report = fsck(&store, &cache, false).unwrap();
    assert!(report.is_clean(), "{}", report.render_text());
    for id in ["alpha-0001", "beta-0001"] {
        assert_eq!(store.load_items(id).unwrap().len(), 4, "{id}");
    }

    // A second round of both specs, again concurrently, is pure cache
    // hits: the contested entries written during the race are readable
    // and keyed correctly.
    let (warm_a, warm_b) = std::thread::scope(|s| {
        let ra = {
            let root = root.clone();
            let spec_a = &spec_a;
            s.spawn(move || run_spec(spec_a, &root, false).unwrap())
        };
        let rb = {
            let root = root.clone();
            let spec_b = &spec_b;
            s.spawn(move || run_spec(spec_b, &root, false).unwrap())
        };
        (ra.join().unwrap(), rb.join().unwrap())
    });
    assert_eq!((warm_a.hits, warm_a.executed), (4, 0), "alpha warm");
    assert_eq!((warm_b.hits, warm_b.executed), (4, 0), "beta warm");

    let _ = std::fs::remove_dir_all(dir);
}
