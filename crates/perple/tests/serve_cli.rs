//! End-to-end tests of `perple serve` as a real subprocess: streamed
//! submissions must match batch `campaign run` byte-for-byte, a warm
//! resubmission must do zero execution, SIGTERM must drain to an
//! fsck-clean store, and a server booted over a crash-interrupted store
//! must auto-resume the pending run without re-executing journaled items.

use perple::campaign::RunStore;
use perple::jsonout::Json;
use perple::serve::client::{self, Target};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Output, Stdio};

fn perple_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perple"))
}

fn perple(dir: &Path, args: &[&str]) -> Output {
    perple_cmd()
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn perple")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke_spec() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/smoke.campaign");
    std::fs::read_to_string(path).expect("examples/smoke.campaign")
}

/// A running `perple serve` subprocess with its boot banner consumed.
struct ServeProc {
    child: Child,
    reader: BufReader<ChildStdout>,
    /// Lines printed before `listening on` (the auto-resume report).
    boot_lines: Vec<String>,
    addr: String,
}

impl ServeProc {
    /// Boots `perple serve --addr 127.0.0.1:0` on `store` and waits for
    /// the `listening on HOST:PORT` banner.
    fn boot(dir: &Path, store: &str, workers: &str) -> ServeProc {
        let mut child = perple_cmd()
            .current_dir(dir)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store",
                store,
                "--workers",
                workers,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn perple serve");
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let mut boot_lines = Vec::new();
        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read serve stdout") == 0 {
                let out = child.wait_with_output().unwrap();
                panic!("serve exited before listening: {}", stderr(&out));
            }
            let line = line.trim().to_string();
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_string();
            }
            boot_lines.push(line);
        };
        ServeProc {
            child,
            reader,
            boot_lines,
            addr,
        }
    }

    fn target(&self) -> Target {
        Target::Tcp(self.addr.clone())
    }

    /// SIGTERM, then waits for a clean exit and the drain banner.
    fn terminate(mut self) -> Vec<String> {
        let pid = self.child.id().to_string();
        let kill = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(kill.success());
        let status = self.child.wait().expect("wait for serve");
        assert!(status.success(), "serve must exit 0 on SIGTERM drain");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.reader, &mut rest).unwrap();
        rest.lines().map(str::to_string).collect()
    }
}

/// Splits a `wait=1` submission body into (record lines, summary doc).
fn split_stream(lines: &[String]) -> (Vec<String>, Json) {
    let (last, records) = lines.split_last().expect("non-empty stream");
    let tail = perple::jsonout::parse(last).expect("summary line parses");
    (records.to_vec(), tail)
}

fn summary_count(tail: &Json, key: &str) -> u64 {
    tail.get("summary")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("summary lacks {key}: {}", tail.render()))
}

fn assert_fsck_clean(dir: &Path, store: &str) {
    let fsck = perple(dir, &["campaign", "fsck", "--store", store]);
    assert!(
        fsck.status.success(),
        "fsck found repairs: {}{}",
        stdout(&fsck),
        stderr(&fsck)
    );
    let pending = RunStore::open(dir.join(store)).unwrap().pending_runs();
    assert!(pending.is_empty(), "pending markers left: {pending:?}");
}

#[test]
fn streamed_submission_matches_batch_run_and_sigterm_drains_clean() {
    let dir = sandbox("equiv");
    let spec = smoke_spec();
    std::fs::write(dir.join("smoke.campaign"), &spec).unwrap();

    // Batch reference in its own store.
    let batch = perple(
        &dir,
        &["campaign", "run", "smoke.campaign", "--store", "batch"],
    );
    assert!(batch.status.success(), "{}", stderr(&batch));
    let batch_store = RunStore::open(dir.join("batch")).unwrap();
    let batch_id = batch_store.resolve("latest").unwrap();
    let batch_records: Vec<String> = batch_store
        .load_items(&batch_id)
        .unwrap()
        .iter()
        .map(|r| r.to_json().render())
        .collect();

    let serve = ServeProc::boot(&dir, "served", "2");
    assert!(serve.boot_lines.is_empty(), "{:?}", serve.boot_lines);

    // Cold submission: streamed record lines must equal the batch run's
    // items.json records byte-for-byte, in slot order.
    let out = client::submit(&serve.target(), &spec, "eq", true, None).unwrap();
    assert_eq!(out.status, 200);
    let (records, tail) = split_stream(&out.lines);
    assert_eq!(records, batch_records, "stream/batch divergence");
    assert_eq!(summary_count(&tail, "executed"), 4);
    assert_eq!(summary_count(&tail, "hits"), 0);

    // Warm resubmission through the `perple client` CLI: all hits, zero
    // execution, identical record bytes again.
    let warm = perple(
        &dir,
        &[
            "client",
            "submit",
            "smoke.campaign",
            "--addr",
            &serve.addr,
            "--client",
            "warm",
        ],
    );
    assert!(warm.status.success(), "{}", stderr(&warm));
    let warm_lines: Vec<String> = stdout(&warm).lines().map(str::to_string).collect();
    let (warm_records, warm_tail) = split_stream(&warm_lines);
    assert_eq!(warm_records, batch_records, "warm stream diverged");
    assert_eq!(summary_count(&warm_tail, "hits"), 4);
    assert_eq!(summary_count(&warm_tail, "executed"), 0);

    // The metrics endpoint reports the queue and the shared cache.
    let metrics = perple(&dir, &["client", "metrics", "--addr", &serve.addr]);
    assert!(metrics.status.success(), "{}", stderr(&metrics));
    let m = perple::jsonout::parse(stdout(&metrics).trim()).unwrap();
    assert_eq!(
        m.get("queue")
            .and_then(|q| q.get("finished"))
            .and_then(Json::as_u64),
        Some(2)
    );
    assert_eq!(
        m.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64),
        Some(4)
    );
    assert_eq!(
        m.get("cache")
            .and_then(|c| c.get("hit_rate_permille"))
            .and_then(Json::as_u64),
        Some(500)
    );
    assert!(
        m.get("latency_us")
            .and_then(|l| l.get("item_p99"))
            .and_then(Json::as_u64)
            .is_some(),
        "{}",
        m.render()
    );

    // Graceful drain: exit 0, drain banner, fsck-clean store.
    let tail_lines = serve.terminate();
    assert!(
        tail_lines.iter().any(|l| l == "drained cleanly"),
        "{tail_lines:?}"
    );
    assert_fsck_clean(&dir, "served");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn server_boot_resumes_a_crash_interrupted_store() {
    let dir = sandbox("resume");
    let spec = smoke_spec();
    std::fs::write(dir.join("smoke.campaign"), &spec).unwrap();

    // Simulate a SIGKILL'd predecessor: an injected abort at an IO
    // boundary inside the journaled execution region leaves a pending
    // marker plus journal frames, exactly what a killed server leaves.
    let crashed = perple(
        &dir,
        &[
            "campaign",
            "run",
            "smoke.campaign",
            "--store",
            "store",
            "--crash",
            "abort@20",
        ],
    );
    assert!(
        !crashed.status.success(),
        "injected crash must kill the run"
    );
    let pending = RunStore::open(dir.join("store")).unwrap().pending_runs();
    assert_eq!(pending.len(), 1, "crash must leave a pending run");

    // A server booted over that store resumes before accepting work and
    // reports journaled items it recovered without re-execution.
    let serve = ServeProc::boot(&dir, "store", "2");
    assert_eq!(serve.boot_lines.len(), 1, "{:?}", serve.boot_lines);
    let resumed = &serve.boot_lines[0];
    assert!(
        resumed.starts_with(&format!("resumed {}: recovered=", pending[0])),
        "{resumed}"
    );
    let recovered: u64 = resumed.rsplit('=').next().unwrap().parse().unwrap();
    assert!(
        recovered > 0,
        "journal replay must recover items: {resumed}"
    );

    // The resumed run is live: a warm submission of the same spec is
    // pure cache hits.
    let out = client::submit(&serve.target(), &spec, "after", true, None).unwrap();
    assert_eq!(out.status, 200);
    let (_, tail) = split_stream(&out.lines);
    assert_eq!(summary_count(&tail, "hits"), 4);
    assert_eq!(summary_count(&tail, "executed"), 0);

    serve.terminate();
    assert_fsck_clean(&dir, "store");

    let _ = std::fs::remove_dir_all(dir);
}
