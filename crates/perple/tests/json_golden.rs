//! Golden pins for `campaign ls --json` and `campaign show --json`.
//!
//! Both modes promise byte-stable output (jsonout renders compactly in
//! insertion order), so downstream tooling may diff or hash the documents.
//! The store here is built through the library with a fixed `RunMeta`, so
//! every byte except the run's wall-clock timing fields is deterministic;
//! those two fields are normalized to fixed values before comparison.

use perple::campaign::engine::{
    run_campaign_with, CampaignItem, DurabilityPolicy, ExecOutcome, RunMeta, StageWallMs,
};
use perple::campaign::spec::CampaignSpec;
use perple::campaign::store::OutcomeRecord;
use perple::campaign::{ArtifactCache, Hasher, RunStore, StoreIo};
use perple::jsonout::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const GOLDEN_LS: &str = concat!(
    r#"{"schema":1,"runs":[{"id":"golden-0001","name":"golden","created_unix_ms":1700000000000,"#,
    r#""counts":{"items":2,"hits":0,"executed":2,"lost":0,"quarantined":0,"violations":0,"#,
    r#""recovered":0}}],"cache":{"results":2,"convs":0}}"#,
    "\n"
);

// `<fp0>`/`<fp1>` are the items' computed fingerprints; `<zeros>` is a
// 32-bucket all-zero histogram (the stub executor records no samples).
// Everything else — including the obs counter roster and the engine's
// deterministic store IO tallies — is pinned literally.
const GOLDEN_SHOW: &str = concat!(
    r#"{"schema":1,"manifest":{"schema":1,"id":"golden-0001","name":"golden","#,
    r#""created_unix_ms":1700000000000,"git":"golden","spec":"name = golden\ntests = \n"#,
    r#"seeds = 1\niterations = 1000\nworkers = 0\nretries = 0\ntimeout_ms = 0\n"#,
    r#"frame_cap = 1000000\n","counts":{"items":2,"hits":0,"executed":2,"lost":0,"#,
    r#""quarantined":0,"violations":0,"recovered":0},"wall_ms":0,"stage_wall_ms":{},"#,
    r#""metrics":{"counters":{"sim_store_buffer_flushes":0,"sim_preemptions":0,"#,
    r#""sim_micro_preemptions":0,"sim_stalls":0,"sim_scheduler_cycles":0,"#,
    r#""sim_fault_injections":0,"sim_runs":0,"count_frames_examined":0,"#,
    r#""count_frames_skipped_seek":0,"count_partner_hits":0,"count_partner_misses":0,"#,
    r#""count_budget_expiries":0,"count_rf_edges_walked":0,"count_rf_closure_steps":0,"#,
    r#""count_rf_fallbacks":0,"exec_retries":0,"exec_quarantines":0,"#,
    r#""exec_budget_expiries":0,"store_io_boundaries":14,"store_journal_appends":2,"#,
    r#""store_fsyncs":2,"store_torn_frames":0,"store_recovered_items":0,"#,
    r#""store_transient_retries":0,"store_cache_write_drops":0,"#,
    r#""store_cache_quarantines":0,"serve_submissions":0,"serve_rejections":0,"#,
    r#""serve_jobs_done":0,"serve_items_streamed":0},"hists":{"#,
    r#""sim_run_cycles":<zeros>,"count_frames_per_call":<zeros>,"#,
    r#""exec_attempt_micros":<zeros>,"serve_item_micros":<zeros>,"#,
    r#""serve_job_micros":<zeros>}}},"items":[{"test":"sb","seed":1,"#,
    r#""fingerprint":"<fp0>","forbidden":false,"heuristic":7,"exhaustive":7,"#,
    r#""degraded":false,"iterations":100,"run_complete":true,"faults":0,"digest":6,"#,
    r#""quarantined":false,"fault_kind":null},{"test":"mp","seed":2,"#,
    r#""fingerprint":"<fp1>","forbidden":false,"heuristic":7,"exhaustive":7,"#,
    r#""degraded":false,"iterations":100,"run_complete":true,"faults":0,"digest":5,"#,
    r#""quarantined":false,"fault_kind":null}]}"#,
    "\n"
);

fn perple(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perple"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn perple")
}

fn sandbox(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("perple-json-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn item(test: &str, seed: u64) -> CampaignItem {
    let mut h = Hasher::new();
    h.field("test", test).field_u64("seed", seed);
    CampaignItem {
        test: test.to_owned(),
        seed,
        fingerprint: h.finish(),
    }
}

fn outcome(it: &CampaignItem) -> ExecOutcome {
    ExecOutcome {
        record: OutcomeRecord {
            test: it.test.clone(),
            seed: it.seed,
            fingerprint: it.fingerprint.hex(),
            forbidden: false,
            heuristic: 7,
            exhaustive: 7,
            degraded: false,
            iterations: 100,
            run_complete: true,
            faults: 0,
            digest: it.seed ^ 7,
            quarantined: false,
            fault_kind: None,
        },
        cacheable: true,
        wall: StageWallMs::default(),
    }
}

/// Builds a store whose single run has fully deterministic content.
fn build_golden_store(root: &Path) -> Vec<CampaignItem> {
    let io = StoreIo::unplanned();
    let store = RunStore::open_with(root.to_path_buf(), io.clone()).unwrap();
    let cache = ArtifactCache::open_with(root, io).unwrap();
    let spec = CampaignSpec::named("golden");
    let items = vec![item("sb", 1), item("mp", 2)];
    let meta = RunMeta {
        created_unix_ms: 1_700_000_000_000,
        git: "golden".to_owned(),
        lint: None,
    };
    run_campaign_with(
        &store,
        &cache,
        &spec,
        &items,
        &meta,
        DurabilityPolicy::default(),
        |batch| batch.iter().map(|i| Some(outcome(i))).collect(),
    )
    .unwrap();
    items
}

/// Zeroes the run's two wall-clock fields; everything else must already
/// be byte-deterministic.
fn normalize_timing(doc: Json) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| match k.as_str() {
                    "wall_ms" => (k, Json::from(0u64)),
                    "stage_wall_ms" => (k, Json::Obj(Vec::new())),
                    _ => (k, normalize_timing(v)),
                })
                .collect(),
        ),
        Json::Arr(xs) => Json::Arr(xs.into_iter().map(normalize_timing).collect()),
        other => other,
    }
}

#[test]
fn ls_and_show_json_are_pinned_byte_for_byte() {
    let dir = sandbox("pin");
    let items = build_golden_store(&dir.join("store"));

    // ls --json: no timing fields — raw bytes must equal the golden.
    let ls = perple(&dir, &["campaign", "ls", "--store", "store", "--json"]);
    assert!(ls.status.success());
    let ls_out = String::from_utf8(ls.stdout).unwrap();
    assert_eq!(ls_out, GOLDEN_LS, "ls --json drifted from golden");

    // Byte-stable across invocations.
    let again = perple(&dir, &["campaign", "ls", "--store", "store", "--json"]);
    assert_eq!(String::from_utf8(again.stdout).unwrap(), ls_out);

    // show --json: normalize the two wall-clock fields, then pin. The
    // expected fingerprints are computed, not guessed — the pin covers
    // the envelope and every record field around them.
    let show = perple(
        &dir,
        &["campaign", "show", "latest", "--store", "store", "--json"],
    );
    assert!(show.status.success());
    let show_out = String::from_utf8(show.stdout).unwrap();
    let normalized = format!(
        "{}\n",
        normalize_timing(perple::jsonout::parse(show_out.trim()).unwrap()).render()
    );
    let zeros = format!("[{}]", vec!["0"; 32].join(","));
    let expected = GOLDEN_SHOW
        .replace("<zeros>", &zeros)
        .replace("<fp0>", &items[0].fingerprint.hex())
        .replace("<fp1>", &items[1].fingerprint.hex());
    assert_eq!(normalized, expected, "show --json drifted from golden");

    // And byte-stable across invocations, timing aside.
    let again = perple(
        &dir,
        &["campaign", "show", "latest", "--store", "store", "--json"],
    );
    let again_out = String::from_utf8(again.stdout).unwrap();
    assert_eq!(
        format!(
            "{}\n",
            normalize_timing(perple::jsonout::parse(again_out.trim()).unwrap()).render()
        ),
        expected
    );

    let _ = std::fs::remove_dir_all(dir);
}
