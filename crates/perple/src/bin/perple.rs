//! `perple` — command-line front end to the Perpetual Litmus Engine.
//!
//! ```text
//! perple classify <test-name | file.litmus>   SC/TSO/PSO classification
//! perple convert  <test-name | file.litmus>   emit perpetual asm + counters
//! perple run      <test-name> [-n N] [--seed S] [--weak] [--workers W]
//!                 [--timeout-ms T] [--inject PLAN] [--counter C] [--trace FILE]
//! perple audit    [-n N] [--workers W] [--timeout-ms T] [--retries R]
//!                 [--inject PLAN] [--counter C] [--json]
//!                                             whole-suite consistency audit
//! perple trace    <test-name> [-n N]          event log of a short run
//! perple infer    [-n N] [--weak]             infer the machine's relaxations
//! perple list                                 list the built-in suite
//! perple lint [--json] [--deny warnings] [--iterations N] [--value-bits B]
//!             <test-name | file.litmus>...    static analysis of litmus tests
//! perple campaign run <spec-file> [--store DIR] [--allow-lints] [--counter C]
//!                 [--crash PLAN]
//! perple campaign resume [run-id] [--store DIR]
//! perple campaign fsck [--store DIR] [--repair] [--json]
//! perple campaign ls [--store DIR] [--json]
//! perple campaign show <run|latest> [--store DIR] [--json]
//! perple campaign compare <base> <new> [--store DIR] [--json]
//! perple serve [--addr HOST:PORT | --socket PATH] [--workers N]
//!              [--store DIR] [--queue N] [--quota N]
//! perple client <submit <spec-file> [--client NAME] [--no-wait]
//!               | status <job-id> | stats | metrics>
//!               [--addr HOST:PORT | --socket PATH]
//! ```
//!
//! Every campaign subcommand (and `serve`) reads the store root from
//! `--store DIR`, falling back to the `PERPLE_STORE` environment
//! variable, then `results/store`.
//!
//! `--timeout-ms` arms a per-stage watchdog (run and count stages each get
//! their own budget; expiry yields a partial, flagged result). `--retries`
//! re-runs failed audit tests with deterministically perturbed seeds.
//! `--inject` takes a machine fault plan, e.g.
//! `drop@t0:100..200:p0.5,stuck@*:0..50:c30` (see `FaultPlan::parse`).
//! `--counter` picks the counting backend: `heuristic` (linear, one frame
//! per iteration), `exhaustive` (all `N^{T_L}` frames), or `rf` (exact
//! polynomial reads-from closure — the default everywhere the exact count
//! matters: `audit` and campaigns).
//! `--trace FILE` records a hierarchical span trace of the pipeline
//! (convert → simulate → count) as Chrome `trace_event` JSON — load it at
//! `chrome://tracing` or <https://ui.perfetto.dev> — and prints a flame
//! summary plus the run's metric counters on exit.

use std::process::ExitCode;

use perple::experiments::resilient::{audit_json, render_audit_text, resilient_audit};
use perple::experiments::ExperimentConfig;
use perple::{
    classify, enumerate, Conversion, CounterKind, FaultPlan, MemoryModel, Perple, PerpleRunner,
    SimConfig,
};
use perple_model::{parser, suite, LitmusTest};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("list") => cmd_list(),
        Some("lint") => cmd_lint(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        _ => {
            eprintln!(
                "usage: perple <classify|convert|run|audit|list> [args]\n\
                 \n\
                 classify <test|file>        classification under SC/TSO/PSO\n\
                 convert  <test|file>        emit perpetual artifacts\n\
                 run      <test> [-n N] [--seed S] [--weak] [--workers W]\n\
                 \x20                [--timeout-ms T] [--inject PLAN] [--counter C]\n\
                 \x20                [--trace FILE]\n\
                 audit    [-n N] [--workers W] [--timeout-ms T] [--retries R]\n\
                 \x20                [--inject PLAN] [--counter C] [--json]\n\
                 \x20                            run the Table II suite\n\
                 trace    <test> [-n N]      event log of a short run\n\
                 infer    [-n N] [--weak]    infer the machine's relaxations\n\
                 list                        list built-in tests\n\
                 lint     [--json] [--deny warnings] <test|file>...\n\
                 \x20                            static analysis (exit 1 on errors)\n\
                 campaign run <spec> [--store DIR] [--allow-lints] [--counter C]\n\
                 \x20                                          run a campaign spec\n\
                 campaign resume [run-id] [--store DIR]     finish an interrupted run\n\
                 campaign fsck [--store DIR] [--repair]     check/repair the store\n\
                 campaign ls [--store DIR] [--json]         list stored runs\n\
                 campaign show <run|latest> [--json]        inspect one run\n\
                 campaign compare <base> <new> [--json]     regression gate (exit 1)\n\
                 serve  [--addr H:P | --socket PATH] [--workers N] [--store DIR]\n\
                 \x20                            campaign submission server (JSONL streams)\n\
                 client <submit <spec>|status <id>|stats|metrics>\n\
                 \x20                            talk to a running perple serve\n\
                 \n\
                 --timeout-ms T   per-stage watchdog budget (partial results flagged)\n\
                 --retries R      retry failed audit tests with perturbed seeds\n\
                 --inject PLAN    machine fault plan, e.g. drop@t0:100..200:p0.5\n\
                 --counter C      counting backend: exhaustive, heuristic, or rf\n\
                 --trace FILE     write a Chrome trace_event JSON span trace"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a test by suite name or from a litmus7-format file.
fn load_test(spec: &str) -> Result<LitmusTest, String> {
    if let Some(t) = suite::by_name(spec) {
        return Ok(t);
    }
    let src = std::fs::read_to_string(spec)
        .map_err(|e| format!("{spec} is neither a suite test nor a readable file: {e}"))?;
    parser::parse(&src).map_err(|e| e.to_string())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("classify needs a test name or file")?;
    let test = load_test(spec)?;
    println!("{test}");
    let c = classify(&test);
    let pso = enumerate(&test, MemoryModel::Pso).condition_reachable(&test);
    println!("condition reachable under SC:  {}", c.sc_allowed);
    println!("condition reachable under TSO: {}", c.tso_allowed);
    println!("condition reachable under PSO: {pso}");
    if c.is_target() {
        println!("=> a target outcome: distinguishes TSO from SC (store buffering)");
    }
    println!(
        "convertible to a perpetual test: {}",
        perple_convert::is_convertible(&test)
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("convert needs a test name or file")?;
    let test = load_test(spec)?;
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    for (t, asm) in perple_convert::codegen::emit_thread_asm(&conv.perpetual)
        .iter()
        .enumerate()
    {
        println!("==== thread {t} ====\n{asm}");
    }
    println!(
        "==== params ====\n{}",
        perple_convert::codegen::emit_params(&conv.perpetual)
    );
    println!(
        "==== COUNT.c ====\n{}",
        perple_convert::codegen::emit_count_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_exhaustive)
        )
    );
    println!(
        "==== COUNTH.c ====\n{}",
        perple_convert::codegen::emit_counth_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_heuristic)
        )
    );
    Ok(())
}

/// Flags shared by the run-style subcommands.
struct RunFlags {
    n: u64,
    seed: u64,
    weak: bool,
    /// Counter worker threads (`--workers N`, default: available
    /// parallelism). Counts are identical at every setting.
    workers: usize,
    /// Per-stage watchdog budget (`--timeout-ms T`); `None` = unlimited.
    timeout_ms: Option<u64>,
    /// Retries for failed audit tests (`--retries R`).
    retries: u32,
    /// Machine fault-injection plan (`--inject PLAN`).
    inject: Option<FaultPlan>,
    /// Counter backend (`--counter {exhaustive,heuristic,rf}`); `None`
    /// keeps each subcommand's default (heuristic for `run`, rf for
    /// `audit`).
    counter: Option<CounterKind>,
    /// Emit JSON instead of the text report (`--json`, audit only).
    json: bool,
    /// Write a Chrome `trace_event` span trace here (`--trace FILE`).
    trace: Option<String>,
}

impl RunFlags {
    /// The experiment configuration these flags describe, validated
    /// through [`ExperimentConfig::builder`].
    fn experiment_config(&self) -> Result<ExperimentConfig, String> {
        let mut builder = ExperimentConfig::builder()
            .iterations(self.n)
            .seed(self.seed)
            .workers(self.workers)
            .timeout_ms(self.timeout_ms)
            .retries(self.retries)
            .fault_plan(self.inject.clone().unwrap_or_else(FaultPlan::none))
            .weak_machine(self.weak);
        if let Some(counter) = self.counter {
            builder = builder.counter(counter);
        }
        builder.build().map_err(|e| e.to_string())
    }
}

fn parse_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        n: 10_000,
        seed: 0xCAFE,
        weak: false,
        workers: perple::default_workers(),
        timeout_ms: None,
        retries: 0,
        inject: None,
        counter: None,
        json: false,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" | "--iterations" => {
                flags.n = it
                    .next()
                    .ok_or("missing value for -n")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--seed" | "-s" => {
                flags.seed = it
                    .next()
                    .ok_or("missing value for --seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--workers" | "-w" => {
                flags.workers = it
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if flags.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("missing value for --timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad timeout: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                flags.timeout_ms = Some(ms);
            }
            "--retries" => {
                flags.retries = it
                    .next()
                    .ok_or("missing value for --retries")?
                    .parse()
                    .map_err(|e| format!("bad retry count: {e}"))?;
            }
            "--inject" => {
                let plan = it.next().ok_or("missing value for --inject")?;
                flags.inject = Some(perple::parse_fault_plan(plan).map_err(|e| e.to_string())?);
            }
            "--counter" => {
                let name = it.next().ok_or("missing value for --counter")?;
                flags.counter = Some(CounterKind::parse(name).ok_or_else(|| {
                    format!("bad counter {name:?} (expected exhaustive, heuristic, or rf)")
                })?);
            }
            "--json" => flags.json = true,
            "--weak" => flags.weak = true,
            "--trace" => {
                flags.trace = Some(it.next().ok_or("missing value for --trace")?.to_owned());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("run needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    if flags.trace.is_some() {
        perple::obs::trace::start();
    }
    let metrics_before = perple::obs::metrics::snapshot();
    let cfg = flags.experiment_config()?;
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    let mut runner = PerpleRunner::new(cfg.sim_config(flags.seed));
    let run = runner.run_budgeted(&conv.perpetual, flags.n, &cfg.stage_budget());
    let n = run.iterations;
    // The budgeted scan runs serially; --workers keeps the sharded scan
    // when no watchdog is armed (counts are identical either way).
    let budget = cfg.timeout_ms.map(|_| cfg.stage_budget());
    let bufs = run.bufs();
    let mut req = perple::CountRequest::new(&bufs, n).with_workers(flags.workers);
    if let Some(b) = budget.as_ref() {
        req = req.with_budget(b);
    }
    let kind = flags.counter.unwrap_or(CounterKind::Heuristic);
    let count = {
        use perple::Counter as _;
        match kind {
            CounterKind::Heuristic => {
                perple::HeuristicCounter::single(&conv.target_heuristic).count(&req)
            }
            CounterKind::Exhaustive => perple::ExhaustiveCounter::single(&conv.target_exhaustive)
                .count(&req.with_frame_cap(cfg.exhaustive_frame_cap)),
            CounterKind::Rf => perple::RfCounter::single(&conv.target_exhaustive)
                .count(&req.with_frame_cap(cfg.exhaustive_frame_cap)),
        }
    };
    if let Some(path) = &flags.trace {
        let trace = perple::obs::trace::finish();
        std::fs::write(path, trace.chrome_json())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        print!("{}", trace.flame_summary());
        print!(
            "{}",
            perple::obs::metrics::snapshot()
                .delta_from(&metrics_before)
                .render_text()
        );
        println!("trace written to {path}");
    }
    println!(
        "{}: {} iterations in {} simulated cycles{}{}",
        test.name(),
        n,
        run.exec_cycles,
        if flags.weak {
            " (weak-store-order machine)"
        } else {
            ""
        },
        if run.complete {
            ""
        } else {
            " [truncated by --timeout-ms]"
        },
    );
    if run.faults > 0 {
        println!("machine faults injected: {}", run.faults);
    }
    println!(
        "target outcome occurrences ({} counter): {}",
        kind.name(),
        count.counts[0]
    );
    if count.downgraded {
        println!("(outcome outside the rf fragment; exhaustive fallback counted it)");
    }
    if count.budget_expired {
        println!(
            "(counting truncated by --timeout-ms: {} frames examined)",
            count.frames_examined
        );
    }
    let c = classify(&test);
    if !c.tso_allowed && count.counts[0] > 0 {
        println!("!! TSO-forbidden target observed: the machine violates x86-TSO");
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut cfg = flags.experiment_config()?;
    // T_L = 3 suite tests scan N^3 frames exhaustively; cap the scan so the
    // CLI audit stays interactive (rows degrade to heuristic counts only on
    // --timeout-ms expiry, the cap just truncates).
    cfg.exhaustive_frame_cap = Some(1_000_000);
    let report = resilient_audit(&cfg);
    let mut violations = 0;
    for (row, test) in report.results.iter().zip(suite::convertible()) {
        if let Some(r) = row {
            if !classify(&test).tso_allowed && r.heuristic > 0 {
                violations += 1;
            }
        }
    }
    if flags.json {
        println!("{}", audit_json(&report));
    } else {
        print!("{}", render_audit_text(&report));
        println!(
            "{violations} consistency violations; {} tests quarantined",
            report.quarantined().len()
        );
    }
    if violations > 0 {
        return Err("the machine under test violates x86-TSO".into());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("trace needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    let n = flags.n.min(50); // event logs of long runs are unreadable
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    let specs = perple_harness::perpetual::thread_specs(&conv.perpetual, n);
    let mut machine = perple_sim::Machine::new(
        SimConfig::default()
            .with_seed(flags.seed)
            .with_weak_store_order(flags.weak),
    );
    let mut trace = perple_sim::Trace::with_capacity(10_000);
    let out = machine.run_traced(&specs, test.location_count(), &mut trace);
    print!("{}", trace.render());
    println!("-- {} cycles, {} drains --", out.cycles, out.drains);
    Ok(())
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let config = SimConfig::default()
        .with_seed(flags.seed)
        .with_weak_store_order(flags.weak);
    let mut observations = Vec::new();
    for r in perple::modelmine::Relaxation::ALL {
        let name = r.revealing_test();
        let test = suite::by_name(name).ok_or("suite test missing")?;
        let mut engine = Perple::with_config(&test, config.clone()).map_err(|e| e.to_string())?;
        engine.set_workers(flags.workers);
        let (_, count) = engine.run_heuristic_only(flags.n);
        observations.push((name, count.counts[0]));
    }
    let model = perple::modelmine::InferredModel::from_observations(
        observations.iter().map(|&(n, c)| (n, c)),
    );
    print!("{}", model.render());
    Ok(())
}

/// Flags shared by the campaign subcommands.
struct CampaignFlags {
    store: std::path::PathBuf,
    json: bool,
    trace: Option<String>,
    allow_lints: bool,
    /// `--counter C`: overrides the spec's `counter =` line for this run.
    counter: Option<String>,
    /// `--crash PLAN`: a store-write crash-injection plan (`abort@K`,
    /// `transient@K[:N]`, comma-separated) — the CLI face of the crash
    /// matrix.
    crash: Option<perple::campaign::CrashPlan>,
    /// `--repair`: let `campaign fsck` apply its safe repairs.
    repair: bool,
    rest: Vec<String>,
}

/// Splits `--store DIR` (default `results/store`), `--json`,
/// `--trace FILE`, `--allow-lints`, `--counter C`, `--crash PLAN` and
/// `--repair` out of a campaign subcommand's arguments, returning the
/// positional rest.
fn campaign_flags(args: &[String]) -> Result<CampaignFlags, String> {
    let mut flags = CampaignFlags {
        store: perple::campaign::RunStore::default_root(),
        json: false,
        trace: None,
        allow_lints: false,
        counter: None,
        crash: None,
        repair: false,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                flags.store = it.next().ok_or("missing value for --store")?.into();
            }
            "--json" => flags.json = true,
            "--trace" => {
                flags.trace = Some(it.next().ok_or("missing value for --trace")?.to_owned());
            }
            "--allow-lints" => flags.allow_lints = true,
            "--counter" => {
                let name = it.next().ok_or("missing value for --counter")?;
                if CounterKind::parse(name).is_none() {
                    return Err(format!(
                        "bad counter {name:?} (expected exhaustive, heuristic, or rf)"
                    ));
                }
                flags.counter = Some(name.to_owned());
            }
            "--crash" => {
                let plan = it.next().ok_or("missing value for --crash")?;
                flags.crash = Some(
                    perple::campaign::CrashPlan::parse(plan)
                        .map_err(|e| format!("bad --crash plan: {e}"))?,
                );
            }
            "--repair" => flags.repair = true,
            other => flags.rest.push(other.to_owned()),
        }
    }
    Ok(flags)
}

/// `perple lint`: runs the static analyzer over suite tests and/or litmus
/// files. Exits nonzero when the batch gates (any error, or any warning
/// under `--deny warnings`).
fn cmd_lint(args: &[String]) -> Result<(), String> {
    use perple::lint::{lint_source, lint_test, LintConfig, LintReport};
    let mut cfg = LintConfig::default();
    let mut json = false;
    let mut deny_warnings = false;
    let mut specs = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--deny" => {
                let what = it.next().ok_or("missing value for --deny")?;
                if what != "warnings" {
                    return Err(format!("--deny takes 'warnings', got {what:?}"));
                }
                deny_warnings = true;
            }
            "--iterations" => {
                cfg.iterations = it
                    .next()
                    .ok_or("missing value for --iterations")?
                    .parse()
                    .map_err(|e| format!("bad --iterations: {e}"))?;
            }
            "--value-bits" => {
                cfg.value_bits = it
                    .next()
                    .ok_or("missing value for --value-bits")?
                    .parse()
                    .map_err(|e| format!("bad --value-bits: {e}"))?;
            }
            other => specs.push(other.to_owned()),
        }
    }
    if specs.is_empty() {
        return Err("lint needs at least one test name or .litmus file".into());
    }
    let mut tests = Vec::with_capacity(specs.len());
    for spec in &specs {
        if let Some(t) = suite::by_name(spec) {
            tests.push(lint_test(&t, &cfg));
        } else {
            let src = std::fs::read_to_string(spec)
                .map_err(|e| format!("{spec} is neither a suite test nor a readable file: {e}"))?;
            let mut report = lint_source(&src, &cfg).map_err(|e| format!("{spec}: {e}"))?;
            report.origin = Some(spec.clone());
            tests.push(report);
        }
    }
    let report = LintReport::new(cfg, tests);
    if json {
        println!("{}", report.to_json().render());
    } else {
        print!("{}", report.render_text());
    }
    if report.gates(deny_warnings) {
        return Err("lint findings at gating severity (see report above)".into());
    }
    Ok(())
}

/// Prints one campaign run summary (shared by `run` and `resume`).
fn print_summary(summary: &perple::campaign::RunSummary) {
    println!("run: {}", summary.id);
    println!("hits: {}/{}", summary.hits, summary.items);
    println!(
        "executed: {}, lost: {}, quarantined: {}, violations: {}",
        summary.executed, summary.lost, summary.quarantined, summary.violations
    );
    if summary.recovered > 0 {
        println!("recovered: {} (journal replay)", summary.recovered);
    }
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: perple campaign <run|resume|fsck|ls|show|compare> [args] [--store DIR] [--json]";
    let sub = args.first().map(String::as_str).ok_or(usage)?;
    let CampaignFlags {
        store: store_root,
        json,
        trace: trace_path,
        allow_lints,
        counter,
        crash,
        repair,
        rest,
    } = campaign_flags(&args[1..])?;
    // Store-root mistakes (a file where the directory should be, an
    // unreadable directory) are configuration errors, caught before any
    // subcommand touches the store.
    perple::validate_store_root(&store_root).map_err(|e| e.to_string())?;
    match sub {
        "run" => {
            let path = rest.first().ok_or("campaign run needs a spec file")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec {path}: {e}"))?;
            let mut spec =
                perple::campaign::CampaignSpec::parse(&text).map_err(|e| e.to_string())?;
            if counter.is_some() {
                spec.counter = counter;
            }
            if trace_path.is_some() {
                perple::obs::trace::start();
            }
            let io = perple::campaign::StoreIo::new(crash.unwrap_or_default());
            let summary = perple::experiments::campaign::run_spec_with_io(
                &spec,
                &store_root,
                allow_lints,
                io,
            )?;
            if let Some(out) = &trace_path {
                let trace = perple::obs::trace::finish();
                std::fs::write(out, trace.chrome_json())
                    .map_err(|e| format!("cannot write trace {out}: {e}"))?;
                print!("{}", trace.flame_summary());
                println!("trace written to {out}");
            }
            print_summary(&summary);
            if summary.violations > 0 {
                return Err("the machine under test violates x86-TSO".into());
            }
            Ok(())
        }
        "resume" => {
            let store = perple::campaign::RunStore::open(&store_root).map_err(|e| e.to_string())?;
            let id = match rest.first() {
                Some(id) => id.clone(),
                None => {
                    // No id: resume the single interrupted run, if exactly
                    // one exists.
                    let pending = store.pending_runs();
                    match pending.as_slice() {
                        [one] => one.clone(),
                        [] => return Err("no interrupted runs to resume".into()),
                        many => {
                            return Err(format!(
                                "multiple interrupted runs ({}) — name one",
                                many.join(", ")
                            ));
                        }
                    }
                }
            };
            let summary = perple::experiments::campaign::resume_spec(&store_root, &id)?;
            print_summary(&summary);
            if summary.violations > 0 {
                return Err("the machine under test violates x86-TSO".into());
            }
            Ok(())
        }
        "fsck" => {
            let store = perple::campaign::RunStore::open(&store_root).map_err(|e| e.to_string())?;
            let cache =
                perple::campaign::ArtifactCache::open(&store_root).map_err(|e| e.to_string())?;
            let report =
                perple::campaign::fsck(&store, &cache, repair).map_err(|e| e.to_string())?;
            if json {
                println!("{}", report.to_json().render());
            } else {
                print!("{}", report.render_text());
            }
            if !report.is_healthy() {
                return Err(format!(
                    "{} unrepaired finding(s){}",
                    report.findings.iter().filter(|f| !f.repaired).count(),
                    if repair {
                        ""
                    } else {
                        " (pass --repair to fix)"
                    }
                ));
            }
            Ok(())
        }
        "ls" => {
            let store = perple::campaign::RunStore::open(&store_root).map_err(|e| e.to_string())?;
            let runs = store.list().map_err(|e| e.to_string())?;
            if json {
                use perple::jsonout::Json;
                let cache = perple::campaign::ArtifactCache::open(&store_root)
                    .map_err(|e| e.to_string())?;
                let (results, convs) = cache.stats();
                let body = Json::obj(vec![
                    ("schema", Json::from(1u64)),
                    ("runs", Json::Arr(runs)),
                    (
                        "cache",
                        Json::obj(vec![
                            ("results", Json::from(results)),
                            ("convs", Json::from(convs)),
                        ]),
                    ),
                ]);
                println!("{}", body.render());
                return Ok(());
            }
            if runs.is_empty() {
                println!("(no stored runs under {})", store_root.display());
                return Ok(());
            }
            for line in &runs {
                use perple::jsonout::Json;
                let count = |k: &str| {
                    line.get("counts")
                        .and_then(|c| c.get(k))
                        .and_then(Json::as_u64)
                };
                println!(
                    "{:<20} items={:<4} hits={:<4} violations={}",
                    line.get("id").and_then(Json::as_str).unwrap_or("?"),
                    count("items").unwrap_or(0),
                    count("hits").unwrap_or(0),
                    count("violations").unwrap_or(0),
                );
            }
            let cache =
                perple::campaign::ArtifactCache::open(&store_root).map_err(|e| e.to_string())?;
            let (results, convs) = cache.stats();
            println!("cache: {results} result entries, {convs} conversion artifacts");
            Ok(())
        }
        "show" => {
            let reference = rest.first().map(String::as_str).unwrap_or("latest");
            let store = perple::campaign::RunStore::open(&store_root).map_err(|e| e.to_string())?;
            let id = store.resolve(reference).map_err(|e| e.to_string())?;
            let manifest = store.load_manifest(&id).map_err(|e| e.to_string())?;
            let items = store.load_items(&id).map_err(|e| e.to_string())?;
            if json {
                use perple::jsonout::Json;
                let body = Json::obj(vec![
                    ("schema", Json::from(1u64)),
                    ("manifest", manifest),
                    (
                        "items",
                        Json::Arr(items.iter().map(|r| r.to_json()).collect()),
                    ),
                ]);
                println!("{}", body.render());
                return Ok(());
            }
            println!("{id}");
            use perple::jsonout::Json;
            if let Some(git) = manifest.get("git").and_then(Json::as_str) {
                println!("git: {git}");
            }
            if let Some(Json::Obj(pairs)) = manifest.get("metrics").and_then(|m| m.get("counters"))
            {
                let nonzero: Vec<String> = pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().filter(|&v| v > 0).map(|v| format!("{k}={v}")))
                    .collect();
                if !nonzero.is_empty() {
                    println!("metrics: {}", nonzero.join(" "));
                }
            }
            println!(
                "{:<14} {:>6} {:>10} {:>12} {:>7}  flags",
                "test#seed", "forb", "heuristic", "exhaustive", "faults"
            );
            for r in &items {
                let mut flags = Vec::new();
                if r.degraded {
                    flags.push("degraded");
                }
                if !r.run_complete {
                    flags.push("partial-run");
                }
                if r.quarantined {
                    flags.push("quarantined");
                }
                println!(
                    "{:<14} {:>6} {:>10} {:>12} {:>7}  {}",
                    format!("{}#{}", r.test, r.seed),
                    if r.forbidden { "yes" } else { "no" },
                    r.heuristic,
                    r.exhaustive,
                    r.faults,
                    if flags.is_empty() {
                        "-".to_owned()
                    } else {
                        flags.join(",")
                    },
                );
            }
            Ok(())
        }
        "compare" => {
            let (base, new) = match rest.as_slice() {
                [b, n] => (b.clone(), n.clone()),
                _ => return Err("campaign compare needs <base> <new> run references".into()),
            };
            let store = perple::campaign::RunStore::open(&store_root).map_err(|e| e.to_string())?;
            let report = perple::campaign::compare_runs(
                &store,
                &base,
                &new,
                &perple::campaign::CompareConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            if json {
                println!("{}", report.to_json().render());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_regression() {
                return Err(format!(
                    "{} regression(s) between {} and {}",
                    report.regressions.len(),
                    report.base_id,
                    report.new_id
                ));
            }
            Ok(())
        }
        other => Err(format!("unknown campaign subcommand {other:?}\n{usage}")),
    }
}

/// Default TCP address for `serve` and `client` when neither `--addr`
/// nor `--socket` is given.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7878";

/// `perple serve`: the long-lived campaign submission server. Accepts
/// specs over TCP or a Unix socket, streams outcome records back as
/// chunked JSONL, and shares one store/cache across every job. SIGTERM
/// (or SIGINT) drains gracefully: admitted jobs finish or journal, the
/// store is left fsck-clean.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use perple::serve::server::{Bind, Server, ServerConfig};
    let mut addr: Option<String> = None;
    let mut socket: Option<std::path::PathBuf> = None;
    let mut workers = perple::default_workers();
    let mut store = perple::campaign::RunStore::default_root();
    let mut queue = 64usize;
    let mut quota = 8usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().ok_or("missing value for --addr")?.to_owned()),
            "--socket" => socket = Some(it.next().ok_or("missing value for --socket")?.into()),
            "--workers" | "-w" => {
                workers = it
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--store" => store = it.next().ok_or("missing value for --store")?.into(),
            "--queue" => {
                queue = it
                    .next()
                    .ok_or("missing value for --queue")?
                    .parse()
                    .map_err(|e| format!("bad queue capacity: {e}"))?;
            }
            "--quota" => {
                quota = it
                    .next()
                    .ok_or("missing value for --quota")?
                    .parse()
                    .map_err(|e| format!("bad per-client quota: {e}"))?;
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    if addr.is_some() && socket.is_some() {
        return Err("--addr and --socket are mutually exclusive".into());
    }
    perple::validate_store_root(&store).map_err(|e| e.to_string())?;
    let bind = match socket {
        Some(path) => Bind::Unix(path),
        None => Bind::Tcp(addr.unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_owned())),
    };
    perple::serve::signal::install();
    let mut config = ServerConfig::new(bind, workers, store);
    config.queue_capacity = queue;
    config.per_client_quota = quota;
    let server = Server::bind(config, std::sync::Arc::new(perple::CampaignRunner))
        .map_err(|e| e.to_string())?;
    // Boot-time auto-resume: interrupted runs left by a SIGKILL'd
    // predecessor finish (journal replay first) before we accept work.
    server
        .resume_pending(|id, summary| {
            use perple::jsonout::Json;
            let recovered = perple::jsonout::parse(summary)
                .ok()
                .and_then(|v| v.get("recovered").and_then(Json::as_u64))
                .unwrap_or(0);
            println!("resumed {id}: recovered={recovered}");
        })
        .map_err(|e| e.to_string())?;
    println!("listening on {}", server.local_addr());
    // Subprocess drivers (tests, CI) read that line to find the port.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve().map_err(|e| e.to_string())?;
    println!("drained cleanly");
    Ok(())
}

/// `perple client`: submit to / query a running `perple serve` without
/// curl. `submit` streams record lines to stdout as they arrive.
fn cmd_client(args: &[String]) -> Result<(), String> {
    use perple::serve::client::{self, Target};
    let usage = "usage: perple client <submit <spec-file> [--client NAME] [--no-wait]\n\
                 \x20       | status <job-id> | stats | metrics>\n\
                 \x20       [--addr HOST:PORT | --socket PATH]";
    let sub = args.first().map(String::as_str).ok_or(usage)?;
    let mut addr: Option<String> = None;
    let mut socket: Option<std::path::PathBuf> = None;
    let mut client_name = "cli".to_owned();
    let mut wait = true;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().ok_or("missing value for --addr")?.to_owned()),
            "--socket" => socket = Some(it.next().ok_or("missing value for --socket")?.into()),
            "--client" => client_name = it.next().ok_or("missing value for --client")?.to_owned(),
            "--no-wait" => wait = false,
            other => rest.push(other.to_owned()),
        }
    }
    if addr.is_some() && socket.is_some() {
        return Err("--addr and --socket are mutually exclusive".into());
    }
    let target = match socket {
        Some(path) => Target::Unix(path),
        None => Target::Tcp(addr.unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_owned())),
    };
    let print_stream = |line: &str| {
        println!("{line}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    };
    let out = match sub {
        "submit" => {
            let path = rest.first().ok_or("client submit needs a spec file")?;
            let spec = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec {path}: {e}"))?;
            let mut on_line = print_stream;
            client::submit(&target, &spec, &client_name, wait, Some(&mut on_line))
                .map_err(|e| e.to_string())?
        }
        "status" => {
            let id = rest.first().ok_or("client status needs a job id")?;
            let out = client::get(&target, &format!("/jobs/{id}")).map_err(|e| e.to_string())?;
            out.lines.iter().for_each(|l| print_stream(l));
            out
        }
        "stats" => {
            let out = client::get(&target, "/stats").map_err(|e| e.to_string())?;
            out.lines.iter().for_each(|l| print_stream(l));
            out
        }
        "metrics" => {
            let out = client::get(&target, "/metrics").map_err(|e| e.to_string())?;
            out.lines.iter().for_each(|l| print_stream(l));
            out
        }
        other => return Err(format!("unknown client subcommand {other:?}\n{usage}")),
    };
    if out.status >= 400 {
        let retry = out
            .retry_after
            .map(|s| format!(" (retry after {s}s)"))
            .unwrap_or_default();
        return Err(format!("server answered {}{retry}", out.status));
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for (test, entry) in suite::convertible().iter().zip(suite::TABLE_II) {
        println!(
            "{:<16} [{},{}] target {} under x86-TSO",
            test.name(),
            entry.threads,
            entry.load_threads,
            if entry.allowed {
                "allowed"
            } else {
                "forbidden"
            }
        );
    }
    println!(
        "-- plus {} non-convertible tests (run `perple classify <name>`)",
        suite::non_convertible().len()
    );
    Ok(())
}
