//! `perple` — command-line front end to the Perpetual Litmus Engine.
//!
//! ```text
//! perple classify <test-name | file.litmus>   SC/TSO/PSO classification
//! perple convert  <test-name | file.litmus>   emit perpetual asm + counters
//! perple run      <test-name> [-n N] [--seed S] [--weak] [--workers W]
//!                 [--timeout-ms T] [--inject PLAN]
//! perple audit    [-n N] [--workers W] [--timeout-ms T] [--retries R]
//!                 [--inject PLAN] [--json]    whole-suite consistency audit
//! perple trace    <test-name> [-n N]          event log of a short run
//! perple infer    [-n N] [--weak]             infer the machine's relaxations
//! perple list                                 list the built-in suite
//! ```
//!
//! `--timeout-ms` arms a per-stage watchdog (run and count stages each get
//! their own budget; expiry yields a partial, flagged result). `--retries`
//! re-runs failed audit tests with deterministically perturbed seeds.
//! `--inject` takes a machine fault plan, e.g.
//! `drop@t0:100..200:p0.5,stuck@*:0..50:c30` (see `FaultPlan::parse`).

use std::process::ExitCode;

use perple::experiments::resilient::{audit_json, render_audit_text, resilient_audit};
use perple::experiments::ExperimentConfig;
use perple::{
    classify, enumerate, Conversion, FaultPlan, MemoryModel, Perple, PerpleRunner, SimConfig,
};
use perple_model::{parser, suite, LitmusTest};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: perple <classify|convert|run|audit|list> [args]\n\
                 \n\
                 classify <test|file>        classification under SC/TSO/PSO\n\
                 convert  <test|file>        emit perpetual artifacts\n\
                 run      <test> [-n N] [--seed S] [--weak] [--workers W]\n\
                 \x20                [--timeout-ms T] [--inject PLAN]\n\
                 audit    [-n N] [--workers W] [--timeout-ms T] [--retries R]\n\
                 \x20                [--inject PLAN] [--json]  run the Table II suite\n\
                 trace    <test> [-n N]      event log of a short run\n\
                 infer    [-n N] [--weak]    infer the machine's relaxations\n\
                 list                        list built-in tests\n\
                 \n\
                 --timeout-ms T   per-stage watchdog budget (partial results flagged)\n\
                 --retries R      retry failed audit tests with perturbed seeds\n\
                 --inject PLAN    machine fault plan, e.g. drop@t0:100..200:p0.5"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a test by suite name or from a litmus7-format file.
fn load_test(spec: &str) -> Result<LitmusTest, String> {
    if let Some(t) = suite::by_name(spec) {
        return Ok(t);
    }
    let src = std::fs::read_to_string(spec)
        .map_err(|e| format!("{spec} is neither a suite test nor a readable file: {e}"))?;
    parser::parse(&src).map_err(|e| e.to_string())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("classify needs a test name or file")?;
    let test = load_test(spec)?;
    println!("{test}");
    let c = classify(&test);
    let pso = enumerate(&test, MemoryModel::Pso).condition_reachable(&test);
    println!("condition reachable under SC:  {}", c.sc_allowed);
    println!("condition reachable under TSO: {}", c.tso_allowed);
    println!("condition reachable under PSO: {pso}");
    if c.is_target() {
        println!("=> a target outcome: distinguishes TSO from SC (store buffering)");
    }
    println!(
        "convertible to a perpetual test: {}",
        perple_convert::is_convertible(&test)
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("convert needs a test name or file")?;
    let test = load_test(spec)?;
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    for (t, asm) in perple_convert::codegen::emit_thread_asm(&conv.perpetual)
        .iter()
        .enumerate()
    {
        println!("==== thread {t} ====\n{asm}");
    }
    println!("==== params ====\n{}", perple_convert::codegen::emit_params(&conv.perpetual));
    println!(
        "==== COUNT.c ====\n{}",
        perple_convert::codegen::emit_count_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_exhaustive)
        )
    );
    println!(
        "==== COUNTH.c ====\n{}",
        perple_convert::codegen::emit_counth_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_heuristic)
        )
    );
    Ok(())
}

/// Flags shared by the run-style subcommands.
struct RunFlags {
    n: u64,
    seed: u64,
    weak: bool,
    /// Counter worker threads (`--workers N`, default: available
    /// parallelism). Counts are identical at every setting.
    workers: usize,
    /// Per-stage watchdog budget (`--timeout-ms T`); `None` = unlimited.
    timeout_ms: Option<u64>,
    /// Retries for failed audit tests (`--retries R`).
    retries: u32,
    /// Machine fault-injection plan (`--inject PLAN`).
    inject: Option<FaultPlan>,
    /// Emit JSON instead of the text report (`--json`, audit only).
    json: bool,
}

impl RunFlags {
    /// The experiment configuration these flags describe.
    fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig::default()
            .with_iterations(self.n)
            .with_seed(self.seed)
            .with_workers(self.workers)
            .with_timeout_ms(self.timeout_ms)
            .with_retries(self.retries)
            .with_fault_plan(self.inject.clone().unwrap_or_else(FaultPlan::none))
            .with_weak_machine(self.weak)
    }
}

fn parse_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        n: 10_000,
        seed: 0xCAFE,
        weak: false,
        workers: perple::default_workers(),
        timeout_ms: None,
        retries: 0,
        inject: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" | "--iterations" => {
                flags.n = it
                    .next()
                    .ok_or("missing value for -n")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--seed" | "-s" => {
                flags.seed = it
                    .next()
                    .ok_or("missing value for --seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--workers" | "-w" => {
                flags.workers = it
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if flags.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("missing value for --timeout-ms")?
                    .parse()
                    .map_err(|e| format!("bad timeout: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                flags.timeout_ms = Some(ms);
            }
            "--retries" => {
                flags.retries = it
                    .next()
                    .ok_or("missing value for --retries")?
                    .parse()
                    .map_err(|e| format!("bad retry count: {e}"))?;
            }
            "--inject" => {
                let plan = it.next().ok_or("missing value for --inject")?;
                flags.inject =
                    Some(FaultPlan::parse(plan).map_err(|e| format!("bad --inject plan: {e}"))?);
            }
            "--json" => flags.json = true,
            "--weak" => flags.weak = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("run needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    let cfg = flags.experiment_config();
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    let mut runner = PerpleRunner::new(cfg.sim_config(flags.seed));
    let run = runner.run_budgeted(&conv.perpetual, flags.n, &cfg.stage_budget());
    let n = run.iterations;
    // The budgeted counter runs serially; --workers keeps the parallel
    // counter when no watchdog is armed (counts are identical either way).
    let count = if cfg.timeout_ms.is_some() {
        perple::count_heuristic_budgeted(
            std::slice::from_ref(&conv.target_heuristic),
            &run.bufs(),
            n,
            &cfg.stage_budget(),
        )
    } else {
        perple::count_heuristic_parallel(
            std::slice::from_ref(&conv.target_heuristic),
            &run.bufs(),
            n,
            flags.workers,
        )
    };
    println!(
        "{}: {} iterations in {} simulated cycles{}{}",
        test.name(),
        n,
        run.exec_cycles,
        if flags.weak { " (weak-store-order machine)" } else { "" },
        if run.complete { "" } else { " [truncated by --timeout-ms]" },
    );
    if run.faults > 0 {
        println!("machine faults injected: {}", run.faults);
    }
    println!("target outcome occurrences (heuristic counter): {}", count.counts[0]);
    if count.budget_expired {
        println!(
            "(counting truncated by --timeout-ms: {} of {} frames examined)",
            count.frames_examined, n
        );
    }
    let c = classify(&test);
    if !c.tso_allowed && count.counts[0] > 0 {
        println!("!! TSO-forbidden target observed: the machine violates x86-TSO");
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut cfg = flags.experiment_config();
    // T_L = 3 suite tests scan N^3 frames exhaustively; cap the scan so the
    // CLI audit stays interactive (rows degrade to heuristic counts only on
    // --timeout-ms expiry, the cap just truncates).
    cfg.exhaustive_frame_cap = Some(1_000_000);
    let report = resilient_audit(&cfg);
    let mut violations = 0;
    for (row, test) in report.results.iter().zip(suite::convertible()) {
        if let Some(r) = row {
            if !classify(&test).tso_allowed && r.heuristic > 0 {
                violations += 1;
            }
        }
    }
    if flags.json {
        println!("{}", audit_json(&report));
    } else {
        print!("{}", render_audit_text(&report));
        println!(
            "{violations} consistency violations; {} tests quarantined",
            report.quarantined().len()
        );
    }
    if violations > 0 {
        return Err("the machine under test violates x86-TSO".into());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("trace needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    let n = flags.n.min(50); // event logs of long runs are unreadable
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    let specs = perple_harness::perpetual::thread_specs(&conv.perpetual, n);
    let mut machine = perple_sim::Machine::new(
        SimConfig::default()
            .with_seed(flags.seed)
            .with_weak_store_order(flags.weak),
    );
    let mut trace = perple_sim::Trace::with_capacity(10_000);
    let out = machine.run_traced(&specs, test.location_count(), &mut trace);
    print!("{}", trace.render());
    println!("-- {} cycles, {} drains --", out.cycles, out.drains);
    Ok(())
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let config = SimConfig::default()
        .with_seed(flags.seed)
        .with_weak_store_order(flags.weak);
    let mut observations = Vec::new();
    for r in perple::modelmine::Relaxation::ALL {
        let name = r.revealing_test();
        let test = suite::by_name(name).ok_or("suite test missing")?;
        let mut engine =
            Perple::with_config(&test, config.clone()).map_err(|e| e.to_string())?;
        engine.set_workers(flags.workers);
        let (_, count) = engine.run_heuristic_only(flags.n);
        observations.push((name, count.counts[0]));
    }
    let model = perple::modelmine::InferredModel::from_observations(
        observations.iter().map(|&(n, c)| (n, c)),
    );
    print!("{}", model.render());
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for (test, entry) in suite::convertible().iter().zip(suite::TABLE_II) {
        println!(
            "{:<16} [{},{}] target {} under x86-TSO",
            test.name(),
            entry.threads,
            entry.load_threads,
            if entry.allowed { "allowed" } else { "forbidden" }
        );
    }
    println!("-- plus {} non-convertible tests (run `perple classify <name>`)",
        suite::non_convertible().len());
    Ok(())
}
