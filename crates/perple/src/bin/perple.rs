//! `perple` — command-line front end to the Perpetual Litmus Engine.
//!
//! ```text
//! perple classify <test-name | file.litmus>   SC/TSO/PSO classification
//! perple convert  <test-name | file.litmus>   emit perpetual asm + counters
//! perple run      <test-name> [-n N] [--seed S] [--weak] [--workers W]
//! perple audit    [-n N] [--workers W]        whole-suite consistency audit
//! perple trace    <test-name> [-n N]          event log of a short run
//! perple infer    [-n N] [--weak]             infer the machine's relaxations
//! perple list                                 list the built-in suite
//! ```

use std::process::ExitCode;

use perple::{classify, enumerate, Conversion, MemoryModel, Perple, SimConfig};
use perple_model::{parser, suite, LitmusTest};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("classify") => cmd_classify(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("infer") => cmd_infer(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: perple <classify|convert|run|audit|list> [args]\n\
                 \n\
                 classify <test|file>        classification under SC/TSO/PSO\n\
                 convert  <test|file>        emit perpetual artifacts\n\
                 run      <test> [-n N] [--seed S] [--weak] [--workers W]\n\
                 audit    [-n N] [--workers W]  run the Table II suite\n\
                 trace    <test> [-n N]      event log of a short run\n\
                 infer    [-n N] [--weak]    infer the machine's relaxations\n\
                 list                        list built-in tests"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a test by suite name or from a litmus7-format file.
fn load_test(spec: &str) -> Result<LitmusTest, String> {
    if let Some(t) = suite::by_name(spec) {
        return Ok(t);
    }
    let src = std::fs::read_to_string(spec)
        .map_err(|e| format!("{spec} is neither a suite test nor a readable file: {e}"))?;
    parser::parse(&src).map_err(|e| e.to_string())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("classify needs a test name or file")?;
    let test = load_test(spec)?;
    println!("{test}");
    let c = classify(&test);
    let pso = enumerate(&test, MemoryModel::Pso).condition_reachable(&test);
    println!("condition reachable under SC:  {}", c.sc_allowed);
    println!("condition reachable under TSO: {}", c.tso_allowed);
    println!("condition reachable under PSO: {pso}");
    if c.is_target() {
        println!("=> a target outcome: distinguishes TSO from SC (store buffering)");
    }
    println!(
        "convertible to a perpetual test: {}",
        perple_convert::is_convertible(&test)
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("convert needs a test name or file")?;
    let test = load_test(spec)?;
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    for (t, asm) in perple_convert::codegen::emit_thread_asm(&conv.perpetual)
        .iter()
        .enumerate()
    {
        println!("==== thread {t} ====\n{asm}");
    }
    println!("==== params ====\n{}", perple_convert::codegen::emit_params(&conv.perpetual));
    println!(
        "==== COUNT.c ====\n{}",
        perple_convert::codegen::emit_count_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_exhaustive)
        )
    );
    println!(
        "==== COUNTH.c ====\n{}",
        perple_convert::codegen::emit_counth_c(
            &conv.perpetual,
            std::slice::from_ref(&conv.target_heuristic)
        )
    );
    Ok(())
}

/// Flags shared by the run-style subcommands.
struct RunFlags {
    n: u64,
    seed: u64,
    weak: bool,
    /// Counter worker threads (`--workers N`, default: available
    /// parallelism). Counts are identical at every setting.
    workers: usize,
}

fn parse_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        n: 10_000,
        seed: 0xCAFE,
        weak: false,
        workers: perple::default_workers(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" | "--iterations" => {
                flags.n = it
                    .next()
                    .ok_or("missing value for -n")?
                    .parse()
                    .map_err(|e| format!("bad iteration count: {e}"))?;
            }
            "--seed" | "-s" => {
                flags.seed = it
                    .next()
                    .ok_or("missing value for --seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--workers" | "-w" => {
                flags.workers = it
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if flags.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--weak" => flags.weak = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("run needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    let (n, weak) = (flags.n, flags.weak);
    let config = SimConfig::default()
        .with_seed(flags.seed)
        .with_weak_store_order(weak);
    let mut engine = Perple::with_config(&test, config).map_err(|e| e.to_string())?;
    engine.set_workers(flags.workers);
    let (run, count) = engine.run_heuristic_only(n);
    println!(
        "{}: {} iterations in {} simulated cycles{}",
        test.name(),
        n,
        run.exec_cycles,
        if weak { " (weak-store-order machine)" } else { "" }
    );
    println!("target outcome occurrences (heuristic counter): {}", count.counts[0]);
    let c = classify(&test);
    if !c.tso_allowed && count.counts[0] > 0 {
        println!("!! TSO-forbidden target observed: the machine violates x86-TSO");
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let n = flags.n;
    let config = SimConfig::default()
        .with_seed(flags.seed)
        .with_weak_store_order(flags.weak);
    let mut violations = 0;
    for test in suite::convertible() {
        let mut engine =
            Perple::with_config(&test, config.clone()).map_err(|e| e.to_string())?;
        engine.set_workers(flags.workers);
        let (_, count) = engine.run_heuristic_only(n);
        let c = classify(&test);
        let status = match (c.tso_allowed, count.counts[0] > 0) {
            (false, true) => {
                violations += 1;
                "VIOLATION"
            }
            (false, false) => "clean",
            (true, true) => "observed",
            (true, false) => "quiet",
        };
        println!("{:<16} {:>10} {:>12}", test.name(), count.counts[0], status);
    }
    println!("{violations} consistency violations");
    if violations > 0 {
        return Err("the machine under test violates x86-TSO".into());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("trace needs a test name or file")?;
    let test = load_test(spec)?;
    let flags = parse_flags(&args[1..])?;
    let n = flags.n.min(50); // event logs of long runs are unreadable
    let conv = Conversion::convert(&test).map_err(|e| e.to_string())?;
    let specs = perple_harness::perpetual::thread_specs(&conv.perpetual, n);
    let mut machine = perple_sim::Machine::new(
        SimConfig::default()
            .with_seed(flags.seed)
            .with_weak_store_order(flags.weak),
    );
    let mut trace = perple_sim::Trace::with_capacity(10_000);
    let out = machine.run_traced(&specs, test.location_count(), &mut trace);
    print!("{}", trace.render());
    println!("-- {} cycles, {} drains --", out.cycles, out.drains);
    Ok(())
}

fn cmd_infer(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let config = SimConfig::default()
        .with_seed(flags.seed)
        .with_weak_store_order(flags.weak);
    let mut observations = Vec::new();
    for r in perple::modelmine::Relaxation::ALL {
        let name = r.revealing_test();
        let test = suite::by_name(name).ok_or("suite test missing")?;
        let mut engine =
            Perple::with_config(&test, config.clone()).map_err(|e| e.to_string())?;
        engine.set_workers(flags.workers);
        let (_, count) = engine.run_heuristic_only(flags.n);
        observations.push((name, count.counts[0]));
    }
    let model = perple::modelmine::InferredModel::from_observations(
        observations.iter().map(|&(n, c)| (n, c)),
    );
    print!("{}", model.render());
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    for (test, entry) in suite::convertible().iter().zip(suite::TABLE_II) {
        println!(
            "{:<16} [{},{}] target {} under x86-TSO",
            test.name(),
            entry.threads,
            entry.load_threads,
            if entry.allowed { "allowed" } else { "forbidden" }
        );
    }
    println!("-- plus {} non-convertible tests (run `perple classify <name>`)",
        suite::non_convertible().len());
    Ok(())
}
