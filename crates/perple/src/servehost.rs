//! Host glue for `perple serve`: implements [`perple_serve::SpecRunner`]
//! on top of this crate's campaign pipeline, so the server's worker pool
//! drives real conversions, simulations, and counters through the shared
//! content-addressed cache and journaled run store.
//!
//! Record lines handed to the server are exactly
//! `OutcomeRecord::to_json().render()` — the same byte-stable encoding
//! `items.json` stores — so a streamed job and the equivalent batch
//! `perple campaign run` produce identical record bytes. Summaries are
//! rendered here too, in a fixed key order the server's metrics
//! aggregator parses.

use std::path::Path;

use perple_analysis::jsonout::Json;
use perple_campaign::{CampaignSpec, RunStore, RunSummary, StoreIo};
use perple_serve::SpecRunner;

use crate::error::PerpleError;
use crate::experiments::campaign::{resume_spec_observed, run_spec_observed};

/// Renders a run summary in the fixed key order the serve layer (and
/// the CLI's JSON mode) rely on. Byte-stable: integers only, insertion
/// order.
pub fn summary_json(s: &RunSummary) -> Json {
    Json::obj(vec![
        ("run", Json::from(s.id.as_str())),
        ("items", Json::from(s.items)),
        ("hits", Json::from(s.hits)),
        ("executed", Json::from(s.executed)),
        ("lost", Json::from(s.lost)),
        ("quarantined", Json::from(s.quarantined)),
        ("violations", Json::from(s.violations)),
        ("recovered", Json::from(s.recovered)),
    ])
}

/// Validates a store root before handing it to the campaign layer: a
/// path that exists but is not a directory, or a directory we cannot
/// read, is a configuration mistake — [`PerpleError::Config`], not a
/// storage failure.
///
/// A missing path is fine (the store creates it on first write).
///
/// # Errors
/// [`PerpleError::Config`] as described.
pub fn validate_store_root(root: &Path) -> Result<(), PerpleError> {
    if !root.exists() {
        return Ok(());
    }
    if !root.is_dir() {
        return Err(PerpleError::Config(format!(
            "store root {} exists but is not a directory",
            root.display()
        )));
    }
    std::fs::read_dir(root).map_err(|e| {
        PerpleError::Config(format!("store root {} is unreadable: {e}", root.display()))
    })?;
    Ok(())
}

/// The production [`SpecRunner`]: campaign specs run on the resilient
/// suite pool with the lint gate in front (submissions carrying
/// error-severity lints are rejected like `campaign run` without
/// `--allow-lints` — a server must not be talked into work the CLI would
/// refuse).
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignRunner;

impl SpecRunner for CampaignRunner {
    fn run(
        &self,
        spec_text: &str,
        store_root: &Path,
        on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String> {
        validate_store_root(store_root).map_err(|e| e.to_string())?;
        let spec = CampaignSpec::parse(spec_text).map_err(|e| e.to_string())?;
        let summary = run_spec_observed(
            &spec,
            store_root,
            false,
            StoreIo::unplanned(),
            |slot, record| on_record(slot, record.map(|r| r.to_json().render())),
        )?;
        Ok(summary_json(&summary).render())
    }

    fn resume(
        &self,
        store_root: &Path,
        id: &str,
        on_record: &mut dyn FnMut(usize, Option<String>),
    ) -> Result<String, String> {
        validate_store_root(store_root).map_err(|e| e.to_string())?;
        let summary = resume_spec_observed(store_root, id, |slot, record| {
            on_record(slot, record.map(|r| r.to_json().render()))
        })?;
        Ok(summary_json(&summary).render())
    }

    fn pending(&self, store_root: &Path) -> Result<Vec<String>, String> {
        validate_store_root(store_root).map_err(|e| e.to_string())?;
        if !store_root.exists() {
            return Ok(Vec::new());
        }
        let store = RunStore::open(store_root).map_err(|e| e.to_string())?;
        // A crashed predecessor leaves more than pending markers: stray
        // cache temp files, torn journal tails, damaged index lines. A
        // repairing fsck first means the server boots from — and later
        // drains to — a store `campaign fsck` calls clean.
        let cache = perple_campaign::ArtifactCache::open(store_root).map_err(|e| e.to_string())?;
        perple_campaign::fsck(&store, &cache, true).map_err(|e| e.to_string())?;
        Ok(store.pending_runs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perple-servehost-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_root_validation_classifies_config_mistakes() {
        let dir = tmp("validate");
        // Missing is fine (created on first write).
        assert!(validate_store_root(&dir).is_ok());
        // A file where the directory should be is a Config error.
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("not-a-dir");
        fs::write(&file, "x").unwrap();
        let err = validate_store_root(&file).unwrap_err();
        assert!(matches!(err, PerpleError::Config(_)), "{err}");
        assert!(err.to_string().contains("not a directory"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_streams_records_matching_the_stored_run() {
        let dir = tmp("stream");
        let spec = "name = hosted\ntests = sb, mp\nseeds = 1, 2\niterations = 150\nworkers = 2\n";
        let mut lines = Vec::new();
        let runner = CampaignRunner;
        let summary = runner
            .run(spec, &dir, &mut |slot, rec| lines.push((slot, rec)))
            .unwrap();
        // Every slot observed exactly once, every record present.
        let mut slots: Vec<usize> = lines.iter().map(|(s, _)| *s).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
        assert!(lines.iter().all(|(_, r)| r.is_some()));
        // Summary parses and reports a cold run.
        let v = perple_analysis::jsonout::parse(&summary).unwrap();
        assert_eq!(v.get("items").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("hits").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("executed").and_then(Json::as_u64), Some(4));
        // Streamed record bytes equal the stored items.json records.
        let id = v.get("run").and_then(Json::as_str).unwrap();
        let store = RunStore::open(&dir).unwrap();
        let stored: Vec<String> = store
            .load_items(id)
            .unwrap()
            .iter()
            .map(|r| r.to_json().render())
            .collect();
        let mut streamed: Vec<(usize, String)> =
            lines.into_iter().map(|(s, r)| (s, r.unwrap())).collect();
        streamed.sort_by_key(|(s, _)| *s);
        let streamed: Vec<String> = streamed.into_iter().map(|(_, r)| r).collect();
        assert_eq!(streamed, stored);
        // A second submission of the same spec is pure cache hits.
        let again = runner.run(spec, &dir, &mut |_, _| {}).unwrap();
        let v = perple_analysis::jsonout::parse(&again).unwrap();
        assert_eq!(v.get("hits").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("executed").and_then(Json::as_u64), Some(0));
        assert!(runner.pending(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_rejects_bad_specs_and_bad_roots() {
        let dir = tmp("reject");
        let runner = CampaignRunner;
        assert!(runner
            .run("tests = no-such-test\n", &dir, &mut |_, _| {})
            .is_err());
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain-file");
        fs::write(&file, "x").unwrap();
        let err = runner
            .run("tests = sb\n", &file, &mut |_, _| {})
            .unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
