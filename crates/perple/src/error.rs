//! The structured error taxonomy of the experiment layer.
//!
//! Fault-injected or misbehaving suite items surface here instead of
//! crashing the suite: worker panics are caught per item
//! (`std::panic::catch_unwind`), watchdog expiries are flagged by the
//! budgeted stages, and both are converted into a [`PerpleError`] the
//! resilient executor can retry, quarantine, and report.

use std::fmt;

use perple_campaign::{CampaignError, StorageKind};
use perple_convert::ConvertError;

/// Why one suite item (one test's experiment task) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerpleError {
    /// The item's worker panicked; the payload message is captured.
    WorkerPanic {
        /// Rendered panic payload (`&str`/`String` payloads verbatim,
        /// otherwise a placeholder).
        message: String,
    },
    /// A stage's watchdog budget expired and no usable partial result
    /// remained (e.g. the run stage produced zero whole iterations).
    StageTimeout {
        /// Which stage overran: `"run"`, `"count"`, …
        stage: &'static str,
    },
    /// The test is not convertible to a perpetual test (§V-C).
    Convert(ConvertError),
    /// Invalid experiment configuration (bad CLI flag values and such).
    Config(String),
    /// Classified campaign-store damage or storage-level failure
    /// ([`StorageKind`] is the closed taxonomy `campaign fsck` reports
    /// findings under).
    Storage {
        /// The damage class.
        kind: StorageKind,
        /// What and where.
        message: String,
    },
}

impl PerpleError {
    /// Short machine-readable kind tag (used in quarantine reports).
    pub fn kind(&self) -> &'static str {
        match self {
            PerpleError::WorkerPanic { .. } => "panic",
            PerpleError::StageTimeout { .. } => "timeout",
            PerpleError::Convert(_) => "convert",
            PerpleError::Config(_) => "config",
            PerpleError::Storage { .. } => "storage",
        }
    }

    /// True for errors that a retry may resolve: panics and timeouts
    /// (perturbed-seed retry), and transient storage failures (bounded
    /// backoff). Conversion and configuration errors are deterministic in
    /// the input; non-transient storage damage needs `fsck`, not a retry.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            PerpleError::WorkerPanic { .. }
                | PerpleError::StageTimeout { .. }
                | PerpleError::Storage {
                    kind: StorageKind::Transient,
                    ..
                }
        )
    }
}

impl fmt::Display for PerpleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerpleError::WorkerPanic { message } => write!(f, "worker panicked: {message}"),
            PerpleError::StageTimeout { stage } => {
                write!(f, "stage {stage:?} exceeded its watchdog budget")
            }
            PerpleError::Convert(e) => write!(f, "conversion failed: {e}"),
            PerpleError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PerpleError::Storage { kind, message } => {
                write!(f, "storage failure ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for PerpleError {}

impl From<ConvertError> for PerpleError {
    fn from(e: ConvertError) -> Self {
        PerpleError::Convert(e)
    }
}

impl From<perple_sim::ConfigError> for PerpleError {
    fn from(e: perple_sim::ConfigError) -> Self {
        PerpleError::Config(e.to_string())
    }
}

impl From<CampaignError> for PerpleError {
    fn from(e: CampaignError) -> Self {
        match e {
            CampaignError::Storage { kind, message } => PerpleError::Storage { kind, message },
            CampaignError::Io(m) => PerpleError::Storage {
                kind: StorageKind::Io,
                message: m,
            },
            CampaignError::Corrupt(m) => PerpleError::Storage {
                kind: StorageKind::ChecksumMismatch,
                message: m,
            },
            CampaignError::NotFound(m) => PerpleError::Storage {
                kind: StorageKind::Io,
                message: format!("not found: {m}"),
            },
            CampaignError::Parse(m) => PerpleError::Config(m),
        }
    }
}

/// Parses a `--inject` fault-plan spec, classifying malformed grammar as
/// [`PerpleError::Config`] — the one entry point every CLI and campaign
/// path shares, so bad plans never panic and never produce ad-hoc errors.
///
/// # Errors
/// [`PerpleError::Config`] quoting the offending spec and the grammar
/// diagnostic.
pub fn parse_fault_plan(spec: &str) -> Result<perple_sim::FaultPlan, PerpleError> {
    perple_sim::FaultPlan::parse(spec)
        .map_err(|e| PerpleError::Config(format!("bad fault plan {spec:?}: {e}")))
}

/// Renders a `catch_unwind` payload: `&str` and `String` payloads (what
/// `panic!` produces) verbatim, anything else as a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = PerpleError::WorkerPanic {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.kind(), "panic");
        let e = PerpleError::StageTimeout { stage: "run" };
        assert!(e.to_string().contains("run"));
        assert_eq!(e.kind(), "timeout");
        let e = PerpleError::Config("bad flag".into());
        assert!(e.to_string().contains("bad flag"));
    }

    #[test]
    fn convert_errors_wrap() {
        let e: PerpleError = ConvertError::MemoryCondition.into();
        assert_eq!(e.kind(), "convert");
        assert!(!e.retryable());
    }

    #[test]
    fn sim_config_errors_wrap_as_config() {
        let sim_err = perple_sim::ConfigError {
            field: "drain_prob",
            message: "must be in (0, 1]".into(),
        };
        let e: PerpleError = sim_err.into();
        assert_eq!(e.kind(), "config");
        assert!(e.to_string().contains("drain_prob"));
        assert!(!e.retryable());
    }

    #[test]
    fn only_transient_failures_are_retryable() {
        assert!(PerpleError::WorkerPanic {
            message: String::new()
        }
        .retryable());
        assert!(PerpleError::StageTimeout { stage: "count" }.retryable());
        assert!(!PerpleError::Config(String::new()).retryable());
        assert!(PerpleError::Storage {
            kind: StorageKind::Transient,
            message: String::new()
        }
        .retryable());
        assert!(!PerpleError::Storage {
            kind: StorageKind::TornWrite,
            message: String::new()
        }
        .retryable());
    }

    #[test]
    fn campaign_errors_map_into_the_storage_taxonomy() {
        let e: PerpleError = CampaignError::storage(StorageKind::TornWrite, "frame 3").into();
        assert_eq!(e.kind(), "storage");
        assert!(e.to_string().contains("torn-write"), "{e}");
        let e: PerpleError = CampaignError::Io("disk".into()).into();
        assert!(matches!(
            e,
            PerpleError::Storage {
                kind: StorageKind::Io,
                ..
            }
        ));
        let e: PerpleError = CampaignError::Corrupt("bad manifest".into()).into();
        assert!(matches!(
            e,
            PerpleError::Storage {
                kind: StorageKind::ChecksumMismatch,
                ..
            }
        ));
        let e: PerpleError = CampaignError::Parse("key".into()).into();
        assert_eq!(e.kind(), "config");
    }

    #[test]
    fn panic_payloads_render() {
        let p = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(&*p), "static str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(&*p), "formatted 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(&*p), "<non-string panic payload>");
    }
}
