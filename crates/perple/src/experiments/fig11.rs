//! Figure 11: relative target-outcome detection-rate improvement over
//! litmus7 `user` mode, across iteration counts.
//!
//! Each bar is the arithmetic mean, over the x86-TSO-**allowed** suite
//! tests, of `rate(tool) / rate(user)`; tests where the baseline detected
//! nothing are conservatively omitted (§VII-C).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use perple_analysis::metrics::relative_improvement;
use perple_analysis::stats::arithmetic_mean;
use perple_harness::baseline::SyncMode;
use perple_model::suite;

use super::{baseline_detection, perple_detection, ExperimentConfig};
use crate::Conversion;

/// Tools compared against the `user` baseline.
pub const TOOLS: [&str; 5] = ["perple-heur", "userfence", "pthread", "timebase", "none"];

/// One iteration count's mean relative improvements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Point {
    /// The sweep's iteration count.
    pub iterations: u64,
    /// Mean relative improvement per tool (`None` when the baseline found
    /// nothing on every test — nothing to compare, as at very low `N`).
    pub improvement: BTreeMap<&'static str, Option<f64>>,
    /// Tests (of the allowed group) where the `user` baseline found
    /// nothing and were omitted from the means.
    pub omitted: usize,
    /// Tests where PerpLE-heuristic found at least one target.
    pub perple_nonzero: usize,
}

/// Runs the Figure 11 sweep for the given iteration counts.
pub fn fig11(iteration_counts: &[u64], base: &ExperimentConfig) -> Vec<Fig11Point> {
    let tests = suite::allowed_targets();
    let convs: Vec<Conversion> = tests
        .iter()
        // Invariant: `allowed_targets()` is a subset of the convertible
        // suite, so conversion cannot fail.
        .map(|t| Conversion::convert(t).expect("allowed test converts"))
        .collect();

    iteration_counts
        .iter()
        .map(|&n| {
            let cfg = base.clone().with_iterations(n);
            let mut per_tool: BTreeMap<&'static str, Vec<f64>> =
                TOOLS.iter().map(|&t| (t, Vec::new())).collect();
            let mut omitted = 0usize;
            let mut perple_nonzero = 0usize;

            for (test, conv) in tests.iter().zip(&convs) {
                let user = baseline_detection(test, SyncMode::User, &cfg);
                let perple = perple_detection(test, conv, &cfg, true);
                if perple.occurrences > 0 {
                    perple_nonzero += 1;
                }
                if user.occurrences == 0 {
                    omitted += 1;
                    continue;
                }
                let mut push = |tool: &'static str, d| {
                    if let Some(r) = relative_improvement(d, user) {
                        // Invariant: every tool key was inserted when
                        // `per_tool` was built above.
                        per_tool.get_mut(tool).expect("tool registered").push(r);
                    }
                };
                push("perple-heur", perple);
                push(
                    "userfence",
                    baseline_detection(test, SyncMode::UserFence, &cfg),
                );
                push("pthread", baseline_detection(test, SyncMode::Pthread, &cfg));
                push(
                    "timebase",
                    baseline_detection(test, SyncMode::Timebase, &cfg),
                );
                push("none", baseline_detection(test, SyncMode::NoSync, &cfg));
            }

            Fig11Point {
                iterations: n,
                improvement: per_tool
                    .into_iter()
                    .map(|(t, v)| (t, arithmetic_mean(&v)))
                    .collect(),
                omitted,
                perple_nonzero,
            }
        })
        .collect()
}

/// Renders the sweep as a table.
pub fn render(points: &[Fig11Point]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 11: mean relative target detection-rate improvement over litmus7 user"
    );
    let _ = write!(s, "{:>12}", "iterations");
    for t in TOOLS {
        let _ = write!(s, " {t:>14}");
    }
    let _ = writeln!(s, " {:>8} {:>14}", "omitted", "perple-nonzero");
    for p in points {
        let _ = write!(s, "{:>12}", p.iterations);
        for t in TOOLS {
            match p.improvement[t] {
                Some(v) => {
                    let _ = write!(s, " {v:>13.1}x");
                }
                None => {
                    let _ = write!(s, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(s, " {:>8} {:>14}", p.omitted, p.perple_nonzero);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perple_improvement_dominates_where_defined() {
        let base = ExperimentConfig::default().with_seed(0xF11);
        let points = fig11(&[100, 2_000], &base);
        assert_eq!(points.len(), 2);

        // At 100 iterations the user baseline finds (nearly) nothing:
        // most allowed tests are omitted, while PerpLE already detects.
        let low = &points[0];
        assert!(low.omitted >= 8, "user should be blind at 100 iters");
        assert!(low.perple_nonzero >= 8, "PerpLE should detect at 100 iters");

        // Where a comparison exists, PerpLE's improvement exceeds every
        // baseline mode's.
        let high = &points[1];
        if let Some(p) = high.improvement["perple-heur"] {
            for tool in ["userfence", "pthread", "none"] {
                if let Some(b) = high.improvement[tool] {
                    assert!(p > b, "perple {p} <= {tool} {b}");
                }
            }
            assert!(p > 1.0);
        }
    }

    #[test]
    fn render_handles_missing_means() {
        let base = ExperimentConfig::default().with_seed(0xF11);
        let points = fig11(&[100], &base);
        let text = render(&points);
        assert!(text.contains("iterations"));
        assert!(text.contains("perple-heur"));
    }
}
