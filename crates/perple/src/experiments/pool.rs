//! Suite-level worker pool: runs per-test experiment closures across a
//! fixed number of threads while keeping results in input order.
//!
//! Experiment drivers iterate suites of 34–88 independent tests; each test
//! derives its own PRNG seed (see `derive_seed`), so per-test computations
//! are pure functions of `(test, config)` and can run concurrently without
//! changing any result. The pool hands out item indices from a shared
//! atomic counter (work stealing — suite tests vary wildly in cost, so
//! static striping would leave workers idle), collects `(index, result)`
//! pairs per worker, and reassembles them in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on up to `workers` scoped threads, returning
/// results in input order. `workers <= 1` (or a single item) degrades to a
/// plain serial loop on the calling thread.
pub fn map_parallel<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("suite pool worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(
        tagged.iter().enumerate().all(|(pos, &(i, _))| pos == i),
        "every input index must appear exactly once"
    );
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1usize, 2, 3, 7, 16] {
            let out = map_parallel(&items, workers, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "workers {workers}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 8, |_, &x| x).is_empty());
        assert_eq!(map_parallel(&[42u32], 8, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn oversubscribed_pool_still_covers_every_item() {
        let items: Vec<usize> = (0..5).collect();
        let out = map_parallel(&items, 64, |_, &x| x);
        assert_eq!(out, items);
    }
}
