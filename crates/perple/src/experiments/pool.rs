//! Suite-level worker pool: runs per-test experiment closures across a
//! fixed number of threads while keeping results in input order.
//!
//! Experiment drivers iterate suites of 34–88 independent tests; each test
//! derives its own PRNG seed (see `derive_seed`), so per-test computations
//! are pure functions of `(test, config)` and can run concurrently without
//! changing any result. The pool hands out item indices from a shared
//! atomic counter (work stealing — suite tests vary wildly in cost, so
//! static striping would leave workers idle), collects `(index, result)`
//! pairs per worker, and reassembles them in input order.
//!
//! **Panic isolation.** Every item runs under `std::panic::catch_unwind`,
//! so one panicking test cannot take down its worker thread (and with it
//! every other item that worker would have processed). [`try_map_parallel`]
//! surfaces per-item panics as [`PerpleError::WorkerPanic`] values;
//! [`map_parallel`] keeps its infallible signature by re-raising the first
//! panic on the calling thread — but only after every other item has
//! finished.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::{panic_message, PerpleError};

/// Applies `f` to every item on up to `workers` scoped threads, returning
/// per-item results in input order; a panicking item yields
/// `Err(PerpleError::WorkerPanic)` without disturbing any other item.
/// `workers <= 1` (or a single item) degrades to a plain serial loop on
/// the calling thread.
pub fn try_map_parallel<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<Result<R, PerpleError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_item = |i: usize, item: &T| -> Result<R, PerpleError> {
        // AssertUnwindSafe: the closure only borrows `f` and `items`
        // immutably, and a panicking item's partial state is discarded
        // with the unwound stack — nothing observable is left behind.
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| PerpleError::WorkerPanic {
            message: panic_message(&*payload),
        })
    };

    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_item(i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Result<R, PerpleError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let run_item = &run_item;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, run_item(i, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // Invariant assertion, not error handling: items cannot
                // unwind workers (each is caught above), so a worker can
                // only die of a harness bug.
                h.join().expect("suite pool worker died outside an item")
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(
        tagged.iter().enumerate().all(|(pos, &(i, _))| pos == i),
        "every input index must appear exactly once"
    );
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every item on up to `workers` scoped threads, returning
/// results in input order.
///
/// A panicking item no longer aborts the suite mid-flight: all other items
/// run to completion first, then the first panic (in input order) is
/// re-raised on the calling thread. Callers that want panics as values use
/// [`try_map_parallel`].
pub fn map_parallel<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_map_parallel(items, workers, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("suite item failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1usize, 2, 3, 7, 16] {
            let out = map_parallel(&items, workers, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(
                out,
                items.iter().map(|x| x * x).collect::<Vec<_>>(),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 8, |_, &x| x).is_empty());
        assert_eq!(map_parallel(&[42u32], 8, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn oversubscribed_pool_still_covers_every_item() {
        let items: Vec<usize> = (0..5).collect();
        let out = map_parallel(&items, 64, |_, &x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn one_panicking_item_does_not_disturb_the_others() {
        let items: Vec<u32> = (0..20).collect();
        for workers in [1usize, 4, 16] {
            let out = try_map_parallel(&items, workers, |_, &x| {
                if x == 13 {
                    panic!("unlucky {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 20);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    let err = r.as_ref().unwrap_err();
                    assert!(matches!(err, PerpleError::WorkerPanic { .. }));
                    assert!(err.to_string().contains("unlucky 13"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 2, "workers {workers}");
                }
            }
        }
    }

    #[test]
    fn every_item_panicking_still_returns_every_slot() {
        let items: Vec<u32> = (0..6).collect();
        let out = try_map_parallel(&items, 3, |_, _| -> u32 { panic!("all down") });
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn infallible_map_reraises_after_completing_other_items() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let completed = AtomicU32::new(0);
        let items: Vec<u32> = (0..10).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            map_parallel(&items, 4, |_, &x| {
                if x == 0 {
                    panic!("first item dies");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(res.is_err(), "the panic must still surface");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            9,
            "all other items completed"
        );
    }
}
