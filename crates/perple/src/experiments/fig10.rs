//! Figure 10: runtime speedups relative to litmus7 `user` mode (runtime =
//! test execution + outcome counting), plus the §VII-B geometric-mean
//! summaries.

use std::fmt::Write as _;

use perple_analysis::metrics::{speedup, ModelTime};
use perple_analysis::stats::geometric_mean;
use perple_harness::baseline::SyncMode;
use perple_model::suite;

use super::{baseline_detection, ExperimentConfig};
use crate::Conversion;

/// One test's runtimes (model cycles) across tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig10Row {
    /// Test name.
    pub name: String,
    /// `T_L` (drives the exhaustive counter's blow-up).
    pub load_threads: usize,
    /// PerpLE runtime with the exhaustive counter.
    pub perple_exhaustive: ModelTime,
    /// PerpLE runtime with the heuristic counter.
    pub perple_heuristic: ModelTime,
    /// litmus7 runtime per mode, in [`SyncMode::ALL`] order.
    pub litmus7: [ModelTime; 5],
}

impl Fig10Row {
    /// Speedup of a tool time over litmus7 `user` (index 0).
    pub fn speedup_over_user(&self, tool: ModelTime) -> f64 {
        speedup(self.litmus7[0], tool).unwrap_or(0.0)
    }
}

/// Geometric-mean summary (the §VII-B headline numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Summary {
    /// Heuristic PerpLE speedup over litmus7 `user` (paper: 8.89x).
    pub heur_over_user: f64,
    /// ... over `timebase` (paper: 17.56x).
    pub heur_over_timebase: f64,
    /// ... over `userfence` (paper: 8.85x).
    pub heur_over_userfence: f64,
    /// ... over `none` (paper: 2.52x).
    pub heur_over_none: f64,
    /// ... over `pthread` (paper: 161.35x).
    pub heur_over_pthread: f64,
    /// Heuristic counter speedup over the exhaustive counter (paper: 305x).
    pub heur_over_exhaustive: f64,
}

/// Regenerates Figure 10's runtimes for the whole convertible suite.
pub fn fig10(cfg: &ExperimentConfig) -> Vec<Fig10Row> {
    suite::convertible()
        .iter()
        .map(|test| {
            let conv = Conversion::convert(test).expect("suite test converts");
            let (ph, px) = {
                let (h, x) = super::perple_detection_both(test, &conv, cfg);
                (h.time, x.time)
            };
            let mut litmus7 = [ModelTime::default(); 5];
            for (i, mode) in SyncMode::ALL.iter().enumerate() {
                litmus7[i] = baseline_detection(test, *mode, cfg).time;
            }
            Fig10Row {
                name: test.name().to_owned(),
                load_threads: test.load_thread_count(),
                perple_exhaustive: px,
                perple_heuristic: ph,
                litmus7,
            }
        })
        .collect()
}

/// Computes the geometric-mean summary over all rows.
pub fn summarize(rows: &[Fig10Row]) -> Fig10Summary {
    let ratios = |f: &dyn Fn(&Fig10Row) -> (ModelTime, ModelTime)| -> f64 {
        let rs: Vec<f64> = rows
            .iter()
            .filter_map(|r| {
                let (base, tool) = f(r);
                speedup(base, tool)
            })
            .collect();
        geometric_mean(&rs).unwrap_or(0.0)
    };
    Fig10Summary {
        heur_over_user: ratios(&|r| (r.litmus7[0], r.perple_heuristic)),
        heur_over_userfence: ratios(&|r| (r.litmus7[1], r.perple_heuristic)),
        heur_over_pthread: ratios(&|r| (r.litmus7[2], r.perple_heuristic)),
        heur_over_timebase: ratios(&|r| (r.litmus7[3], r.perple_heuristic)),
        heur_over_none: ratios(&|r| (r.litmus7[4], r.perple_heuristic)),
        heur_over_exhaustive: ratios(&|r| (r.perple_exhaustive, r.perple_heuristic)),
    }
}

/// Renders the rows plus summary.
pub fn render(rows: &[Fig10Row], cfg: &ExperimentConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 10: speedup over litmus7 user mode ({} iterations; runtime = execution + counting; model cycles)",
        cfg.iterations
    );
    let _ = writeln!(
        s,
        "{:<16} {:>3} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "test", "T_L", "perple-exh", "perple-heur", "userfence", "pthread", "timebase", "none"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>3} {:>12.3} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            r.name,
            r.load_threads,
            r.speedup_over_user(r.perple_exhaustive),
            r.speedup_over_user(r.perple_heuristic),
            r.speedup_over_user(r.litmus7[1]),
            r.speedup_over_user(r.litmus7[2]),
            r.speedup_over_user(r.litmus7[3]),
            r.speedup_over_user(r.litmus7[4]),
        );
    }
    let sum = summarize(rows);
    let _ = writeln!(
        s,
        "geomean speedups of PerpLE-heuristic (paper values in parens):"
    );
    let _ = writeln!(s, "  over user      {:>9.2}x   (8.89x)", sum.heur_over_user);
    let _ = writeln!(
        s,
        "  over userfence {:>9.2}x   (8.85x)",
        sum.heur_over_userfence
    );
    let _ = writeln!(
        s,
        "  over pthread   {:>9.2}x   (161.35x)",
        sum.heur_over_pthread
    );
    let _ = writeln!(
        s,
        "  over timebase  {:>9.2}x   (17.56x)",
        sum.heur_over_timebase
    );
    let _ = writeln!(s, "  over none      {:>9.2}x   (2.52x)", sum.heur_over_none);
    let _ = writeln!(
        s,
        "  over exhaustive{:>9.2}x   (305x)",
        sum.heur_over_exhaustive
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            iterations: 400,
            seed: 0xF10,
            exhaustive_frame_cap: Some(1_000_000),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn heuristic_perple_is_fastest_everywhere() {
        // The paper: "PerpLE heuristic is always fastest" (Figure 10).
        let rows = fig10(&small_cfg());
        for r in &rows {
            let heur = r.perple_heuristic.total();
            assert!(
                heur <= r.perple_exhaustive.total(),
                "{} vs exhaustive",
                r.name
            );
            for (i, t) in r.litmus7.iter().enumerate() {
                assert!(heur <= t.total(), "{}: mode {i}", r.name);
            }
        }
    }

    #[test]
    fn summary_ordering_matches_paper() {
        // pthread is the slowest baseline; none the closest to PerpLE.
        let rows = fig10(&small_cfg());
        let s = summarize(&rows);
        assert!(s.heur_over_pthread > s.heur_over_user);
        assert!(s.heur_over_user > s.heur_over_none);
        assert!(s.heur_over_none > 1.0);
        assert!(s.heur_over_exhaustive > 1.0);
    }

    #[test]
    fn exhaustive_blowup_grows_with_load_threads() {
        let rows = fig10(&small_cfg());
        let tl2 = rows.iter().find(|r| r.name == "sb").unwrap();
        let tl3 = rows.iter().find(|r| r.name == "podwr001").unwrap();
        let ratio2 = tl2.perple_exhaustive.count_cycles as f64
            / tl2.perple_heuristic.count_cycles.max(1) as f64;
        let ratio3 = tl3.perple_exhaustive.count_cycles as f64
            / tl3.perple_heuristic.count_cycles.max(1) as f64;
        assert!(ratio3 > ratio2, "N^3 must out-blow N^2");
    }

    #[test]
    fn render_includes_summary() {
        let rows = fig10(&small_cfg());
        let text = render(&rows, &small_cfg());
        assert!(text.contains("geomean"));
        assert!(text.contains("8.89x"));
    }
}
