//! Figure 12: probability density of the thread-execution skew (in
//! iterations) for the perpetual sb test.

use std::fmt::Write as _;

use perple_analysis::skew::{skew_histogram, skew_samples};
use perple_analysis::stats::Histogram;
use perple_harness::perpetual::PerpleRunner;
use perple_model::suite;
use perple_sim::SimConfig;

use super::ExperimentConfig;
use crate::Conversion;

/// The skew distribution of one perpetual run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig12Data {
    /// Full histogram of skew samples.
    pub histogram: Histogram,
    /// Iterations run.
    pub iterations: u64,
}

/// Runs the perpetual sb test and measures thread skew (other tests behave
/// similarly, as the paper notes).
pub fn fig12(cfg: &ExperimentConfig) -> Fig12Data {
    fig12_for("sb", cfg)
}

/// Same measurement for any convertible test.
///
/// # Panics
/// Panics if the test is unknown or not convertible.
pub fn fig12_for(test_name: &str, cfg: &ExperimentConfig) -> Fig12Data {
    let test = suite::by_name(test_name).expect("known test");
    let conv = Conversion::convert(&test).expect("convertible test");
    let mut runner = PerpleRunner::new(SimConfig::default().with_seed(cfg.seed ^ 0xF12));
    let run = runner.run(&conv.perpetual, cfg.iterations);
    let bufs = run.bufs();
    let samples = skew_samples(&test, &conv.kmap, &bufs);
    Fig12Data {
        histogram: skew_histogram(&samples),
        iterations: cfg.iterations,
    }
}

/// Renders the PDF as a bucketed table plus summary statistics.
pub fn render(data: &Fig12Data) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 12: thread skew PDF, perpetual sb, {} iterations",
        data.iterations
    );
    let h = &data.histogram;
    let width = ((h.max().unwrap_or(1) - h.min().unwrap_or(0)).unsigned_abs() / 40).max(1);
    for (lower, p) in h.pdf_bucketed(width) {
        let bar = "#".repeat((p * 400.0).round() as usize);
        let _ = writeln!(s, "{lower:>8} {p:>9.5} {bar}");
    }
    let _ = writeln!(
        s,
        "samples={} mean={:.2} stddev={:.2} min={} max={} mass(|skew|<=5)={:.3}",
        h.total(),
        h.mean().unwrap_or(0.0),
        h.stddev().unwrap_or(0.0),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.mass_within(5)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_distribution_is_wide_but_centered() {
        // The paper: a very wide distribution, denser around 0.
        let cfg = ExperimentConfig::default()
            .with_iterations(30_000)
            .with_seed(0xF12);
        let d = fig12(&cfg);
        let h = &d.histogram;
        assert!(h.total() > 10_000);
        // Width: preemptions make threads drift by many iterations.
        let spread = h.max().unwrap() - h.min().unwrap();
        assert!(spread >= 20, "skew spread {spread} too narrow");
        // Centered: the bulk of mass lies near zero relative to the range.
        let near = h.mass_within(spread / 4);
        assert!(near > 0.5, "mass near 0 is only {near}");
        // Both signs occur: either thread can run ahead.
        assert!(h.min().unwrap() < 0 && h.max().unwrap() > 0);
    }

    #[test]
    fn other_tests_exhibit_similar_skew() {
        let cfg = ExperimentConfig::default()
            .with_iterations(10_000)
            .with_seed(0xF13);
        let d = fig12_for("lb", &cfg);
        assert!(d.histogram.total() > 1_000);
    }

    #[test]
    fn render_reports_statistics() {
        let cfg = ExperimentConfig::default()
            .with_iterations(5_000)
            .with_seed(0xF14);
        let text = render(&fig12(&cfg));
        assert!(text.contains("stddev"));
        assert!(text.contains("samples="));
    }
}
